#!/usr/bin/env python
"""CI smoke for the verification service — the full lifecycle, end to end.

1. start ``python -m repro serve`` on an ephemeral port (subprocess);
2. read the readiness line (``{"event": "listening", ...}``) off stdout;
3. concurrently submit a steane accurate-correction job and a surface-3
   distance-discovery job, streaming both NDJSON event streams to disk;
4. validate the captured streams with ``python -m repro validate-events``
   (the schema_version 1.0 wire contract);
5. SIGTERM the server and require a graceful drain: exit code 0 and a
   ``drained`` line reporting no orphaned jobs.

With ``--fault-plan`` the script runs the chaos smoke instead: the same
sweep is driven twice — once clean, once against a server armed with a
seeded fault plan (a lane kill, three store write failures, one
event-stream socket reset) — through a retrying client.  The faulted run
must produce a verdict map byte-identical to the clean run, the server must
still drain to exit 0 with no orphans, and the fault log (``FAULT_LOG``,
default ``fault-log.ndjson``) must record every point striking.

Then the resume smoke: a server with ``--clause-store`` is SIGTERMed
mid-distance-walk (zero drain grace, so the in-flight job is cancelled,
leaving its checkpoint behind), a fresh server over the same store
directory replays the job, and the replay must report ``resumed_from``,
finish in strictly fewer probes than a cold walk, and land on the same
distance.  The cancel races the walk, so the kill is retried with a fresh
store until it lands mid-flight.

Exits non-zero on any deviation.  Run from the repository root:

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def _start_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
        env={**__import__("os").environ, "PYTHONPATH": str(SRC)},
    )
    ready = json.loads(server.stdout.readline())
    assert ready["event"] == "listening", ready
    return server, ready["port"]


def _checkpoint_count(store_dir: str) -> int:
    import os
    import sqlite3

    path = os.path.join(store_dir, "clauses.sqlite")
    if not os.path.isfile(path):
        return 0
    with sqlite3.connect(path) as conn:
        (count,) = conn.execute("SELECT COUNT(*) FROM checkpoints").fetchone()
    return count


def resume_smoke() -> int:
    """Kill a distance walk mid-flight, restart over the same store, and
    require the replay to resume instead of restarting."""
    from repro.api import DistanceTask, Engine
    from repro.service.client import ServiceClient

    task = {"kind": "distance", "code": "surface-5"}
    cold_engine = Engine()
    cold = cold_engine.run(DistanceTask(code="surface-5"))
    cold_engine.close()
    cold_probes = len(cold.details["trials"])
    cold_distance = cold.details["distance"]
    print(f"cold reference: {cold_probes} probes, distance {cold_distance}")

    store_dir = None
    for attempt in range(8):
        store_dir = tempfile.mkdtemp(prefix="smoke-clause-store-")
        server, port = _start_server("--clause-store", store_dir, "--drain-grace", "0.05")
        try:
            client = ServiceClient("127.0.0.1", port, api_key="ci-smoke")
            job = client.submit(task)
            # SIGTERM as soon as the walk reports its first probe: zero
            # drain grace cancels the in-flight job, whose checkpoint stays.
            try:
                for line in client.events(job["id"], raw=True):
                    if '"DistanceProbe"' in line:
                        server.send_signal(signal.SIGTERM)
            except Exception:  # noqa: BLE001 - the stream dies with the server
                pass
            server.communicate(timeout=60)
        finally:
            if server.poll() is None:
                server.kill()
        if _checkpoint_count(store_dir) == 1:
            break  # the kill landed mid-walk
        print(f"resume-smoke attempt {attempt + 1}: walk finished before the kill; retrying")
    else:
        print("FAIL: could not interrupt a distance walk mid-flight", file=sys.stderr)
        return 1

    server, port = _start_server("--clause-store", store_dir)
    try:
        client = ServiceClient("127.0.0.1", port, api_key="ci-smoke")
        job = client.submit(task)
        stream = tempfile.mktemp(suffix=".ndjson")
        probes = 0
        completed = None
        with open(stream, "w", encoding="utf-8") as handle:
            for line in client.events(job["id"], raw=True):
                handle.write(line + "\n")
                if '"DistanceProbe"' in line:
                    probes += 1
                if '"JobCompleted"' in line:
                    completed = json.loads(line)
        final = client.job(job["id"])
        server.send_signal(signal.SIGTERM)
        server.communicate(timeout=60)
    finally:
        if server.poll() is None:
            server.kill()

    validate = subprocess.run(
        [sys.executable, "-m", "repro", "validate-events", stream],
        cwd=REPO,
        env={**__import__("os").environ, "PYTHONPATH": str(SRC)},
    )
    failures = []
    if validate.returncode != 0:
        failures.append("resumed event stream failed schema validation")
    if final["status"] != "succeeded":
        failures.append(f"resumed job ended {final['status']}")
    if not completed or not completed.get("resumed_from"):
        failures.append(f"resumed JobCompleted lacks resumed_from: {completed}")
    if probes >= cold_probes:
        failures.append(f"resumed walk used {probes} probes, cold used {cold_probes}")
    distance = final.get("result", {}).get("details", {}).get("distance")
    if distance != cold_distance:
        failures.append(f"resumed distance {distance} != cold {cold_distance}")
    if failures:
        print("FAIL:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    print(
        f"resume smoke passed: killed mid-walk, resumed in {probes} probes "
        f"(cold {cold_probes}), distance {distance}"
    )
    return 0


#: The chaos sweep: three task kinds, two code families — small enough for
#: CI, wide enough to exercise store writes (the distance walk checkpoints)
#: and multi-event streams.
CHAOS_SWEEP = [
    {"kind": "correction", "code": "steane"},
    {"kind": "correction", "code": "five-qubit"},
    {"kind": "distance", "code": "surface-3"},
    {"kind": "detection", "code": "steane", "trial_distance": 3},
]

#: The seeded plan the chaos server is armed with.
CHAOS_FAULTS = [
    {"point": "lane.crash", "times": 1},
    {"point": "store.write", "times": 3},
    {"point": "socket.reset", "times": 1},
]


def _verdict(result: dict) -> dict:
    view = {key: result.get(key) for key in ("task", "subject", "verified")}
    view["counterexample"] = result.get("counterexample")
    details = result.get("details") or {}
    if "distance" in details:
        view["distance"] = details["distance"]
    return view


def _chaos_sweep(client) -> dict:
    """Run the sweep serially; resubmit (fresh job) on lane crashes."""
    verdicts = {}
    for spec in CHAOS_SWEEP:
        key = json.dumps(spec, sort_keys=True)
        for _attempt in range(3):
            job = client.submit(dict(spec))
            terminal = None
            for event in client.events(job["id"]):
                terminal = event
            if (
                terminal["event"] == "JobFailed"
                and terminal.get("reason") == "lane_crash"
            ):
                continue  # infrastructure died under the job: run it again
            assert terminal["event"] == "JobCompleted", terminal
            break
        else:
            raise AssertionError(f"{key} failed on every attempt")
        verdicts[key] = _verdict(client.job(job["id"])["result"])
    return verdicts


def _drain(server: subprocess.Popen) -> tuple[int, dict | None]:
    """SIGTERM the server; return (exit code, last drained line)."""
    server.send_signal(signal.SIGTERM)
    out, _err = server.communicate(timeout=60)
    drained = [
        json.loads(line)
        for line in out.splitlines()
        if line.startswith("{") and '"drained"' in line
    ]
    return server.returncode, (drained[-1] if drained else None)


def chaos_smoke() -> int:
    """A faulted sweep must equal a clean one, and the drain must stay clean."""
    import os

    from repro.service.client import ServiceClient

    log_path = pathlib.Path(os.environ.get("FAULT_LOG", "fault-log.ndjson"))
    log_path.unlink(missing_ok=True)

    server, port = _start_server()
    try:
        clean_verdicts = _chaos_sweep(
            ServiceClient("127.0.0.1", port, api_key="ci-chaos", retries=3)
        )
        code, drained = _drain(server)
        if code != 0 or not drained or drained.get("orphaned"):
            print(f"FAIL: clean server drain: exit {code}, {drained}", file=sys.stderr)
            return 1
    finally:
        if server.poll() is None:
            server.kill()
    print(f"clean sweep done: {len(clean_verdicts)} verdicts")

    plan_path = tempfile.mktemp(suffix=".json")
    with open(plan_path, "w", encoding="utf-8") as handle:
        json.dump({"seed": 11, "log": str(log_path), "faults": CHAOS_FAULTS}, handle)
    store_dir = tempfile.mkdtemp(prefix="smoke-chaos-store-")
    server, port = _start_server(
        "--fault-plan", plan_path, "--clause-store", store_dir
    )
    try:
        fault_verdicts = _chaos_sweep(
            ServiceClient("127.0.0.1", port, api_key="ci-chaos", retries=3)
        )
        code, drained = _drain(server)
    finally:
        if server.poll() is None:
            server.kill()

    failures = []
    if code != 0:
        failures.append(f"chaos server exited {code}")
    if not drained or drained.get("orphaned"):
        failures.append(f"chaos drain left orphans: {drained}")
    if json.dumps(fault_verdicts, sort_keys=True) != json.dumps(
        clean_verdicts, sort_keys=True
    ):
        failures.append(
            "verdict maps diverged:\n"
            f"  clean: {json.dumps(clean_verdicts, sort_keys=True)}\n"
            f"  chaos: {json.dumps(fault_verdicts, sort_keys=True)}"
        )
    if not log_path.is_file():
        failures.append(f"no fault log at {log_path}")
    else:
        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        struck = {record["point"] for record in records}
        expected = {fault["point"] for fault in CHAOS_FAULTS}
        if struck != expected:
            failures.append(f"fault points struck {struck}, expected {expected}")
    if failures:
        print("FAIL:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    print(
        f"chaos smoke passed: {len(records)} faults struck "
        f"({', '.join(sorted(struck))}), verdicts identical, drain clean"
    )
    return 0


def main() -> int:
    from repro.service.client import ServiceClient

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--access-log"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
        env={**__import__("os").environ, "PYTHONPATH": str(SRC)},
    )
    try:
        ready = json.loads(server.stdout.readline())
        assert ready["event"] == "listening", ready
        port = ready["port"]
        print(f"server listening on {port}")

        workload = [
            {"kind": "correction", "code": "steane"},
            {"kind": "distance", "code": "surface-3"},
        ]
        streams = [tempfile.mktemp(suffix=".ndjson") for _ in workload]
        failures: list[str] = []

        def drive(task: dict, path: str) -> None:
            try:
                client = ServiceClient("127.0.0.1", port, api_key="ci-smoke")
                job = client.submit(task)
                with open(path, "w", encoding="utf-8") as handle:
                    for line in client.events(job["id"], raw=True):
                        handle.write(line + "\n")
                final = client.job(job["id"])
                if final["status"] != "succeeded":
                    failures.append(f"{task}: ended {final['status']}")
            except Exception as error:  # noqa: BLE001 - reported below
                failures.append(f"{task}: {type(error).__name__}: {error}")

        threads = [
            threading.Thread(target=drive, args=(task, path))
            for task, path in zip(workload, streams)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        if failures:
            print("FAIL:", *failures, sep="\n  ", file=sys.stderr)
            return 1

        validate = subprocess.run(
            [sys.executable, "-m", "repro", "validate-events", *streams],
            cwd=REPO,
            env={**__import__("os").environ, "PYTHONPATH": str(SRC)},
        )
        if validate.returncode != 0:
            print("FAIL: event-stream validation", file=sys.stderr)
            return 1

        server.send_signal(signal.SIGTERM)
        out, err = server.communicate(timeout=60)
        print(out.strip())
        drained = [
            json.loads(line)
            for line in out.splitlines()
            if line.startswith("{") and '"drained"' in line
        ]
        if server.returncode != 0:
            print(f"FAIL: server exited {server.returncode}\n{err}", file=sys.stderr)
            return 1
        if not drained or drained[-1].get("orphaned"):
            print(f"FAIL: drain left orphaned jobs: {drained}", file=sys.stderr)
            return 1
        print("service smoke passed: streams valid, drain clean, exit 0")
        return 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    if "--fault-plan" in sys.argv[1:]:
        raise SystemExit(chaos_smoke())
    rc = main()
    raise SystemExit(rc if rc else resume_smoke())
