#!/usr/bin/env python
"""CI smoke for the verification service — the full lifecycle, end to end.

1. start ``python -m repro serve`` on an ephemeral port (subprocess);
2. read the readiness line (``{"event": "listening", ...}``) off stdout;
3. concurrently submit a steane accurate-correction job and a surface-3
   distance-discovery job, streaming both NDJSON event streams to disk;
4. validate the captured streams with ``python -m repro validate-events``
   (the schema_version 1.0 wire contract);
5. SIGTERM the server and require a graceful drain: exit code 0 and a
   ``drained`` line reporting no orphaned jobs.

Exits non-zero on any deviation.  Run from the repository root:

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def main() -> int:
    from repro.service.client import ServiceClient

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--access-log"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
        env={**__import__("os").environ, "PYTHONPATH": str(SRC)},
    )
    try:
        ready = json.loads(server.stdout.readline())
        assert ready["event"] == "listening", ready
        port = ready["port"]
        print(f"server listening on {port}")

        workload = [
            {"kind": "correction", "code": "steane"},
            {"kind": "distance", "code": "surface-3"},
        ]
        streams = [tempfile.mktemp(suffix=".ndjson") for _ in workload]
        failures: list[str] = []

        def drive(task: dict, path: str) -> None:
            try:
                client = ServiceClient("127.0.0.1", port, api_key="ci-smoke")
                job = client.submit(task)
                with open(path, "w", encoding="utf-8") as handle:
                    for line in client.events(job["id"], raw=True):
                        handle.write(line + "\n")
                final = client.job(job["id"])
                if final["status"] != "succeeded":
                    failures.append(f"{task}: ended {final['status']}")
            except Exception as error:  # noqa: BLE001 - reported below
                failures.append(f"{task}: {type(error).__name__}: {error}")

        threads = [
            threading.Thread(target=drive, args=(task, path))
            for task, path in zip(workload, streams)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        if failures:
            print("FAIL:", *failures, sep="\n  ", file=sys.stderr)
            return 1

        validate = subprocess.run(
            [sys.executable, "-m", "repro", "validate-events", *streams],
            cwd=REPO,
            env={**__import__("os").environ, "PYTHONPATH": str(SRC)},
        )
        if validate.returncode != 0:
            print("FAIL: event-stream validation", file=sys.stderr)
            return 1

        server.send_signal(signal.SIGTERM)
        out, err = server.communicate(timeout=60)
        print(out.strip())
        drained = [
            json.loads(line)
            for line in out.splitlines()
            if line.startswith("{") and '"drained"' in line
        ]
        if server.returncode != 0:
            print(f"FAIL: server exited {server.returncode}\n{err}", file=sys.stderr)
            return 1
        if not drained or drained[-1].get("orphaned"):
            print(f"FAIL: drain left orphaned jobs: {drained}", file=sys.stderr)
            return 1
        print("service smoke passed: streams valid, drain clean, exit 0")
        return 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())
