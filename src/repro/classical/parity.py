"""Parity expressions: sums modulo 2 of boolean atoms.

The phase of every Pauli term occurring in a QEC weakest precondition is of
the form ``(-1)^(b + e_3 + x_3 + ...)`` — a parity of boolean program
variables and decoder outputs (Table 2 of the paper).  Representing these
phases canonically as a set of atoms plus a constant makes the phase
bookkeeping of the VC reduction (``r_i(s) + h_i(e)``) exact and cheap: XOR is
a symmetric difference and two phases are equal iff their representations
coincide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classical.expr import (
    BoolConst,
    BoolExpr,
    BoolVar,
    UFBool,
    Xor,
    evaluate,
)

__all__ = ["ParityExpr"]

Atom = object  # atoms are hashable: variable names (str) or UFBool terms


@dataclass(frozen=True)
class ParityExpr:
    """A parity ``constant + sum of atoms (mod 2)`` over boolean atoms."""

    atoms: frozenset = field(default_factory=frozenset)
    constant: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "constant", int(self.constant) % 2)
        object.__setattr__(self, "atoms", frozenset(self.atoms))

    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "ParityExpr":
        return ParityExpr(frozenset(), 0)

    @staticmethod
    def one() -> "ParityExpr":
        return ParityExpr(frozenset(), 1)

    @staticmethod
    def of_variable(name: str) -> "ParityExpr":
        return ParityExpr(frozenset({name}), 0)

    @staticmethod
    def of_atoms(atoms, constant: int = 0) -> "ParityExpr":
        result = ParityExpr(frozenset(), constant)
        for atom in atoms:
            result = result ^ ParityExpr(frozenset({atom}), 0)
        return result

    @staticmethod
    def from_bool_expr(expr: BoolExpr) -> "ParityExpr":
        """Convert an XOR-shaped boolean expression into a parity.

        Only constants, variables, uninterpreted applications and XOR nodes
        are accepted; anything else is kept as a single opaque atom.
        """
        if isinstance(expr, BoolConst):
            return ParityExpr(frozenset(), int(expr.value))
        if isinstance(expr, BoolVar):
            return ParityExpr.of_variable(expr.name)
        if isinstance(expr, UFBool):
            return ParityExpr(frozenset({expr}), 0)
        if isinstance(expr, Xor):
            result = ParityExpr.zero()
            for operand in expr.operands:
                result = result ^ ParityExpr.from_bool_expr(operand)
            return result
        return ParityExpr(frozenset({expr}), 0)

    # ------------------------------------------------------------------
    def __xor__(self, other: "ParityExpr") -> "ParityExpr":
        return ParityExpr(
            self.atoms.symmetric_difference(other.atoms),
            self.constant ^ other.constant,
        )

    def __add__(self, other: "ParityExpr") -> "ParityExpr":
        return self ^ other

    def flipped(self) -> "ParityExpr":
        """The parity plus one (a sign flip of the Pauli term it decorates)."""
        return ParityExpr(self.atoms, self.constant ^ 1)

    def is_zero(self) -> bool:
        return not self.atoms and self.constant == 0

    def is_constant(self) -> bool:
        return not self.atoms

    # ------------------------------------------------------------------
    def substitute(self, mapping: dict) -> "ParityExpr":
        """Replace atoms by parities (used by the classical assignment rule).

        ``mapping`` maps an atom (usually a variable name) to a
        :class:`ParityExpr`, a :class:`BoolExpr` or a constant.
        """
        result = ParityExpr(frozenset(), self.constant)
        for atom in self.atoms:
            if atom in mapping:
                replacement = mapping[atom]
                if isinstance(replacement, ParityExpr):
                    result = result ^ replacement
                elif isinstance(replacement, BoolExpr):
                    result = result ^ ParityExpr.from_bool_expr(replacement)
                else:
                    result = result ^ ParityExpr(frozenset(), int(replacement))
            else:
                result = result ^ ParityExpr(frozenset({atom}), 0)
        return result

    def evaluate(self, memory) -> int:
        """Evaluate the parity under a classical memory mapping."""
        total = self.constant
        for atom in self.atoms:
            if isinstance(atom, str):
                total ^= int(bool(memory[atom]))
            elif isinstance(atom, BoolExpr):
                total ^= int(bool(evaluate(atom, memory)))
            else:
                total ^= int(bool(atom))
        return total

    def to_bool_expr(self) -> BoolExpr:
        """Lower the parity to a boolean expression (an XOR node)."""
        operands: list[BoolExpr] = []
        for atom in sorted(self.atoms, key=repr):
            if isinstance(atom, str):
                operands.append(BoolVar(atom))
            elif isinstance(atom, BoolExpr):
                operands.append(atom)
            else:
                raise TypeError(f"cannot lower atom {atom!r} to a boolean expression")
        if self.constant:
            operands.append(BoolConst(True))
        if not operands:
            return BoolConst(False)
        if len(operands) == 1:
            return operands[0]
        return Xor(tuple(operands))

    def variables(self) -> frozenset:
        return frozenset(a for a in self.atoms if isinstance(a, str))

    def __repr__(self) -> str:
        if self.is_zero():
            return "0"
        parts = [repr(a) if not isinstance(a, str) else a for a in sorted(self.atoms, key=repr)]
        if self.constant:
            parts.append("1")
        return " + ".join(parts)
