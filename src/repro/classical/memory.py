"""Classical memories (CMem): mappings from variable names to values."""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ["ClassicalMemory"]


class ClassicalMemory(Mapping):
    """An immutable classical state ``m : name -> value``.

    The operational semantics threads these through programs; assignment
    produces a new memory (``update``) so snapshots taken by the verifier and
    the tests can never be mutated behind their back.  Values are integers or
    booleans; an optional ``functions`` table provides interpretations for
    uninterpreted decoder symbols when the semantics needs to execute them.
    """

    def __init__(self, values: dict | None = None, functions: dict | None = None):
        self._values = dict(values or {})
        self._functions = dict(functions or {})

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, name: str):
        if name == "__functions__":
            return self._functions
        return self._values[name]

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, name, default=None):
        if name == "__functions__":
            return self._functions
        return self._values.get(name, default)

    # -- Updates -----------------------------------------------------------
    def update(self, name: str, value) -> "ClassicalMemory":
        """Return a new memory with ``name`` bound to ``value``."""
        new_values = dict(self._values)
        new_values[name] = value
        return ClassicalMemory(new_values, self._functions)

    def update_many(self, assignments: dict) -> "ClassicalMemory":
        new_values = dict(self._values)
        new_values.update(assignments)
        return ClassicalMemory(new_values, self._functions)

    def with_functions(self, functions: dict) -> "ClassicalMemory":
        merged = dict(self._functions)
        merged.update(functions)
        return ClassicalMemory(self._values, merged)

    @property
    def functions(self) -> dict:
        return dict(self._functions)

    def as_dict(self) -> dict:
        return dict(self._values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ClassicalMemory):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"ClassicalMemory({body})"
