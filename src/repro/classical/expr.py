"""The classical expression language used in programs, assertions and VCs.

The paper's Appendix A.1 fixes a small language of integer and boolean
expressions (IExp / BExp); this module implements it as an immutable AST with
evaluation under a classical memory, substitution (needed by the backward
assignment rule) and free-variable collection.  Boolean and integer
expressions are deliberately kept first-order and loop-free: everything a QEC
verification condition needs is sums of 0/1 indicator variables, comparisons
against small bounds, parities, and uninterpreted decoder outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Expr",
    "IntExpr",
    "BoolExpr",
    "IntConst",
    "IntVar",
    "Add",
    "BoolToInt",
    "BoolConst",
    "BoolVar",
    "Not",
    "And",
    "Or",
    "Xor",
    "Implies",
    "Iff",
    "IntLe",
    "IntEq",
    "UFBool",
    "bool_and",
    "bool_or",
    "sum_of",
    "substitute",
    "simplify",
    "free_variables",
    "all_bool_vars",
]


class Expr:
    """Base class of all classical expressions."""

    __slots__ = ()


class IntExpr(Expr):
    """Base class of integer-valued expressions."""

    __slots__ = ()


class BoolExpr(Expr):
    """Base class of boolean-valued expressions."""

    __slots__ = ()


# ----------------------------------------------------------------------
# Integer expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IntConst(IntExpr):
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class IntVar(IntExpr):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Add(IntExpr):
    terms: tuple[IntExpr, ...]

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.terms)) + ")"


@dataclass(frozen=True)
class BoolToInt(IntExpr):
    """Type coercion of Appendix A.1: true is 1, false is 0."""

    operand: BoolExpr

    def __repr__(self) -> str:
        return f"int({self.operand!r})"


# ----------------------------------------------------------------------
# Boolean expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoolConst(BoolExpr):
    value: bool

    def __repr__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class BoolVar(BoolExpr):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(BoolExpr):
    operand: BoolExpr

    def __repr__(self) -> str:
        return f"!{self.operand!r}"


@dataclass(frozen=True)
class And(BoolExpr):
    operands: tuple[BoolExpr, ...]

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Or(BoolExpr):
    operands: tuple[BoolExpr, ...]

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Xor(BoolExpr):
    operands: tuple[BoolExpr, ...]

    def __repr__(self) -> str:
        return "(" + " ^ ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Implies(BoolExpr):
    antecedent: BoolExpr
    consequent: BoolExpr

    def __repr__(self) -> str:
        return f"({self.antecedent!r} -> {self.consequent!r})"


@dataclass(frozen=True)
class Iff(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def __repr__(self) -> str:
        return f"({self.left!r} <-> {self.right!r})"


@dataclass(frozen=True)
class IntLe(BoolExpr):
    left: IntExpr
    right: IntExpr

    def __repr__(self) -> str:
        return f"({self.left!r} <= {self.right!r})"


@dataclass(frozen=True)
class IntEq(BoolExpr):
    left: IntExpr
    right: IntExpr

    def __repr__(self) -> str:
        return f"({self.left!r} == {self.right!r})"


@dataclass(frozen=True)
class UFBool(BoolExpr):
    """An uninterpreted boolean function application.

    Decoder calls such as ``f_z,1(s1, s2, s3)`` are kept opaque in the VC and
    constrained only through the decoder condition P_f, exactly as in §5.2.
    The SAT encoder introduces one fresh variable per distinct application.
    """

    name: str
    args: tuple[BoolExpr, ...] = ()

    def __repr__(self) -> str:
        if not self.args:
            return f"{self.name}()"
        return f"{self.name}(" + ", ".join(map(repr, self.args)) + ")"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
TRUE = BoolConst(True)
FALSE = BoolConst(False)


def bool_and(operands) -> BoolExpr:
    """N-ary conjunction that folds constants and flattens nested Ands."""
    flat: list[BoolExpr] = []
    for op in operands:
        if isinstance(op, BoolConst):
            if not op.value:
                return FALSE
            continue
        if isinstance(op, And):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def bool_or(operands) -> BoolExpr:
    """N-ary disjunction that folds constants and flattens nested Ors."""
    flat: list[BoolExpr] = []
    for op in operands:
        if isinstance(op, BoolConst):
            if op.value:
                return TRUE
            continue
        if isinstance(op, Or):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def sum_of(operands) -> IntExpr:
    """Integer sum of expressions; booleans are coerced with :class:`BoolToInt`."""
    terms: list[IntExpr] = []
    for op in operands:
        if isinstance(op, BoolExpr):
            terms.append(BoolToInt(op))
        elif isinstance(op, IntExpr):
            terms.append(op)
        else:
            terms.append(IntConst(int(op)))
    if not terms:
        return IntConst(0)
    if len(terms) == 1:
        return terms[0]
    return Add(tuple(terms))


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def evaluate(expr: Expr, memory) -> int | bool:
    """Evaluate an expression in a classical memory (a mapping name -> value)."""
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, IntVar):
        return int(memory[expr.name])
    if isinstance(expr, BoolVar):
        return bool(memory[expr.name])
    if isinstance(expr, Add):
        return sum(int(evaluate(t, memory)) for t in expr.terms)
    if isinstance(expr, BoolToInt):
        return int(bool(evaluate(expr.operand, memory)))
    if isinstance(expr, Not):
        return not evaluate(expr.operand, memory)
    if isinstance(expr, And):
        return all(evaluate(op, memory) for op in expr.operands)
    if isinstance(expr, Or):
        return any(evaluate(op, memory) for op in expr.operands)
    if isinstance(expr, Xor):
        return bool(sum(bool(evaluate(op, memory)) for op in expr.operands) % 2)
    if isinstance(expr, Implies):
        return (not evaluate(expr.antecedent, memory)) or bool(
            evaluate(expr.consequent, memory)
        )
    if isinstance(expr, Iff):
        return bool(evaluate(expr.left, memory)) == bool(evaluate(expr.right, memory))
    if isinstance(expr, IntLe):
        return int(evaluate(expr.left, memory)) <= int(evaluate(expr.right, memory))
    if isinstance(expr, IntEq):
        return int(evaluate(expr.left, memory)) == int(evaluate(expr.right, memory))
    if isinstance(expr, UFBool):
        key = (expr.name, tuple(bool(evaluate(a, memory)) for a in expr.args))
        functions = memory.get("__functions__", {}) if hasattr(memory, "get") else {}
        if expr.name in functions:
            return bool(functions[expr.name](*key[1]))
        raise KeyError(f"no interpretation provided for function {expr.name!r}")
    raise TypeError(f"cannot evaluate expression of type {type(expr).__name__}")


# ----------------------------------------------------------------------
# Substitution and variable collection
# ----------------------------------------------------------------------
def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Simultaneously substitute variables by expressions (capture-free)."""
    if isinstance(expr, (IntConst, BoolConst)):
        return expr
    if isinstance(expr, IntVar):
        return mapping.get(expr.name, expr)
    if isinstance(expr, BoolVar):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Add):
        return Add(tuple(substitute(t, mapping) for t in expr.terms))
    if isinstance(expr, BoolToInt):
        replaced = substitute(expr.operand, mapping)
        if isinstance(replaced, IntExpr):
            return replaced
        return BoolToInt(replaced)
    if isinstance(expr, Not):
        return Not(substitute(expr.operand, mapping))
    if isinstance(expr, And):
        return And(tuple(substitute(op, mapping) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(substitute(op, mapping) for op in expr.operands))
    if isinstance(expr, Xor):
        return Xor(tuple(substitute(op, mapping) for op in expr.operands))
    if isinstance(expr, Implies):
        return Implies(
            substitute(expr.antecedent, mapping), substitute(expr.consequent, mapping)
        )
    if isinstance(expr, Iff):
        return Iff(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, IntLe):
        return IntLe(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, IntEq):
        return IntEq(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, UFBool):
        return UFBool(expr.name, tuple(substitute(a, mapping) for a in expr.args))
    raise TypeError(f"cannot substitute in expression of type {type(expr).__name__}")


def free_variables(expr: Expr) -> frozenset[str]:
    """Names of all program variables occurring in the expression."""
    if isinstance(expr, (IntConst, BoolConst)):
        return frozenset()
    if isinstance(expr, (IntVar, BoolVar)):
        return frozenset({expr.name})
    if isinstance(expr, Add):
        return frozenset().union(*(free_variables(t) for t in expr.terms))
    if isinstance(expr, (BoolToInt, Not)):
        return free_variables(expr.operand)
    if isinstance(expr, (And, Or, Xor)):
        return frozenset().union(*(free_variables(op) for op in expr.operands))
    if isinstance(expr, Implies):
        return free_variables(expr.antecedent) | free_variables(expr.consequent)
    if isinstance(expr, (Iff, IntLe, IntEq)):
        return free_variables(expr.left) | free_variables(expr.right)
    if isinstance(expr, UFBool):
        if not expr.args:
            return frozenset()
        return frozenset().union(*(free_variables(a) for a in expr.args))
    raise TypeError(f"cannot collect variables of type {type(expr).__name__}")


def all_bool_vars(expr: Expr) -> frozenset[str]:
    """Names of boolean variables only (used to size SAT encodings)."""
    result: set[str] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, BoolVar):
            result.add(node.name)
        elif isinstance(node, (IntConst, BoolConst, IntVar)):
            return
        elif isinstance(node, Add):
            for term in node.terms:
                walk(term)
        elif isinstance(node, (BoolToInt, Not)):
            walk(node.operand)
        elif isinstance(node, (And, Or, Xor)):
            for op in node.operands:
                walk(op)
        elif isinstance(node, Implies):
            walk(node.antecedent)
            walk(node.consequent)
        elif isinstance(node, (Iff, IntLe, IntEq)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UFBool):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return frozenset(result)


# ----------------------------------------------------------------------
# Light-weight simplification
# ----------------------------------------------------------------------
def simplify(expr: Expr) -> Expr:
    """Constant folding and flattening; keeps expressions readable in reports."""
    if isinstance(expr, (IntConst, BoolConst, IntVar, BoolVar)):
        return expr
    if isinstance(expr, Add):
        terms = [simplify(t) for t in expr.terms]
        constant = sum(t.value for t in terms if isinstance(t, IntConst))
        rest = [t for t in terms if not isinstance(t, IntConst)]
        if constant or not rest:
            rest.append(IntConst(constant))
        return rest[0] if len(rest) == 1 else Add(tuple(rest))
    if isinstance(expr, BoolToInt):
        inner = simplify(expr.operand)
        if isinstance(inner, BoolConst):
            return IntConst(int(inner.value))
        return BoolToInt(inner)
    if isinstance(expr, Not):
        inner = simplify(expr.operand)
        if isinstance(inner, BoolConst):
            return BoolConst(not inner.value)
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(expr, And):
        return bool_and(simplify(op) for op in expr.operands)
    if isinstance(expr, Or):
        return bool_or(simplify(op) for op in expr.operands)
    if isinstance(expr, Xor):
        operands = [simplify(op) for op in expr.operands]
        parity = sum(1 for op in operands if isinstance(op, BoolConst) and op.value) % 2
        rest = [op for op in operands if not isinstance(op, BoolConst)]
        if not rest:
            return BoolConst(bool(parity))
        if parity:
            rest.append(BoolConst(True))
        return rest[0] if len(rest) == 1 else Xor(tuple(rest))
    if isinstance(expr, Implies):
        antecedent = simplify(expr.antecedent)
        consequent = simplify(expr.consequent)
        if isinstance(antecedent, BoolConst):
            return consequent if antecedent.value else TRUE
        if isinstance(consequent, BoolConst) and consequent.value:
            return TRUE
        return Implies(antecedent, consequent)
    if isinstance(expr, Iff):
        left, right = simplify(expr.left), simplify(expr.right)
        if isinstance(left, BoolConst):
            return right if left.value else simplify(Not(right))
        if isinstance(right, BoolConst):
            return left if right.value else simplify(Not(left))
        return Iff(left, right)
    if isinstance(expr, IntLe):
        left, right = simplify(expr.left), simplify(expr.right)
        if isinstance(left, IntConst) and isinstance(right, IntConst):
            return BoolConst(left.value <= right.value)
        return IntLe(left, right)
    if isinstance(expr, IntEq):
        left, right = simplify(expr.left), simplify(expr.right)
        if isinstance(left, IntConst) and isinstance(right, IntConst):
            return BoolConst(left.value == right.value)
        return IntEq(left, right)
    if isinstance(expr, UFBool):
        return UFBool(expr.name, tuple(simplify(a) for a in expr.args))
    raise TypeError(f"cannot simplify expression of type {type(expr).__name__}")
