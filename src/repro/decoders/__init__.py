"""Decoders: executable lookup decoding and the symbolic decoder condition."""

from repro.decoders.lookup import LookupDecoder

__all__ = ["LookupDecoder"]
