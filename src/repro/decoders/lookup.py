"""A minimum-weight lookup-table decoder for small stabilizer codes.

The verifier never executes a decoder — it reasons about every decoder
satisfying the condition ``P_f`` — but the Stim-comparison benchmark and the
simulation-based tests need a concrete one.  The table is built
breadth-first over error weights, so the stored correction for each syndrome
is of minimum weight, i.e. it satisfies ``P_f`` by construction.
"""

from __future__ import annotations

from itertools import combinations, product

from repro.codes.base import StabilizerCode
from repro.pauli.pauli import PauliOperator

__all__ = ["LookupDecoder"]


class LookupDecoder:
    """Syndrome-indexed table of minimum-weight corrections."""

    def __init__(self, code: StabilizerCode, max_weight: int | None = None, paulis: str = "XYZ"):
        self.code = code
        if max_weight is None:
            max_weight = (code.distance - 1) // 2 if code.distance else 1
        self.max_weight = max_weight
        self.paulis = paulis
        self._table: dict[tuple[int, ...], PauliOperator] = {}
        self._build()

    def _build(self) -> None:
        identity = PauliOperator.identity(self.code.num_qubits)
        self._table[self.code.syndrome(identity)] = identity
        for weight in range(1, self.max_weight + 1):
            for qubits in combinations(range(self.code.num_qubits), weight):
                for kinds in product(self.paulis, repeat=weight):
                    error = PauliOperator.from_sparse(
                        self.code.num_qubits, dict(zip(qubits, kinds))
                    )
                    syndrome = self.code.syndrome(error)
                    if syndrome not in self._table:
                        self._table[syndrome] = error

    # ------------------------------------------------------------------
    @property
    def table_size(self) -> int:
        return len(self._table)

    def decode(self, syndrome: tuple[int, ...]) -> PauliOperator | None:
        """The stored minimum-weight correction, or ``None`` for unknown syndromes."""
        return self._table.get(tuple(syndrome))

    def correct(self, error: PauliOperator) -> PauliOperator | None:
        """Residual operator ``correction * error`` for a given error."""
        correction = self.decode(self.code.syndrome(error))
        if correction is None:
            return None
        return correction * error

    def corrects(self, error: PauliOperator) -> bool:
        """Whether decoding the error's syndrome removes its logical effect."""
        residual = self.correct(error)
        if residual is None:
            return False
        return not self.code.is_logical_error(residual) and self.code.group.commutes_with(residual)
