"""Low-level utilities shared by the rest of the package."""

from repro.utils.bitmatrix import (
    gf2_gaussian_elimination,
    gf2_nullspace,
    gf2_rank,
    gf2_row_reduce,
    gf2_solve,
    gf2_span_contains,
)

__all__ = [
    "gf2_gaussian_elimination",
    "gf2_nullspace",
    "gf2_rank",
    "gf2_row_reduce",
    "gf2_solve",
    "gf2_span_contains",
]
