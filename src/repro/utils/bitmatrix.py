"""Linear algebra over GF(2).

Parity-check matrices, stabilizer generator matrices, logical-operator
construction and the commuting-case reduction of verification conditions
(Proposition 5.2 in the paper) all reduce to row operations over the
two-element field.  This module provides the handful of primitives the rest
of the package relies on, implemented on top of ``numpy`` ``uint8`` arrays
whose entries are always 0 or 1.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_gf2",
    "gf2_row_reduce",
    "gf2_gaussian_elimination",
    "gf2_rank",
    "gf2_solve",
    "gf2_nullspace",
    "gf2_span_contains",
    "gf2_matmul",
]


def as_gf2(matrix) -> np.ndarray:
    """Return ``matrix`` as a 2-D ``uint8`` array reduced modulo 2.

    Accepts nested lists or numpy arrays.  A 1-D input is promoted to a
    single-row matrix so callers can pass vectors uniformly.
    """
    arr = np.array(matrix, dtype=np.int64) % 2
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected a 1-D or 2-D array, got shape {arr.shape}")
    return arr.astype(np.uint8)


def gf2_row_reduce(matrix) -> tuple[np.ndarray, list[int]]:
    """Row-reduce ``matrix`` over GF(2) to reduced row echelon form.

    Returns ``(rref, pivot_columns)``.  Zero rows are kept at the bottom so
    the output has the same shape as the input.
    """
    mat = as_gf2(matrix).copy()
    rows, cols = mat.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot_rows = np.nonzero(mat[r:, c])[0]
        if pivot_rows.size == 0:
            continue
        pivot = r + int(pivot_rows[0])
        if pivot != r:
            mat[[r, pivot]] = mat[[pivot, r]]
        # Eliminate this column from every other row.
        other = np.nonzero(mat[:, c])[0]
        for row in other:
            if row != r:
                mat[row] ^= mat[r]
        pivots.append(c)
        r += 1
    return mat, pivots


def gf2_gaussian_elimination(matrix) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Row-reduce ``matrix`` while tracking the transformation.

    Returns ``(rref, transform, pivot_columns)`` with
    ``transform @ matrix == rref`` over GF(2).  ``transform`` records which
    input rows were combined to produce each output row; the stabilizer-group
    membership routines use it to express an operator as a product of
    generators.
    """
    mat = as_gf2(matrix).copy()
    rows, cols = mat.shape
    transform = np.eye(rows, dtype=np.uint8)
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot_rows = np.nonzero(mat[r:, c])[0]
        if pivot_rows.size == 0:
            continue
        pivot = r + int(pivot_rows[0])
        if pivot != r:
            mat[[r, pivot]] = mat[[pivot, r]]
            transform[[r, pivot]] = transform[[pivot, r]]
        for row in np.nonzero(mat[:, c])[0]:
            if row != r:
                mat[row] ^= mat[r]
                transform[row] ^= transform[r]
        pivots.append(c)
        r += 1
    return mat, transform, pivots


def gf2_rank(matrix) -> int:
    """Rank of ``matrix`` over GF(2)."""
    _, pivots = gf2_row_reduce(matrix)
    return len(pivots)


def gf2_matmul(a, b) -> np.ndarray:
    """Matrix product over GF(2)."""
    left = as_gf2(a).astype(np.int64)
    right = as_gf2(b).astype(np.int64)
    return ((left @ right) % 2).astype(np.uint8)


def gf2_solve(matrix, rhs) -> np.ndarray | None:
    """Solve ``matrix @ x = rhs`` over GF(2).

    Returns one solution as a 1-D ``uint8`` vector, or ``None`` when the
    system is inconsistent.
    """
    mat = as_gf2(matrix)
    vec = np.array(rhs, dtype=np.int64).reshape(-1) % 2
    rows, cols = mat.shape
    if vec.shape[0] != rows:
        raise ValueError(f"rhs has length {vec.shape[0]}, expected {rows}")
    augmented = np.concatenate([mat, vec.reshape(-1, 1).astype(np.uint8)], axis=1)
    rref, pivots = gf2_row_reduce(augmented)
    solution = np.zeros(cols, dtype=np.uint8)
    for row_index, col in enumerate(pivots):
        if col == cols:
            # Pivot landed in the augmented column: 0 = 1, inconsistent.
            return None
        solution[col] = rref[row_index, cols]
    # Rows below the last pivot must have a zero augmented entry.
    for row_index in range(len(pivots), rows):
        if rref[row_index, cols] != 0:
            return None
    return solution


def gf2_nullspace(matrix) -> np.ndarray:
    """Basis of the null space of ``matrix`` over GF(2).

    Returns a matrix whose *rows* form a basis of ``{x : matrix @ x = 0}``.
    The result has zero rows when the map is injective.
    """
    mat = as_gf2(matrix)
    _, cols = mat.shape
    rref, pivots = gf2_row_reduce(mat)
    free_cols = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for index, free in enumerate(free_cols):
        basis[index, free] = 1
        for row_index, pivot_col in enumerate(pivots):
            basis[index, pivot_col] = rref[row_index, free]
    return basis


def gf2_span_contains(matrix, vector) -> bool:
    """Whether ``vector`` lies in the row span of ``matrix`` over GF(2)."""
    mat = as_gf2(matrix)
    vec = as_gf2(vector)
    if mat.shape[0] == 0:
        return not vec.any()
    stacked = np.vstack([mat, vec])
    return gf2_rank(stacked) == gf2_rank(mat)
