"""Veri-QEC reproduction: efficient formal verification of QEC programs.

The package layers, bottom to top:

* ``repro.utils``, ``repro.pauli``, ``repro.classical`` -- GF(2) linear
  algebra, Pauli/stabilizer machinery and the classical expression language;
* ``repro.smt`` -- the CDCL SAT solver and formula encoder standing in for
  Z3/CVC5;
* ``repro.codes``, ``repro.decoders`` -- the stabilizer-code suite of Table 3;
* ``repro.lang``, ``repro.logic``, ``repro.semantics`` -- the QEC programming
  language, the assertion logic, and the dense operational semantics;
* ``repro.hoare``, ``repro.vc`` -- the proof system of Fig. 3 and the
  verification-condition reduction of Section 5;
* ``repro.verifier`` -- the Veri-QEC front end used by examples and benchmarks.
"""

from repro.verifier.veriqec import VeriQEC

__version__ = "1.0.0"

__all__ = ["VeriQEC", "__version__"]
