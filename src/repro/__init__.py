"""Veri-QEC reproduction: efficient formal verification of QEC programs.

The package layers, bottom to top:

* ``repro.utils``, ``repro.pauli``, ``repro.classical`` -- GF(2) linear
  algebra, Pauli/stabilizer machinery and the classical expression language;
* ``repro.smt`` -- the CDCL SAT solver and formula encoder standing in for
  Z3/CVC5;
* ``repro.codes``, ``repro.decoders`` -- the stabilizer-code suite of Table 3;
* ``repro.lang``, ``repro.logic``, ``repro.semantics`` -- the QEC programming
  language, the assertion logic, and the dense operational semantics;
* ``repro.hoare``, ``repro.vc`` -- the proof system of Fig. 3 and the
  verification-condition reduction of Section 5;
* ``repro.api`` -- the task-based verification engine: frozen task objects,
  pluggable serial/parallel backends, an LRU compile cache, batch execution
  (``Engine.run_many``) and the ``python -m repro`` CLI;
* ``repro.verifier`` -- the legacy ``VeriQEC`` facade, kept as a thin shim
  over the engine for backward compatibility.

New code should target ``repro.api``::

    from repro.api import CorrectionTask, Engine

    result = Engine().run(CorrectionTask(code="steane"))
"""

from repro.api import (
    ConstrainedTask,
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    Engine,
    FixedErrorTask,
    ParallelBackend,
    ProgramTask,
    Result,
    SerialBackend,
    registry_sweep_tasks,
)
from repro.verifier.veriqec import VeriQEC

__version__ = "1.1.0"

__all__ = [
    "Engine",
    "Result",
    "CorrectionTask",
    "DetectionTask",
    "DistanceTask",
    "ConstrainedTask",
    "FixedErrorTask",
    "ProgramTask",
    "SerialBackend",
    "ParallelBackend",
    "registry_sweep_tasks",
    "VeriQEC",
    "__version__",
]
