"""Result objects returned by the verifier."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VerificationReport"]


@dataclass
class VerificationReport:
    """Outcome of one verification task.

    ``verified`` is True when the property holds for *all* error
    configurations in scope (the underlying SAT query was unsatisfiable);
    otherwise ``counterexample`` holds a concrete error assignment, mirroring
    the bug-reporting behaviour of the tool.
    """

    task: str
    code_name: str
    verified: bool
    counterexample: dict[str, bool] | None = None
    elapsed_seconds: float = 0.0
    num_variables: int = 0
    num_clauses: int = 0
    conflicts: int = 0
    details: dict = field(default_factory=dict)

    def summary(self) -> str:
        status = "VERIFIED" if self.verified else "COUNTEREXAMPLE"
        return (
            f"[{status}] {self.task} on {self.code_name} "
            f"({self.elapsed_seconds:.3f}s, {self.num_variables} vars, "
            f"{self.num_clauses} clauses, {self.conflicts} conflicts)"
        )

    def counterexample_qubits(self) -> list[int]:
        """Indices of qubits carrying an error in the counterexample."""
        if not self.counterexample:
            return []
        qubits = set()
        for name, value in self.counterexample.items():
            if value and (name.startswith("ex_") or name.startswith("ez_") or name.startswith("e_")):
                qubits.add(int(name.rsplit("_", 1)[1]))
        return sorted(qubits)
