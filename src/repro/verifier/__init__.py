"""Veri-QEC: the automated QEC verifier (Sections 6 and 7)."""

from repro.verifier.constraints import discreteness_constraint, locality_constraint
from repro.verifier.encodings import (
    ErrorModel,
    accurate_correction_formula,
    precise_detection_formula,
)
from repro.verifier.report import VerificationReport
from repro.verifier.veriqec import VeriQEC

__all__ = [
    "VeriQEC",
    "VerificationReport",
    "ErrorModel",
    "accurate_correction_formula",
    "precise_detection_formula",
    "locality_constraint",
    "discreteness_constraint",
]
