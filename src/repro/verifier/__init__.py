"""Veri-QEC: the automated QEC verifier (Sections 6 and 7)."""

from repro.verifier.report import VerificationReport
from repro.verifier.encodings import (
    accurate_correction_formula,
    precise_detection_formula,
    ErrorModel,
)
from repro.verifier.constraints import locality_constraint, discreteness_constraint
from repro.verifier.veriqec import VeriQEC

__all__ = [
    "VeriQEC",
    "VerificationReport",
    "ErrorModel",
    "accurate_correction_formula",
    "precise_detection_formula",
    "locality_constraint",
    "discreteness_constraint",
]
