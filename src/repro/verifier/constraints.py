"""User-provided error constraints (Section 7.2).

Verification of large codes becomes tractable when the user restricts the
error patterns.  The two constraint families evaluated in the paper are
reproduced here:

* *locality* — errors may only occur on a randomly chosen subset of
  ``(d^2 - 1) / 2`` qubits, every other qubit is error-free;
* *discreteness* — the qubits are divided into ``d`` segments of ``d`` qubits
  and each segment carries at most one error.
"""

from __future__ import annotations

import random

from repro.classical.expr import BoolExpr, IntConst, IntLe, Not, Or, bool_and, sum_of
from repro.codes.base import StabilizerCode
from repro.verifier.encodings import ErrorModel, error_component_variables

__all__ = ["locality_constraint", "discreteness_constraint"]


def _qubit_indicators(code: StabilizerCode, error_model: ErrorModel):
    _, _, indicators = error_component_variables(code.num_qubits, error_model)
    return indicators


def locality_constraint(
    code: StabilizerCode,
    error_model: ErrorModel = ErrorModel("any"),
    allowed_qubits: list[int] | None = None,
    seed: int | None = None,
) -> BoolExpr:
    """Errors restricted to a subset of qubits; all other qubits error-free.

    When ``allowed_qubits`` is not supplied, ``(n - 1) // 2`` qubits are
    selected at random (the paper's choice for a distance-``d`` surface code,
    where ``n = d^2``).
    """
    indicators = _qubit_indicators(code, error_model)
    if allowed_qubits is None:
        rng = random.Random(seed)
        count = max(1, (code.num_qubits - 1) // 2)
        allowed_qubits = sorted(rng.sample(range(code.num_qubits), count))
    allowed = set(allowed_qubits)
    clauses: list[BoolExpr] = []
    for qubit, indicator in enumerate(indicators):
        if qubit not in allowed:
            clauses.append(Not(indicator))
    return bool_and(clauses)


def discreteness_constraint(
    code: StabilizerCode,
    error_model: ErrorModel = ErrorModel("any"),
    num_segments: int | None = None,
) -> BoolExpr:
    """At most one error inside each contiguous segment of qubits."""
    indicators = _qubit_indicators(code, error_model)
    if num_segments is None:
        num_segments = code.distance or max(1, int(round(code.num_qubits ** 0.5)))
    num_segments = max(1, min(num_segments, code.num_qubits))
    segment_size = (code.num_qubits + num_segments - 1) // num_segments
    clauses: list[BoolExpr] = []
    for start in range(0, code.num_qubits, segment_size):
        segment = indicators[start:start + segment_size]
        if len(segment) > 1:
            clauses.append(IntLe(sum_of(segment), IntConst(1)))
    return bool_and(clauses)
