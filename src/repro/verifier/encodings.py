"""Classical encodings of the verification tasks of Section 7.

Every task is phrased as a *refutation* query: the formula describes an error
scenario that would falsify the property, so an unsatisfiable query verifies
the property for **all** error configurations at once (which is exactly what
distinguishes verification from Stim-style sampling) and a satisfying
assignment is a concrete counterexample.

Variable naming convention (shared with :mod:`repro.verifier.report`):

* ``ex_i`` / ``ez_i`` — X / Z component of the injected error on qubit ``i``
  (a Y error sets both),
* ``e_i``             — single indicator when the error model fixes the Pauli,
* ``cx_i`` / ``cz_i`` — X / Z component of the decoder's correction,
* ``s_j``             — syndrome bit of stabilizer generator ``j``.

The syndrome bits are Skolemized as the (deterministic) parities the
measurement of each generator would produce on the errored code state, which
is what lets the ``forall e . exists s`` shape of Eqn. (14) be discharged by
a plain SAT query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classical.expr import (
    And,
    BoolConst,
    BoolExpr,
    BoolVar,
    IntConst,
    IntLe,
    Not,
    Or,
    Xor,
    bool_and,
    bool_or,
    sum_of,
)
from repro.codes.base import StabilizerCode
from repro.pauli.pauli import PauliOperator

__all__ = [
    "ErrorModel",
    "error_component_variables",
    "error_weight_indicators",
    "anticommutation_parity",
    "syndrome_definitions",
    "accurate_correction_formula",
    "model_error_weight",
    "precise_detection_base",
    "precise_detection_formula",
]


@dataclass(frozen=True)
class ErrorModel:
    """Which Pauli errors may hit each qubit.

    ``kind`` is one of ``"any"`` (arbitrary Pauli per qubit, as in the general
    verification task), or ``"X"``, ``"Y"``, ``"Z"`` (the single-Pauli models
    used for the Steane case study).
    """

    kind: str = "any"

    def __post_init__(self) -> None:
        if self.kind not in ("any", "X", "Y", "Z"):
            raise ValueError(f"unknown error model {self.kind!r}")

    @classmethod
    def coerce(cls, value: "ErrorModel | str") -> "ErrorModel":
        """Normalise a user-facing ``str | ErrorModel`` argument to an ``ErrorModel``."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(value)
        raise TypeError(f"expected an ErrorModel or a model-kind string, got {value!r}")


def error_component_variables(
    num_qubits: int, model: ErrorModel, prefix: str = ""
) -> tuple[list[BoolExpr], list[BoolExpr], list[BoolExpr]]:
    """Per-qubit X/Z error components plus the weight indicator of each qubit.

    Returns ``(x_components, z_components, weight_indicators)``.  For the
    single-Pauli models one variable ``e_i`` drives both components.
    """
    x_components: list[BoolExpr] = []
    z_components: list[BoolExpr] = []
    indicators: list[BoolExpr] = []
    for qubit in range(num_qubits):
        if model.kind == "any":
            ex = BoolVar(f"{prefix}ex_{qubit}")
            ez = BoolVar(f"{prefix}ez_{qubit}")
            x_components.append(ex)
            z_components.append(ez)
            indicators.append(Or((ex, ez)))
        else:
            indicator = BoolVar(f"{prefix}e_{qubit}")
            indicators.append(indicator)
            has_x = model.kind in ("X", "Y")
            has_z = model.kind in ("Z", "Y")
            x_components.append(indicator if has_x else BoolConst(False))
            z_components.append(indicator if has_z else BoolConst(False))
    return x_components, z_components, indicators


def error_weight_indicators(indicators: list[BoolExpr]):
    """Integer expression for the number of qubits hit by an error."""
    return sum_of(indicators)


def model_error_weight(model: dict[str, bool], error_model: "ErrorModel | None" = None) -> int:
    """Weight of the error a satisfying assignment describes.

    Counts the distinct qubits whose injected-error indicators are set:
    ``ex_i`` / ``ez_i`` under the general model, ``e_i`` under the
    single-Pauli models, either namespace when ``error_model`` is None.
    Binary-search distance discovery uses this to clamp its upper end to the
    *actual* weight of a witness rather than the probed bound — passing the
    active error model matters there, because on a shared per-code session
    the model may also assign indicator variables of *other* guarded task
    formulas, which are unconstrained during this probe and must not count.
    """
    if error_model is None:
        prefixes: tuple[str, ...] = ("ex_", "ez_", "e_")
    elif error_model.kind == "any":
        prefixes = ("ex_", "ez_")
    else:
        prefixes = ("e_",)
    qubits: set[int] = set()
    for name, value in model.items():
        if value and name.startswith(prefixes):
            qubits.add(int(name.rsplit("_", 1)[1]))
    return len(qubits)


def anticommutation_parity(
    operator: PauliOperator, x_components: list[BoolExpr], z_components: list[BoolExpr]
) -> BoolExpr:
    """Parity that is 1 exactly when the symbolic error anti-commutes with ``operator``.

    Uses the symplectic product: the error's X part sees the operator's Z
    support and vice versa.
    """
    contributions: list[BoolExpr] = []
    for qubit in range(operator.num_qubits):
        if operator.z[qubit]:
            contributions.append(x_components[qubit])
        if operator.x[qubit]:
            contributions.append(z_components[qubit])
    contributions = [c for c in contributions if not isinstance(c, BoolConst) or c.value]
    if not contributions:
        return BoolConst(False)
    if len(contributions) == 1:
        return contributions[0]
    return Xor(tuple(contributions))


def syndrome_definitions(
    code: StabilizerCode,
    x_components: list[BoolExpr],
    z_components: list[BoolExpr],
    prefix: str = "",
) -> tuple[list[BoolExpr], list[BoolExpr]]:
    """Syndrome variables together with their defining constraints.

    Returns ``(syndrome_variables, constraints)`` where constraint ``j`` fixes
    ``s_j`` to the anti-commutation parity of the error with generator ``j``.
    """
    syndrome_vars: list[BoolExpr] = []
    constraints: list[BoolExpr] = []
    for index, generator in enumerate(code.stabilizers):
        variable = BoolVar(f"{prefix}s_{index}")
        parity = anticommutation_parity(generator, x_components, z_components)
        syndrome_vars.append(variable)
        constraints.append(Not(Xor((variable, parity))))
    return syndrome_vars, constraints


def _logical_flip(code: StabilizerCode, x_components, z_components) -> BoolExpr:
    """True when the symbolic Pauli acts non-trivially on the codespace.

    A zero-syndrome operator is a logical error iff it anti-commutes with at
    least one logical representative.
    """
    flips = []
    for operator in list(code.logical_xs) + list(code.logical_zs):
        flips.append(anticommutation_parity(operator, x_components, z_components))
    return bool_or(flips)


def accurate_correction_formula(
    code: StabilizerCode,
    max_errors: int | None = None,
    error_model: ErrorModel = ErrorModel("any"),
    extra_constraints: list[BoolExpr] | None = None,
) -> BoolExpr:
    """Refutation formula for the accurate decoding-and-correction task (Eqn. 14).

    The formula is satisfiable iff there exist an error ``e`` (within the
    weight bound and the optional user constraints) and a correction ``c``
    that a minimum-weight decoder could output — same syndrome as ``e`` and
    weight at most the weight of ``e`` (the decoder condition ``P_f``) — such
    that the residual ``e + c`` flips a logical operator.  Unsatisfiability
    therefore proves that every decoder satisfying ``P_f`` corrects every
    error configuration in scope.
    """
    if max_errors is None:
        if code.distance is None:
            raise ValueError("max_errors must be given when the code distance is unknown")
        max_errors = (code.distance - 1) // 2
    error_x, error_z, error_indicators = error_component_variables(
        code.num_qubits, error_model, prefix=""
    )
    corr_x, corr_z, corr_indicators = error_component_variables(
        code.num_qubits, error_model, prefix="c"
    )
    syndrome_vars, syndrome_constraints = syndrome_definitions(code, error_x, error_z)

    conjuncts: list[BoolExpr] = []
    # Error scope: weight bound plus any user constraints (Fig. 7).
    conjuncts.append(IntLe(error_weight_indicators(error_indicators), IntConst(max_errors)))
    conjuncts.extend(extra_constraints or [])
    # Deterministic syndrome extraction.
    conjuncts.extend(syndrome_constraints)
    # Decoder condition P_f: the correction reproduces the syndrome ...
    for generator, syndrome_var in zip(code.stabilizers, syndrome_vars):
        corr_parity = anticommutation_parity(generator, corr_x, corr_z)
        conjuncts.append(Not(Xor((syndrome_var, corr_parity))))
    # ... and has weight no larger than the error (minimum-weight decoder).
    conjuncts.append(
        IntLe(error_weight_indicators(corr_indicators), error_weight_indicators(error_indicators))
    )
    # Residual error e + c acts non-trivially on the codespace.
    residual_x = [Xor((ex, cx)) for ex, cx in zip(error_x, corr_x)]
    residual_z = [Xor((ez, cz)) for ez, cz in zip(error_z, corr_z)]
    conjuncts.append(_logical_flip(code, residual_x, residual_z))
    return bool_and(conjuncts)


def precise_detection_base(
    code: StabilizerCode,
    error_model: ErrorModel = ErrorModel("any"),
):
    """Trial-independent part of the precise-detection query (Eqn. 15).

    Returns ``(formula, weight)``: the formula constrains the error to be
    non-trivial (weight at least one), syndrome-free, and logically acting —
    everything except the per-trial upper weight bound — and ``weight`` is
    the integer expression for the error weight.  A distance walk asserts
    this base once and activates ``weight <= t - 1`` per trial ``t`` through
    selector-guarded cardinality constraints, sharing one encoding (and one
    incremental solver) across every trial distance.
    """
    error_x, error_z, indicators = error_component_variables(
        code.num_qubits, error_model, prefix=""
    )
    conjuncts: list[BoolExpr] = []
    weight = error_weight_indicators(indicators)
    conjuncts.append(IntLe(IntConst(1), weight))
    # All syndromes are zero: the error commutes with every generator.
    for generator in code.stabilizers:
        conjuncts.append(Not(anticommutation_parity(generator, error_x, error_z)))
    # Yet the error acts non-trivially on the codespace.
    conjuncts.append(_logical_flip(code, error_x, error_z))
    return bool_and(conjuncts), weight


def precise_detection_formula(
    code: StabilizerCode,
    trial_distance: int,
    error_model: ErrorModel = ErrorModel("any"),
) -> BoolExpr:
    """Refutation formula for the precise-detection task (Eqn. 15).

    Satisfiable iff some error of weight between 1 and ``trial_distance - 1``
    has zero syndrome yet flips a logical operator, i.e. an undetectable
    logical error below the trial distance exists.  For ``trial_distance``
    equal to the true code distance the query is unsatisfiable; for
    ``trial_distance = d + 1`` the model returned is a minimum-weight
    undetectable error.
    """
    if trial_distance < 2:
        raise ValueError("trial_distance must be at least 2")
    base, weight = precise_detection_base(code, error_model)
    return bool_and([base, IntLe(weight, IntConst(trial_distance - 1))])
