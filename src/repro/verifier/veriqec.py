"""The Veri-QEC front end.

``VeriQEC`` bundles the verification functionalities evaluated in Section 7:

* ``verify_correction`` — general verification of accurate decoding and
  correction for all error configurations up to the correctable weight
  (Fig. 4 / Table 3);
* ``verify_detection`` — precise detection of errors below a trial distance,
  and ``find_distance`` which uses it to discover the true code distance
  (Fig. 6);
* ``verify_with_constraints`` — partial verification under user-provided
  error constraints (Fig. 7);
* ``verify_program`` — the program-logic route: weakest preconditions of a
  QEC program, VC generation and SMT checking (Sections 4-5), provided by
  :mod:`repro.hoare` and :mod:`repro.vc`.
"""

from __future__ import annotations

import time

from repro.classical.expr import BoolExpr, bool_and
from repro.codes.base import StabilizerCode
from repro.smt.interface import check_formula
from repro.smt.parallel import ParallelChecker
from repro.verifier.constraints import discreteness_constraint, locality_constraint
from repro.verifier.encodings import (
    ErrorModel,
    accurate_correction_formula,
    precise_detection_formula,
)
from repro.verifier.report import VerificationReport

__all__ = ["VeriQEC"]


class VeriQEC:
    """Automated verifier for stabilizer-code programs."""

    def __init__(self, num_workers: int = 1, split_heuristic_weight: int | None = None):
        self.num_workers = num_workers
        self.split_heuristic_weight = split_heuristic_weight

    # ------------------------------------------------------------------
    def _run(self, task: str, code: StabilizerCode, formula: BoolExpr, parallel: bool) -> VerificationReport:
        start = time.perf_counter()
        if parallel and self.num_workers > 1:
            split_variables = [f"e_{q}" for q in range(code.num_qubits)]
            weight = self.split_heuristic_weight or 2 * (code.distance or 3)
            checker = ParallelChecker(
                formula,
                split_variables=split_variables,
                heuristic_weight=weight,
                threshold=code.num_qubits,
                num_workers=self.num_workers,
            )
            check = checker.run()
        else:
            check = check_formula(formula)
        elapsed = time.perf_counter() - start
        return VerificationReport(
            task=task,
            code_name=code.name,
            verified=check.is_unsat,
            counterexample=check.model if check.is_sat else None,
            elapsed_seconds=elapsed,
            num_variables=check.num_variables,
            num_clauses=check.num_clauses,
            conflicts=check.conflicts,
            details=dict(check.metadata),
        )

    # ------------------------------------------------------------------
    def verify_correction(
        self,
        code: StabilizerCode,
        max_errors: int | None = None,
        error_model: ErrorModel | str = "any",
        extra_constraints: list[BoolExpr] | None = None,
        parallel: bool = False,
    ) -> VerificationReport:
        """Verify accurate decoding and correction for all errors in scope."""
        model = ErrorModel(error_model) if isinstance(error_model, str) else error_model
        formula = accurate_correction_formula(
            code, max_errors=max_errors, error_model=model, extra_constraints=extra_constraints
        )
        report = self._run("accurate-correction", code, formula, parallel)
        report.details["max_errors"] = (
            max_errors if max_errors is not None else (code.distance - 1) // 2
        )
        report.details["error_model"] = model.kind
        return report

    def verify_detection(
        self,
        code: StabilizerCode,
        trial_distance: int | None = None,
        error_model: ErrorModel | str = "any",
        parallel: bool = False,
    ) -> VerificationReport:
        """Verify that every error of weight below the trial distance is detectable."""
        if trial_distance is None:
            if code.distance is None:
                raise ValueError("trial_distance required when the code distance is unknown")
            trial_distance = code.distance
        model = ErrorModel(error_model) if isinstance(error_model, str) else error_model
        formula = precise_detection_formula(code, trial_distance, error_model=model)
        report = self._run("precise-detection", code, formula, parallel)
        report.details["trial_distance"] = trial_distance
        return report

    def find_distance(self, code: StabilizerCode, max_trial: int | None = None) -> int:
        """Discover the code distance by increasing the trial distance until a
        counterexample (a minimum-weight undetectable error) appears."""
        limit = max_trial or code.num_qubits + 1
        for trial in range(2, limit + 1):
            report = self.verify_detection(code, trial_distance=trial)
            if not report.verified:
                return trial - 1
        return limit

    def verify_with_constraints(
        self,
        code: StabilizerCode,
        locality: bool = False,
        discreteness: bool = False,
        allowed_qubits: list[int] | None = None,
        max_errors: int | None = None,
        error_model: ErrorModel | str = "any",
        seed: int | None = None,
        parallel: bool = False,
    ) -> VerificationReport:
        """Partial verification under user-provided error constraints (Fig. 7)."""
        model = ErrorModel(error_model) if isinstance(error_model, str) else error_model
        constraints: list[BoolExpr] = []
        labels = []
        if locality:
            constraints.append(
                locality_constraint(code, model, allowed_qubits=allowed_qubits, seed=seed)
            )
            labels.append("locality")
        if discreteness:
            constraints.append(discreteness_constraint(code, model))
            labels.append("discreteness")
        report = self.verify_correction(
            code,
            max_errors=max_errors,
            error_model=model,
            extra_constraints=constraints,
            parallel=parallel,
        )
        report.task = "constrained-correction"
        report.details["constraints"] = labels or ["none"]
        return report

    # ------------------------------------------------------------------
    def verify_fixed_error(
        self,
        code: StabilizerCode,
        error_qubits: dict[int, str],
        max_errors: int | None = None,
    ) -> VerificationReport:
        """Check a single, fixed error pattern (the functionality Stim covers)."""
        constraints: list[BoolExpr] = []
        from repro.classical.expr import BoolVar, Not

        for qubit in range(code.num_qubits):
            pauli = error_qubits.get(qubit)
            for component, prefix in (("X", "ex"), ("Z", "ez")):
                name = f"{prefix}_{qubit}"
                present = pauli in (component, "Y") if pauli else False
                variable = BoolVar(name)
                constraints.append(variable if present else Not(variable))
        report = self.verify_correction(
            code,
            max_errors=max_errors if max_errors is not None else len(error_qubits),
            error_model="any",
            extra_constraints=constraints,
        )
        report.task = "fixed-error"
        report.details["error_qubits"] = dict(error_qubits)
        return report

    # ------------------------------------------------------------------
    def verify_program(self, triple, decoder_condition=None) -> VerificationReport:
        """Verify a Hoare triple about a QEC program (the program-logic route)."""
        from repro.vc.pipeline import verify_triple

        return verify_triple(triple, decoder_condition=decoder_condition)
