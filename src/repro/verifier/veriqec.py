"""The Veri-QEC front end, now a thin facade over :class:`repro.api.Engine`.

``VeriQEC`` keeps the historical method-per-functionality surface evaluated
in Section 7 — ``verify_correction`` (Fig. 4 / Table 3), ``verify_detection``
and ``find_distance`` (Fig. 6), ``verify_with_constraints`` (Fig. 7),
``verify_fixed_error`` and ``verify_program`` — but every call is reified as
a task object and dispatched through the engine, so the facade and the new
``repro.api`` layer can never drift apart.  Methods still return the legacy
:class:`~repro.verifier.report.VerificationReport`.

The ``repro.api`` imports are deferred to call time: this module is imported
by ``repro.verifier.__init__``, which the engine itself imports for the
encodings, and a module-level import would close that cycle.
"""

from __future__ import annotations

from repro.classical.expr import BoolExpr
from repro.codes.base import StabilizerCode
from repro.verifier.encodings import ErrorModel
from repro.verifier.report import VerificationReport

__all__ = ["VeriQEC"]


class VeriQEC:
    """Automated verifier for stabilizer-code programs."""

    def __init__(self, num_workers: int = 1, split_heuristic_weight: int | None = None):
        self.num_workers = num_workers
        self.split_heuristic_weight = split_heuristic_weight
        self._engine = None

    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The shared :class:`repro.api.Engine` behind this facade."""
        if self._engine is None:
            from repro.api.engine import Engine

            self._engine = Engine()
        return self._engine

    def _backend(self, parallel: bool):
        from repro.api.backends import ParallelBackend, SerialBackend

        if parallel and self.num_workers > 1:
            return ParallelBackend(
                num_workers=self.num_workers, heuristic_weight=self.split_heuristic_weight
            )
        return SerialBackend()

    def _run(self, task, parallel: bool = False) -> VerificationReport:
        return self.engine.run(task, backend=self._backend(parallel)).to_report()

    # ------------------------------------------------------------------
    def verify_correction(
        self,
        code: StabilizerCode,
        max_errors: int | None = None,
        error_model: ErrorModel | str = "any",
        extra_constraints: list[BoolExpr] | None = None,
        parallel: bool = False,
    ) -> VerificationReport:
        """Verify accurate decoding and correction for all errors in scope."""
        from repro.api.tasks import CorrectionTask

        task = CorrectionTask(
            code=code,
            max_errors=max_errors,
            error_model=ErrorModel.coerce(error_model),
            extra_constraints=tuple(extra_constraints or ()),
        )
        return self._run(task, parallel)

    def verify_detection(
        self,
        code: StabilizerCode,
        trial_distance: int | None = None,
        error_model: ErrorModel | str = "any",
        parallel: bool = False,
    ) -> VerificationReport:
        """Verify that every error of weight below the trial distance is detectable."""
        from repro.api.tasks import DetectionTask

        if trial_distance is None and code.distance is None:
            raise ValueError("trial_distance required when the code distance is unknown")
        task = DetectionTask(
            code=code,
            trial_distance=trial_distance,
            error_model=ErrorModel.coerce(error_model),
        )
        return self._run(task, parallel)

    def find_distance(self, code: StabilizerCode, max_trial: int | None = None) -> int:
        """Discover the code distance (the weight of the minimum undetectable
        logical error) by binary-searching guarded weight bounds.

        The whole search runs as one incremental solving session (the base
        detection encoding is shared across every probe, via the engine's
        per-code resource layer); with ``num_workers > 1`` the session spans
        a persistent worker pool.
        """
        return self.engine.find_distance(
            code, max_trial=max_trial, backend=self._backend(parallel=True)
        )

    def verify_with_constraints(
        self,
        code: StabilizerCode,
        locality: bool = False,
        discreteness: bool = False,
        allowed_qubits: list[int] | None = None,
        max_errors: int | None = None,
        error_model: ErrorModel | str = "any",
        seed: int | None = None,
        parallel: bool = False,
    ) -> VerificationReport:
        """Partial verification under user-provided error constraints (Fig. 7)."""
        from repro.api.tasks import ConstrainedTask

        task = ConstrainedTask(
            code=code,
            locality=locality,
            discreteness=discreteness,
            allowed_qubits=tuple(allowed_qubits) if allowed_qubits is not None else None,
            max_errors=max_errors,
            error_model=ErrorModel.coerce(error_model),
            seed=seed,
        )
        return self._run(task, parallel)

    # ------------------------------------------------------------------
    def verify_fixed_error(
        self,
        code: StabilizerCode,
        error_qubits: dict[int, str],
        max_errors: int | None = None,
    ) -> VerificationReport:
        """Check a single, fixed error pattern (the functionality Stim covers)."""
        from repro.api.tasks import FixedErrorTask

        task = FixedErrorTask(
            code=code,
            error_qubits=tuple(sorted(error_qubits.items())),
            max_errors=max_errors,
        )
        return self._run(task)

    # ------------------------------------------------------------------
    def verify_program(self, triple, decoder_condition=None) -> VerificationReport:
        """Verify a Hoare triple about a QEC program (the program-logic route)."""
        from repro.api.tasks import ProgramTask

        task = ProgramTask(triple=triple, decoder_condition=decoder_condition)
        return self._run(task)
