"""Program and correctness-formula generators for QEC scenarios.

This module plays the role of the paper's "correctness formula generator"
(Appendix D.1): given a stabilizer code it emits the error-correction program
of Table 1 (propagation errors, optional transversal logical gate, error
injection, syndrome measurement, decoder call, correction), the Hoare triple
of Eqn. (2)/(7), and the minimum-weight decoder condition ``P_f`` of
Section 5.2.  The fault-tolerant scenarios of Section 7.3 (logical GHZ
preparation, logical CNOT with propagated errors) are built on top of it by
placing several code blocks side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classical.expr import (
    BoolExpr,
    BoolVar,
    IntConst,
    IntLe,
    Not,
    Xor,
    bool_and,
    sum_of,
)
from repro.classical.parity import ParityExpr
from repro.codes.base import StabilizerCode
from repro.hoare.triple import HoareTriple
from repro.hoare.wp import decoder_output_expr
from repro.lang.ast import (
    AssignDecoder,
    ConditionalGate,
    ConditionalPauli,
    Measure,
    Statement,
    Unitary,
    sequence,
)
from repro.logic.assertion import Assertion, conjunction, pauli_atom
from repro.pauli.pauli import PauliOperator

__all__ = [
    "QECScenario",
    "error_injection",
    "syndrome_measurement",
    "decoder_call_and_correction",
    "correction_program",
    "min_weight_decoder_condition",
    "correction_triple",
    "transversal_gate",
    "logical_cnot_with_propagation",
    "ghz_preparation",
]


@dataclass
class QECScenario:
    """A program together with its correctness formula and decoder condition."""

    triple: HoareTriple
    decoder_condition: BoolExpr | None
    code: StabilizerCode
    description: str = ""


# ----------------------------------------------------------------------
# Program fragments (the rows of Table 1)
# ----------------------------------------------------------------------
def error_injection(
    code: StabilizerCode, pauli: str, variable_prefix: str = "e", offset: int = 0
) -> Statement:
    """``for i do [e_i] q_i *= E end`` — conditional single-qubit errors."""
    statements = []
    for qubit in range(code.num_qubits):
        condition = BoolVar(f"{variable_prefix}_{qubit + 1}")
        if pauli.upper() in ("X", "Y", "Z"):
            statements.append(ConditionalPauli(condition, qubit + offset, pauli.upper()))
        else:
            statements.append(ConditionalGate(condition, pauli.upper(), (qubit + offset,)))
    return sequence(*statements)


def syndrome_measurement(
    code: StabilizerCode, variable_prefix: str = "s", offset: int = 0, block: str = ""
) -> Statement:
    """``for i do s_i := meas[g_i] end`` over the code's generators."""
    statements = []
    for index, generator in enumerate(code.stabilizers):
        observable = _shift(generator, offset, _total_qubits(code, offset))
        statements.append(Measure(f"{block}{variable_prefix}_{index + 1}", observable))
    return sequence(*statements)


def decoder_call_and_correction(
    code: StabilizerCode,
    syndrome_prefix: str = "s",
    offset: int = 0,
    block: str = "",
) -> Statement:
    """Decoder calls followed by conditional X and Z corrections.

    For CSS codes the X-type syndromes drive the Z corrections and the Z-type
    syndromes the X corrections, as in Table 1; for non-CSS codes a single
    decoder consumes the full syndrome and outputs both components.
    """
    x_syndromes = []
    z_syndromes = []
    for index, generator in enumerate(code.stabilizers):
        name = f"{block}{syndrome_prefix}_{index + 1}"
        if any(generator.x) and not any(generator.z):
            x_syndromes.append(name)
        elif any(generator.z) and not any(generator.x):
            z_syndromes.append(name)
        else:
            x_syndromes.append(name)
            z_syndromes.append(name)
    n = code.num_qubits
    z_targets = tuple(f"{block}z_{i + 1}" for i in range(n))
    x_targets = tuple(f"{block}x_{i + 1}" for i in range(n))
    statements: list[Statement] = [
        AssignDecoder(z_targets, f"{block}f_z", tuple(x_syndromes) or tuple(z_syndromes)),
        AssignDecoder(x_targets, f"{block}f_x", tuple(z_syndromes) or tuple(x_syndromes)),
    ]
    for qubit in range(n):
        statements.append(ConditionalPauli(BoolVar(x_targets[qubit]), qubit + offset, "X"))
    for qubit in range(n):
        statements.append(ConditionalPauli(BoolVar(z_targets[qubit]), qubit + offset, "Z"))
    return sequence(*statements)


def transversal_gate(code: StabilizerCode, gate: str, offset: int = 0) -> Statement:
    """A transversal single-qubit logical gate (H, S, ...) on one code block."""
    return sequence(
        *(Unitary(gate, (qubit + offset,)) for qubit in range(code.num_qubits))
    )


def correction_program(
    code: StabilizerCode,
    error: str = "Y",
    logical_gate: str | None = None,
    propagation: bool = False,
) -> Statement:
    """The ``Steane(E, U)`` program of Table 1, generalised to any CSS code."""
    parts: list[Statement] = []
    if propagation:
        parts.append(error_injection(code, error, variable_prefix="ep"))
    if logical_gate is not None:
        parts.append(transversal_gate(code, logical_gate))
    parts.append(error_injection(code, error, variable_prefix="e"))
    parts.append(syndrome_measurement(code))
    parts.append(decoder_call_and_correction(code))
    return sequence(*parts)


# ----------------------------------------------------------------------
# Decoder condition P_f (Eqn. 27/28)
# ----------------------------------------------------------------------
def min_weight_decoder_condition(
    code: StabilizerCode,
    error_prefixes: tuple[str, ...] = ("e",),
    syndrome_prefix: str = "s",
    block: str = "",
    max_corrections: int | None = None,
) -> BoolExpr:
    """The necessary condition of a minimum-weight decoder.

    The corrections must (i) reproduce every measured syndrome and (ii) have
    weight no larger than the number of injected errors (or the explicit
    ``max_corrections`` bound, used for fixed non-Pauli error locations where
    no error indicator variables exist), for both the X and the Z component.
    """
    n = code.num_qubits
    x_syndromes = []
    z_syndromes = []
    for index, generator in enumerate(code.stabilizers):
        name = f"{block}{syndrome_prefix}_{index + 1}"
        if any(generator.x) and not any(generator.z):
            x_syndromes.append(name)
        elif any(generator.z) and not any(generator.x):
            z_syndromes.append(name)
        else:
            x_syndromes.append(name)
            z_syndromes.append(name)
    z_args = tuple(x_syndromes) or tuple(z_syndromes)
    x_args = tuple(z_syndromes) or tuple(x_syndromes)
    z_outputs = [decoder_output_expr(f"{block}f_z", i + 1, z_args) for i in range(n)]
    x_outputs = [decoder_output_expr(f"{block}f_x", i + 1, x_args) for i in range(n)]

    conjuncts: list[BoolExpr] = []
    # (i) corrections reproduce the syndromes: for every generator, the parity
    # of the corrections that anti-commute with it equals its syndrome bit.
    for index, generator in enumerate(code.stabilizers):
        syndrome = BoolVar(f"{block}{syndrome_prefix}_{index + 1}")
        contributions: list[BoolExpr] = []
        for qubit in range(n):
            if generator.x[qubit]:
                contributions.append(z_outputs[qubit])
            if generator.z[qubit]:
                contributions.append(x_outputs[qubit])
        parity = contributions[0] if len(contributions) == 1 else Xor(tuple(contributions))
        conjuncts.append(Not(Xor((syndrome, parity))))
    # (ii) minimum weight: the number of corrections of either kind is bounded
    # by the total number of injected errors (or an explicit bound).
    if max_corrections is not None:
        error_count = IntConst(max_corrections)
    else:
        error_count = sum_of(
            BoolVar(f"{prefix}_{qubit + 1}")
            for prefix in error_prefixes
            for qubit in range(n)
        )
    conjuncts.append(IntLe(sum_of(x_outputs), error_count))
    conjuncts.append(IntLe(sum_of(z_outputs), error_count))
    return bool_and(conjuncts)


# ----------------------------------------------------------------------
# Correctness formulas
# ----------------------------------------------------------------------
def _logical_image(
    code: StabilizerCode, logical_gate: str | None, logical_index: int = 0
) -> PauliOperator:
    """The image ``U L U^dagger`` of the logical Z under the transversal gate."""
    logical = code.logical_zs[logical_index]
    if logical_gate is None:
        return logical
    operator = logical
    from repro.pauli.clifford import conjugate_pauli

    for qubit in range(code.num_qubits):
        operator = conjugate_pauli(operator, logical_gate, (qubit,), "forward")
    return operator


def correction_triple(
    code: StabilizerCode,
    error: str = "Y",
    logical_gate: str | None = None,
    propagation: bool = False,
    max_errors: int | None = None,
    phase_variable: str = "b",
) -> QECScenario:
    """The correctness formula of Eqn. (2)/(7) for one error-correction round.

    The initial state is the logical state stabilized by the generators
    together with ``(-1)^b U^dagger Z_L U`` (so that the error-free program
    would end in ``(-1)^b Z_L``); the postcondition asserts the generators
    and ``(-1)^b Z_L``.  The classical constraint bounds the number of
    injected (and propagated) errors.
    """
    if max_errors is None:
        max_errors = (code.distance - 1) // 2 if code.distance else 1
    phase = ParityExpr.of_variable(phase_variable)

    post_logical = code.logical_zs[0]
    pre_logical = _logical_image(code, logical_gate)

    precondition: Assertion = conjunction(
        [pauli_atom(gen) for gen in code.stabilizers] + [pauli_atom(pre_logical, phase)]
    )
    postcondition: Assertion = conjunction(
        [pauli_atom(gen) for gen in code.stabilizers] + [pauli_atom(post_logical, phase)]
    )

    error_prefixes = ("e", "ep") if propagation else ("e",)
    error_count = sum_of(
        BoolVar(f"{prefix}_{qubit + 1}")
        for prefix in error_prefixes
        for qubit in range(code.num_qubits)
    )
    classical_constraint = IntLe(error_count, IntConst(max_errors))

    program = correction_program(
        code, error=error, logical_gate=logical_gate, propagation=propagation
    )
    triple = HoareTriple(
        precondition,
        program,
        postcondition,
        classical_constraint=classical_constraint,
        name=f"{code.name}-{error}-correction" + (f"-{logical_gate}" if logical_gate else ""),
    )
    decoder_condition = min_weight_decoder_condition(code, error_prefixes=error_prefixes)
    return QECScenario(
        triple,
        decoder_condition,
        code,
        description=(
            f"one round of error correction on {code.describe()} with {error} errors"
            + (f" after a transversal {logical_gate}" if logical_gate else "")
            + (" including propagated errors" if propagation else "")
        ),
    )


# ----------------------------------------------------------------------
# Fault-tolerant scenarios (Section 7.3)
# ----------------------------------------------------------------------
def _shift(operator: PauliOperator, offset: int, total: int) -> PauliOperator:
    """Embed an operator on one block into a multi-block register."""
    x_bits = [0] * total
    z_bits = [0] * total
    for index, (xb, zb) in enumerate(zip(operator.x, operator.z)):
        x_bits[index + offset] = xb
        z_bits[index + offset] = zb
    return PauliOperator(tuple(x_bits), tuple(z_bits), operator.phase)


def _total_qubits(code: StabilizerCode, offset: int) -> int:
    # The shift helper needs the total register size; blocks are laid out
    # contiguously so the caller's offset plus one block is a lower bound.
    return max(code.num_qubits + offset, code.num_qubits * (offset // code.num_qubits + 1))


def _block_operator(code: StabilizerCode, operator: PauliOperator, block: int, blocks: int) -> PauliOperator:
    return _shift(operator, block * code.num_qubits, blocks * code.num_qubits)


def logical_cnot_with_propagation(
    code: StabilizerCode, error: str = "X", max_errors: int = 1
) -> QECScenario:
    """Fig. 10: a propagated error, a transversal logical CNOT, then EC on both blocks."""
    blocks = 2
    total = blocks * code.num_qubits
    n = code.num_qubits

    parts: list[Statement] = []
    # Propagated errors on the control block.
    for qubit in range(n):
        parts.append(ConditionalPauli(BoolVar(f"ep_{qubit + 1}"), qubit, error))
    # Transversal CNOT: control block 0, target block 1.
    for qubit in range(n):
        parts.append(Unitary("CNOT", (qubit, qubit + n)))
    # One round of error correction on each block.
    for block in range(blocks):
        block_code_offset = block * n
        prefix = f"b{block}_"
        for index, generator in enumerate(code.stabilizers):
            observable = _shift(generator, block_code_offset, total)
            parts.append(Measure(f"{prefix}s_{index + 1}", observable))
        parts.append(
            _block_decoder_and_correction(code, block_code_offset, prefix)
        )
    program = sequence(*parts)

    # Specification: input |0>_L |0>_L; the logical CNOT keeps Z_L Z_L ...
    gens = [
        _block_operator(code, gen, block, blocks)
        for block in range(blocks)
        for gen in code.stabilizers
    ]
    z0 = _block_operator(code, code.logical_zs[0], 0, blocks)
    z1 = _block_operator(code, code.logical_zs[0], 1, blocks)
    phase0 = ParityExpr.of_variable("b0")
    phase1 = ParityExpr.of_variable("b1")
    precondition = conjunction(
        [pauli_atom(g) for g in gens] + [pauli_atom(z0, phase0), pauli_atom(z1, phase1)]
    )
    # The transversal CNOT maps the input stabilizers (-1)^{b0} Z_L^{(0)} and
    # (-1)^{b1} Z_L^{(1)} to (-1)^{b0} Z_L^{(0)} and (-1)^{b1} Z_L^{(0)} Z_L^{(1)}.
    postcondition = conjunction(
        [pauli_atom(g) for g in gens]
        + [pauli_atom(z0, phase0), pauli_atom(z0 * z1, phase1)]
    )
    classical_constraint = IntLe(
        sum_of(BoolVar(f"ep_{qubit + 1}") for qubit in range(n)), IntConst(max_errors)
    )
    decoder_condition = bool_and(
        _block_decoder_condition(code, f"b{block}_", total, ("ep",))
        for block in range(blocks)
    )
    triple = HoareTriple(
        precondition,
        program,
        postcondition,
        classical_constraint=classical_constraint,
        name=f"{code.name}-logical-CNOT-propagation",
    )
    return QECScenario(
        triple,
        decoder_condition,
        code,
        description="logical CNOT with errors propagated from the previous cycle (Fig. 10)",
    )


def ghz_preparation(code: StabilizerCode, blocks: int = 3) -> QECScenario:
    """Fig. 9: fault-tolerant logical GHZ state preparation (error-free scenario).

    The program applies a transversal logical H on the first block followed by
    a ladder of transversal logical CNOTs; the correctness formula states that
    the logical |0...0> input ends in the GHZ stabilizer state.
    """
    n = code.num_qubits
    total = blocks * n
    parts: list[Statement] = []
    for qubit in range(n):
        parts.append(Unitary("H", (qubit,)))
    for block in range(blocks - 1):
        for qubit in range(n):
            parts.append(Unitary("CNOT", (qubit + block * n, qubit + (block + 1) * n)))
    program = sequence(*parts)

    gens = [
        _block_operator(code, gen, block, blocks)
        for block in range(blocks)
        for gen in code.stabilizers
    ]
    logical_zs = [
        _block_operator(code, code.logical_zs[0], block, blocks) for block in range(blocks)
    ]
    logical_xs = [
        _block_operator(code, code.logical_xs[0], block, blocks) for block in range(blocks)
    ]
    precondition = conjunction([pauli_atom(g) for g in gens] + [pauli_atom(z) for z in logical_zs])
    ghz_stabilizers = [_product(logical_xs)]
    for block in range(blocks - 1):
        ghz_stabilizers.append(logical_zs[block] * logical_zs[block + 1])
    postcondition = conjunction(
        [pauli_atom(g) for g in gens] + [pauli_atom(op) for op in ghz_stabilizers]
    )
    triple = HoareTriple(
        precondition,
        program,
        postcondition,
        name=f"{code.name}-ghz-{blocks}",
    )
    return QECScenario(
        triple, None, code, description=f"logical GHZ preparation over {blocks} blocks (Fig. 9)"
    )


def _product(operators: list[PauliOperator]) -> PauliOperator:
    result = operators[0]
    for op in operators[1:]:
        result = result * op
    return result


def _block_decoder_and_correction(code: StabilizerCode, offset: int, prefix: str) -> Statement:
    return decoder_call_and_correction(code, offset=offset, block=prefix)


def _block_decoder_condition(
    code: StabilizerCode, prefix: str, total: int, error_prefixes: tuple[str, ...]
) -> BoolExpr:
    return min_weight_decoder_condition(code, error_prefixes=error_prefixes, block=prefix)
