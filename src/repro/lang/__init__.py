"""The QEC programming language: abstract syntax, parser and sugar."""

from repro.lang.ast import (
    Assign,
    AssignDecoder,
    ConditionalGate,
    ConditionalPauli,
    If,
    InitQubit,
    Measure,
    Program,
    Seq,
    Skip,
    Statement,
    Unitary,
    While,
    sequence,
)
from repro.lang.parser import parse_program

__all__ = [
    "Statement",
    "Skip",
    "InitQubit",
    "Unitary",
    "Assign",
    "AssignDecoder",
    "Measure",
    "ConditionalPauli",
    "ConditionalGate",
    "If",
    "While",
    "Seq",
    "Program",
    "sequence",
    "parse_program",
]
