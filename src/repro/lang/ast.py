"""Abstract syntax of the QEC programming language (Section 4.1).

The command set Prog is::

    S ::= skip | q_i := |0> | q_i *= U1 | q_i q_j *= U2
        | x := e | x := meas[P] | S # S
        | if b then S else S end | while b do S end

plus the syntactic sugar ``[b] q_i *= U`` for conditional (error) gates and
decoder calls ``x_1,...,x_n := f(s_1,...,s_m)`` whose outputs stay
uninterpreted in verification conditions.  Statements are immutable
dataclasses; ``Seq`` flattens nested sequences so a program is just a list of
basic commands, which is what the weakest-precondition calculator walks
backwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classical.expr import BoolExpr, Expr
from repro.classical.parity import ParityExpr
from repro.pauli.pauli import PauliOperator

__all__ = [
    "Statement",
    "Skip",
    "InitQubit",
    "Unitary",
    "Assign",
    "AssignDecoder",
    "Measure",
    "ConditionalPauli",
    "ConditionalGate",
    "If",
    "While",
    "Seq",
    "Program",
    "sequence",
]

SINGLE_QUBIT_GATES = ("X", "Y", "Z", "H", "S", "SDG", "T", "TDG")
TWO_QUBIT_GATES = ("CNOT", "CZ", "ISWAP")


class Statement:
    """Base class of program statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Skip(Statement):
    """The empty program."""


@dataclass(frozen=True)
class InitQubit(Statement):
    """``q_i := |0>`` — reset one qubit to the ground state."""

    qubit: int


@dataclass(frozen=True)
class Unitary(Statement):
    """``q_i *= U1`` or ``q_i q_j *= U2`` for the Clifford+T gate set."""

    gate: str
    qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        name = self.gate.upper()
        object.__setattr__(self, "gate", name)
        object.__setattr__(self, "qubits", tuple(self.qubits))
        if name in SINGLE_QUBIT_GATES:
            expected = 1
        elif name in TWO_QUBIT_GATES:
            expected = 2
        else:
            raise ValueError(f"unsupported gate {self.gate!r}")
        if len(self.qubits) != expected:
            raise ValueError(f"gate {name} expects {expected} qubit(s)")
        if expected == 2 and self.qubits[0] == self.qubits[1]:
            raise ValueError("two-qubit gates need distinct qubits")


@dataclass(frozen=True)
class Assign(Statement):
    """Classical assignment ``x := e``."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class AssignDecoder(Statement):
    """Decoder call ``x_1, ..., x_n := f(s_1, ..., s_m)``.

    The decoder stays an uninterpreted function in verification conditions;
    its outputs are only constrained through the decoder condition ``P_f``.
    """

    targets: tuple[str, ...]
    function: str
    arguments: tuple[str, ...]


@dataclass(frozen=True)
class Measure(Statement):
    """``x := meas[P]`` — projective measurement of a Pauli observable.

    ``phase`` allows observables of the form ``(-1)^phi P`` (e.g. measuring a
    flipped stabilizer); the outcome bit is stored in ``target``.
    """

    target: str
    observable: PauliOperator
    phase: ParityExpr = field(default_factory=ParityExpr.zero)


@dataclass(frozen=True)
class ConditionalPauli(Statement):
    """``[b] q_i *= U`` with ``U`` a Pauli: apply the error when ``b`` holds."""

    condition: BoolExpr
    qubit: int
    pauli: str

    def __post_init__(self) -> None:
        if self.pauli.upper() not in ("X", "Y", "Z"):
            raise ValueError("conditional Pauli statements only take X, Y or Z")
        object.__setattr__(self, "pauli", self.pauli.upper())


@dataclass(frozen=True)
class ConditionalGate(Statement):
    """``[b] q *= U`` for a non-Pauli U (H or T errors of the case study)."""

    condition: BoolExpr
    gate: str
    qubits: tuple[int, ...]


@dataclass(frozen=True)
class If(Statement):
    """``if b then S1 else S0 end``."""

    condition: BoolExpr
    then_branch: Statement
    else_branch: Statement


@dataclass(frozen=True)
class While(Statement):
    """``while b do S end`` (supported by the semantics; wp needs an invariant)."""

    condition: BoolExpr
    body: Statement


@dataclass(frozen=True)
class Seq(Statement):
    """Sequential composition ``S1 # S2 # ...``; nested sequences are flattened."""

    statements: tuple[Statement, ...]

    def __post_init__(self) -> None:
        flattened: list[Statement] = []
        for statement in self.statements:
            if isinstance(statement, Seq):
                flattened.extend(statement.statements)
            elif isinstance(statement, Skip):
                continue
            else:
                flattened.append(statement)
        object.__setattr__(self, "statements", tuple(flattened))


Program = Statement


def sequence(*statements: Statement) -> Statement:
    """Compose statements, flattening nested sequences and dropping skips."""
    seq = Seq(tuple(statements))
    if not seq.statements:
        return Skip()
    if len(seq.statements) == 1:
        return seq.statements[0]
    return seq
