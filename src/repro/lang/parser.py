"""A tokenizer and recursive-descent parser for the textual QEC language.

The concrete syntax mirrors the paper's program listings (Table 1, Fig. 9/10)
closely enough to write them down directly::

    for i in 1..7 do q[i] *= H end;
    for i in 1..7 do [e[i]] q[i] *= Y end;
    for i in 1..6 do s[i] := meas[g[i]] end      -- with named observables
    s[1] := meas[X1 X3 X5 X7];
    z[1], z[2], z[3] := f_z(s[1], s[2], s[3]);
    if b then q[2] *= X else skip end

Qubit and variable indices are 1-based in the surface syntax (as in the
paper) and converted to 0-based indices in the AST.  ``for`` loops with
constant bounds are unrolled at parse time; the loop variable may appear in
index arithmetic (``q[i+7]``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.classical.expr import (
    And,
    BoolConst,
    BoolExpr,
    BoolVar,
    IntConst,
    IntEq,
    IntLe,
    IntVar,
    Not,
    Or,
    Xor,
    sum_of,
)
from repro.lang.ast import (
    Assign,
    AssignDecoder,
    ConditionalGate,
    ConditionalPauli,
    If,
    InitQubit,
    Measure,
    Skip,
    Statement,
    Unitary,
    While,
    sequence,
)
from repro.pauli.pauli import PauliOperator

__all__ = ["parse_program", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed program text."""


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<number>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\|0>|:=|\*=|\.\.|<=|==|&&|\|\||[\[\](),;+^!<>|])
  | (?P<skipchar>[ \t\r\n]+)
  | (?P<comment>--[^\n]*|\#[^\n]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_PATTERN.match(source, position)
        if match is None:
            raise ParseError(f"unexpected character {source[position]!r} at offset {position}")
        position = match.end()
        kind = match.lastgroup
        if kind in ("skipchar", "comment"):
            continue
        tokens.append(Token(kind, match.group(), match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token], num_qubits: int, observables: dict | None):
        self.tokens = tokens
        self.index = 0
        self.num_qubits = num_qubits
        self.observables = observables or {}
        self.loop_bindings: dict[str, int] = {}

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def peek_text(self) -> str | None:
        token = self.peek()
        return token.text if token else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.index += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.advance()
        if token.text != text:
            raise ParseError(f"expected {text!r} but found {token.text!r}")
        return token

    def accept(self, text: str) -> bool:
        if self.peek_text() == text:
            self.advance()
            return True
        return False

    # -- program ---------------------------------------------------------
    def parse_program(self) -> Statement:
        statements = [self.parse_statement()]
        while self.accept(";"):
            if self.peek() is None or self.peek_text() in ("end", "else"):
                break
            statements.append(self.parse_statement())
        return sequence(*statements)

    def parse_block(self) -> Statement:
        statements = [self.parse_statement()]
        while self.accept(";"):
            if self.peek() is None or self.peek_text() in ("end", "else"):
                break
            statements.append(self.parse_statement())
        return sequence(*statements)

    # -- statements ------------------------------------------------------
    def parse_statement(self) -> Statement:
        text = self.peek_text()
        if text == "skip":
            self.advance()
            return Skip()
        if text == "for":
            return self.parse_for()
        if text == "if":
            return self.parse_if()
        if text == "while":
            return self.parse_while()
        if text == "[":
            return self.parse_conditional_gate()
        if text == "q":
            return self.parse_qubit_statement()
        return self.parse_assignment()

    def parse_for(self) -> Statement:
        self.expect("for")
        loop_var = self.advance().text
        self.expect("in")
        low = self.parse_index_expression()
        self.expect("..")
        high = self.parse_index_expression()
        self.expect("do")
        body_start = self.index
        statements = []
        for value in range(low, high + 1):
            self.index = body_start
            previous = self.loop_bindings.get(loop_var)
            self.loop_bindings[loop_var] = value
            statements.append(self.parse_block())
            if previous is None:
                del self.loop_bindings[loop_var]
            else:
                self.loop_bindings[loop_var] = previous
        self.expect("end")
        return sequence(*statements)

    def parse_if(self) -> Statement:
        self.expect("if")
        condition = self.parse_bool_expression()
        self.expect("then")
        then_branch = self.parse_block()
        else_branch: Statement = Skip()
        if self.accept("else"):
            else_branch = self.parse_block()
        self.expect("end")
        return If(condition, then_branch, else_branch)

    def parse_while(self) -> Statement:
        self.expect("while")
        condition = self.parse_bool_expression()
        self.expect("do")
        body = self.parse_block()
        self.expect("end")
        return While(condition, body)

    def parse_conditional_gate(self) -> Statement:
        self.expect("[")
        condition = self.parse_bool_expression()
        self.expect("]")
        statement = self.parse_qubit_statement()
        if isinstance(statement, Unitary):
            if statement.gate in ("X", "Y", "Z"):
                return ConditionalPauli(condition, statement.qubits[0], statement.gate)
            return ConditionalGate(condition, statement.gate, statement.qubits)
        raise ParseError("a conditional statement must guard a unitary application")

    def parse_qubit_statement(self) -> Statement:
        qubits = [self.parse_qubit_reference()]
        while self.accept(","):
            qubits.append(self.parse_qubit_reference())
        operator = self.advance().text
        if operator == ":=":
            self.expect("|0>")
            if len(qubits) != 1:
                raise ParseError("initialisation resets one qubit at a time")
            return InitQubit(qubits[0])
        if operator == "*=":
            gate = self.advance().text.upper()
            return Unitary(gate, tuple(qubits))
        raise ParseError(f"unexpected operator {operator!r} after qubit reference")

    def parse_assignment(self) -> Statement:
        targets = [self.parse_variable_name()]
        while self.accept(","):
            targets.append(self.parse_variable_name())
        self.expect(":=")
        if self.peek_text() == "meas":
            self.advance()
            self.expect("[")
            observable = self.parse_observable()
            self.expect("]")
            if len(targets) != 1:
                raise ParseError("a measurement assigns exactly one variable")
            return Measure(targets[0], observable)
        # Either a decoder call f(args) or a plain classical expression.
        checkpoint = self.index
        token = self.peek()
        if token is not None and token.kind == "name" and self._looks_like_call():
            function = self.advance().text
            self.expect("(")
            arguments = [self.parse_variable_name()]
            while self.accept(","):
                arguments.append(self.parse_variable_name())
            self.expect(")")
            return AssignDecoder(tuple(targets), function, tuple(arguments))
        self.index = checkpoint
        if len(targets) != 1:
            raise ParseError("multi-target assignment requires a decoder call")
        return Assign(targets[0], self.parse_bool_expression())

    def _looks_like_call(self) -> bool:
        return (
            self.index + 1 < len(self.tokens)
            and self.tokens[self.index + 1].text == "("
        )

    # -- references and expressions ---------------------------------------
    def parse_qubit_reference(self) -> int:
        self.expect("q")
        self.expect("[")
        index = self.parse_index_expression()
        self.expect("]")
        if not 1 <= index <= self.num_qubits:
            raise ParseError(f"qubit index {index} out of range 1..{self.num_qubits}")
        return index - 1

    def parse_variable_name(self) -> str:
        token = self.advance()
        if token.kind != "name":
            raise ParseError(f"expected a variable name, found {token.text!r}")
        name = token.text
        if self.accept("["):
            index = self.parse_index_expression()
            self.expect("]")
            name = f"{name}_{index}"
        return name

    def parse_index_expression(self) -> int:
        value = self.parse_index_atom()
        while self.peek_text() == "+":
            self.advance()
            value += self.parse_index_atom()
        return value

    def parse_index_atom(self) -> int:
        token = self.advance()
        if token.kind == "number":
            return int(token.text)
        if token.kind == "name":
            if token.text in self.loop_bindings:
                return self.loop_bindings[token.text]
            raise ParseError(f"unbound index variable {token.text!r}")
        raise ParseError(f"expected an index, found {token.text!r}")

    def parse_observable(self) -> PauliOperator:
        # Either a named observable g[i] registered by the caller, or an
        # inline product such as "X1 X3 X5 X7".
        if self.peek_text() in ("g",) and self.peek_text() not in ("X", "Y", "Z"):
            self.advance()
            self.expect("[")
            index = self.parse_index_expression()
            self.expect("]")
            key = f"g_{index}"
            if key not in self.observables:
                raise ParseError(f"unknown named observable {key!r}")
            return self.observables[key]
        operator = PauliOperator.identity(self.num_qubits)
        found = False
        while True:
            token = self.peek()
            if token is None or token.kind != "name":
                break
            match = re.fullmatch(r"([XYZ])(\d+)", token.text)
            if match is None:
                break
            self.advance()
            pauli, qubit = match.group(1), int(match.group(2))
            if not 1 <= qubit <= self.num_qubits:
                raise ParseError(f"qubit index {qubit} out of range in observable")
            operator = operator * PauliOperator.from_sparse(self.num_qubits, {qubit - 1: pauli})
            found = True
        if not found:
            raise ParseError("empty measurement observable")
        return operator

    def parse_bool_expression(self) -> BoolExpr:
        return self.parse_or()

    def parse_or(self) -> BoolExpr:
        left = self.parse_and()
        while self.peek_text() in ("||", "|"):
            self.advance()
            left = Or((left, self.parse_and()))
        return left

    def parse_and(self) -> BoolExpr:
        left = self.parse_xor()
        while self.peek_text() == "&&":
            self.advance()
            left = And((left, self.parse_xor()))
        return left

    def parse_xor(self) -> BoolExpr:
        left = self.parse_comparison()
        while self.peek_text() == "^":
            self.advance()
            left = Xor((left, self.parse_comparison()))
        return left

    def parse_comparison(self) -> BoolExpr:
        left = self.parse_atom()
        if self.peek_text() in ("<=", "=="):
            operator = self.advance().text
            right = self.parse_atom()
            left_int = self._to_int(left)
            right_int = self._to_int(right)
            return IntLe(left_int, right_int) if operator == "<=" else IntEq(left_int, right_int)
        if isinstance(left, (IntConst, IntVar)):
            raise ParseError("integer expression used where a boolean is required")
        return left

    @staticmethod
    def _to_int(expr):
        if isinstance(expr, BoolExpr):
            return sum_of([expr])
        return expr

    def parse_atom(self):
        if self.accept("!"):
            return Not(self.parse_atom())
        if self.accept("("):
            inner = self.parse_bool_expression()
            self.expect(")")
            return inner
        token = self.advance()
        if token.kind == "number":
            return IntConst(int(token.text))
        if token.kind == "name":
            if token.text == "true":
                return BoolConst(True)
            if token.text == "false":
                return BoolConst(False)
            name = token.text
            if self.accept("["):
                index = self.parse_index_expression()
                self.expect("]")
                name = f"{name}_{index}"
            return BoolVar(name)
        raise ParseError(f"unexpected token {token.text!r} in expression")


def parse_program(
    source: str, num_qubits: int, observables: dict[str, PauliOperator] | None = None
) -> Statement:
    """Parse a textual QEC program into the AST.

    ``observables`` lets the caller bind names like ``g_1`` to concrete Pauli
    operators so syndrome-measurement loops can be written as
    ``for i in 1..6 do s[i] := meas[g[i]] end``.
    """
    parser = _Parser(tokenize(source), num_qubits, observables)
    program = parser.parse_program()
    if parser.peek() is not None:
        raise ParseError(f"trailing input starting at {parser.peek().text!r}")
    return program
