"""Exact subspace (projector) arithmetic for small systems.

The Birkhoff-von Neumann connectives of the assertion logic are operations on
closed subspaces: meet is intersection, join is the span of the union,
negation is the orthocomplement and implication is the Sasaki arrow
(Appendix A.3).  These dense-matrix implementations are exponential in the
number of qubits, so they are used only as the ground truth the symbolic
machinery is tested against and as the semantic fallback for entailments the
syntactic reduction does not cover.
"""

from __future__ import annotations

import numpy as np

from repro.pauli.pauli import PauliOperator

__all__ = [
    "projector_from_stabilizers",
    "projector_onto_columns",
    "meet_projectors",
    "join_projectors",
    "complement_projector",
    "sasaki_implies",
    "sasaki_projection",
    "subspace_contains",
    "state_satisfies",
]

_TOLERANCE = 1e-9


def projector_from_stabilizers(operators: list[PauliOperator], num_qubits: int) -> np.ndarray:
    """Projector onto the joint +1 eigenspace of the given Pauli operators."""
    dim = 2 ** num_qubits
    projector = np.eye(dim, dtype=complex)
    for op in operators:
        projector = projector @ (np.eye(dim, dtype=complex) + op.to_matrix()) / 2
    # The product of commuting projectors is the projector onto the meet; for
    # non-commuting inputs fall back to an eigenspace computation.
    if np.allclose(projector @ projector, projector, atol=_TOLERANCE):
        return _round(projector)
    return meet_projectors([_round((np.eye(dim) + op.to_matrix()) / 2) for op in operators])


def projector_onto_columns(matrix: np.ndarray) -> np.ndarray:
    """Orthogonal projector onto the column space of ``matrix``.

    Uses an SVD so rank deficiency is detected reliably regardless of the
    column ordering (an unpivoted QR would miss columns whose pivots fall
    outside the leading square block).
    """
    if matrix.size == 0:
        return np.zeros((matrix.shape[0], matrix.shape[0]), dtype=complex)
    left, singular_values, _ = np.linalg.svd(matrix, full_matrices=False)
    basis = left[:, singular_values > _TOLERANCE * max(1.0, singular_values.max(initial=0.0))]
    return _round(basis @ basis.conj().T)


def meet_projectors(projectors: list[np.ndarray]) -> np.ndarray:
    """Projector onto the intersection of the given subspaces."""
    if not projectors:
        raise ValueError("meet of an empty family is undefined without a dimension")
    dim = projectors[0].shape[0]
    # Intersection = orthocomplement of the span of the orthocomplements.
    complements = [np.eye(dim, dtype=complex) - p for p in projectors]
    span = join_projectors(complements) if complements else np.zeros((dim, dim), dtype=complex)
    return _round(np.eye(dim, dtype=complex) - span)


def join_projectors(projectors: list[np.ndarray]) -> np.ndarray:
    """Projector onto the span of the union of the given subspaces."""
    if not projectors:
        raise ValueError("join of an empty family is undefined without a dimension")
    stacked = np.concatenate(projectors, axis=1)
    return projector_onto_columns(stacked)


def complement_projector(projector: np.ndarray) -> np.ndarray:
    return _round(np.eye(projector.shape[0], dtype=complex) - projector)


def sasaki_implies(antecedent: np.ndarray, consequent: np.ndarray) -> np.ndarray:
    """The Sasaki implication ``a ~> b = a^perp v (a ^ b)``."""
    meet = meet_projectors([antecedent, consequent])
    return join_projectors([complement_projector(antecedent), meet])


def sasaki_projection(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """The Sasaki projection ``a ⋒ b = a ^ (a^perp v b)``."""
    return meet_projectors([first, join_projectors([complement_projector(first), second])])


def subspace_contains(larger: np.ndarray, smaller: np.ndarray) -> bool:
    """Whether the subspace of ``smaller`` is included in that of ``larger``."""
    return np.allclose(larger @ smaller, smaller, atol=1e-7)


def state_satisfies(state: np.ndarray, projector: np.ndarray) -> bool:
    """Whether a pure state or density operator is supported inside the subspace."""
    if state.ndim == 1:
        return bool(np.allclose(projector @ state, state, atol=1e-7))
    return bool(np.allclose(projector @ state @ projector, state, atol=1e-7))


def _round(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    matrix[np.abs(matrix) < _TOLERANCE] = 0.0
    return matrix
