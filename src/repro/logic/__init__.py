"""The hybrid classical-quantum assertion logic (Section 3)."""

from repro.logic.assertion import (
    AndAssertion,
    Assertion,
    BoolAssertion,
    ImpliesAssertion,
    NotAssertion,
    OrAssertion,
    PauliAssertion,
    conjunction,
    disjunction,
    pauli_atom,
    stabilizer_assertion,
)
from repro.logic.subspace import (
    join_projectors,
    meet_projectors,
    projector_from_stabilizers,
    sasaki_implies,
    subspace_contains,
)

__all__ = [
    "Assertion",
    "BoolAssertion",
    "PauliAssertion",
    "NotAssertion",
    "AndAssertion",
    "OrAssertion",
    "ImpliesAssertion",
    "conjunction",
    "disjunction",
    "pauli_atom",
    "stabilizer_assertion",
    "projector_from_stabilizers",
    "meet_projectors",
    "join_projectors",
    "sasaki_implies",
    "subspace_contains",
]
