"""The assertion language AExp and its quantum-logic semantics (Definition 3.2).

An assertion is built from boolean expressions and Pauli expressions with the
connectives interpreted point-wise over classical memories into subspaces of
the global Hilbert space: conjunction is intersection, disjunction is the
span of the union, negation is the orthocomplement and implication the Sasaki
arrow.  ``to_projector`` realises that semantics exactly on small systems
(the ground truth used by the soundness tests and the semantic VC fallback),
while the verification-condition generator works with the syntactic structure
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classical.expr import BoolExpr, Expr, evaluate, simplify, substitute
from repro.classical.parity import ParityExpr
from repro.logic.subspace import (
    complement_projector,
    join_projectors,
    meet_projectors,
    sasaki_implies,
    state_satisfies,
)
from repro.pauli.expr import PauliExpr
from repro.pauli.pauli import PauliOperator

__all__ = [
    "Assertion",
    "BoolAssertion",
    "PauliAssertion",
    "NotAssertion",
    "AndAssertion",
    "OrAssertion",
    "ImpliesAssertion",
    "conjunction",
    "disjunction",
    "pauli_atom",
    "stabilizer_assertion",
]


class Assertion:
    """Base class of assertions."""

    __slots__ = ()

    # -- structural operations used by the wp calculus ---------------------
    def substitute_classical(self, mapping: dict[str, Expr]) -> "Assertion":
        raise NotImplementedError

    def apply_gate(self, gate: str, qubits: tuple[int, ...], direction: str = "backward") -> "Assertion":
        raise NotImplementedError

    def apply_conditional_pauli(self, qubit: int, pauli: str, condition: ParityExpr) -> "Assertion":
        raise NotImplementedError

    # -- semantics ----------------------------------------------------------
    def to_projector(self, memory, num_qubits: int) -> np.ndarray:
        raise NotImplementedError

    def satisfied_by(self, state: np.ndarray, memory, num_qubits: int) -> bool:
        """Whether a (pure or mixed) quantum state satisfies the assertion at ``memory``."""
        return state_satisfies(state, self.to_projector(memory, num_qubits))


@dataclass(frozen=True)
class BoolAssertion(Assertion):
    """A classical assertion embedded as the full or null subspace."""

    expr: BoolExpr

    def substitute_classical(self, mapping):
        return BoolAssertion(simplify(substitute(self.expr, mapping)))

    def apply_gate(self, gate, qubits, direction="backward"):
        return self

    def apply_conditional_pauli(self, qubit, pauli, condition):
        return self

    def to_projector(self, memory, num_qubits):
        dim = 2 ** num_qubits
        if evaluate(self.expr, memory):
            return np.eye(dim, dtype=complex)
        return np.zeros((dim, dim), dtype=complex)

    def __repr__(self) -> str:
        return f"{self.expr!r}"


@dataclass(frozen=True)
class PauliAssertion(Assertion):
    """A Pauli expression interpreted as its +1 eigenspace."""

    expr: PauliExpr

    def substitute_classical(self, mapping):
        return PauliAssertion(self.expr.substitute_classical(mapping))

    def apply_gate(self, gate, qubits, direction="backward"):
        return PauliAssertion(self.expr.apply_gate(gate, qubits, direction))

    def apply_conditional_pauli(self, qubit, pauli, condition):
        return PauliAssertion(self.expr.apply_conditional_pauli(qubit, pauli, condition))

    def negated(self) -> "PauliAssertion":
        """The orthocomplement, which for a Hermitian Pauli is the -1 eigenspace."""
        return PauliAssertion(-self.expr)

    def to_projector(self, memory, num_qubits):
        operator = self.expr.evaluate_operator(memory)
        dim = 2 ** num_qubits
        if operator.shape != (dim, dim):
            raise ValueError("Pauli expression acts on a different number of qubits")
        # +1 eigenspace of a Hermitian operator with eigenvalues +/-1: (I + O)/2.
        candidate = (np.eye(dim, dtype=complex) + operator) / 2
        if np.allclose(candidate @ candidate, candidate, atol=1e-9):
            return candidate
        # General case (e.g. sums of Paulis): project onto eigenvalue-1 eigenvectors.
        values, vectors = np.linalg.eigh(operator)
        basis = vectors[:, np.abs(values - 1.0) < 1e-9]
        return basis @ basis.conj().T

    def __repr__(self) -> str:
        return f"⟦{self.expr!r}⟧"


@dataclass(frozen=True)
class NotAssertion(Assertion):
    operand: Assertion

    def substitute_classical(self, mapping):
        return NotAssertion(self.operand.substitute_classical(mapping))

    def apply_gate(self, gate, qubits, direction="backward"):
        return NotAssertion(self.operand.apply_gate(gate, qubits, direction))

    def apply_conditional_pauli(self, qubit, pauli, condition):
        return NotAssertion(self.operand.apply_conditional_pauli(qubit, pauli, condition))

    def to_projector(self, memory, num_qubits):
        return complement_projector(self.operand.to_projector(memory, num_qubits))

    def __repr__(self) -> str:
        return f"¬({self.operand!r})"


@dataclass(frozen=True)
class AndAssertion(Assertion):
    parts: tuple[Assertion, ...]

    def substitute_classical(self, mapping):
        return AndAssertion(tuple(p.substitute_classical(mapping) for p in self.parts))

    def apply_gate(self, gate, qubits, direction="backward"):
        return AndAssertion(tuple(p.apply_gate(gate, qubits, direction) for p in self.parts))

    def apply_conditional_pauli(self, qubit, pauli, condition):
        return AndAssertion(
            tuple(p.apply_conditional_pauli(qubit, pauli, condition) for p in self.parts)
        )

    def to_projector(self, memory, num_qubits):
        return meet_projectors([p.to_projector(memory, num_qubits) for p in self.parts])

    def __repr__(self) -> str:
        return " ∧ ".join(f"({p!r})" for p in self.parts)


@dataclass(frozen=True)
class OrAssertion(Assertion):
    parts: tuple[Assertion, ...]

    def substitute_classical(self, mapping):
        return OrAssertion(tuple(p.substitute_classical(mapping) for p in self.parts))

    def apply_gate(self, gate, qubits, direction="backward"):
        return OrAssertion(tuple(p.apply_gate(gate, qubits, direction) for p in self.parts))

    def apply_conditional_pauli(self, qubit, pauli, condition):
        return OrAssertion(
            tuple(p.apply_conditional_pauli(qubit, pauli, condition) for p in self.parts)
        )

    def to_projector(self, memory, num_qubits):
        return join_projectors([p.to_projector(memory, num_qubits) for p in self.parts])

    def __repr__(self) -> str:
        return " ∨ ".join(f"({p!r})" for p in self.parts)


@dataclass(frozen=True)
class ImpliesAssertion(Assertion):
    """Sasaki implication of assertions."""

    antecedent: Assertion
    consequent: Assertion

    def substitute_classical(self, mapping):
        return ImpliesAssertion(
            self.antecedent.substitute_classical(mapping),
            self.consequent.substitute_classical(mapping),
        )

    def apply_gate(self, gate, qubits, direction="backward"):
        return ImpliesAssertion(
            self.antecedent.apply_gate(gate, qubits, direction),
            self.consequent.apply_gate(gate, qubits, direction),
        )

    def apply_conditional_pauli(self, qubit, pauli, condition):
        return ImpliesAssertion(
            self.antecedent.apply_conditional_pauli(qubit, pauli, condition),
            self.consequent.apply_conditional_pauli(qubit, pauli, condition),
        )

    def to_projector(self, memory, num_qubits):
        return sasaki_implies(
            self.antecedent.to_projector(memory, num_qubits),
            self.consequent.to_projector(memory, num_qubits),
        )

    def __repr__(self) -> str:
        return f"({self.antecedent!r}) ⇒ ({self.consequent!r})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def conjunction(parts) -> Assertion:
    parts = tuple(parts)
    if not parts:
        raise ValueError("conjunction of no assertions")
    if len(parts) == 1:
        return parts[0]
    return AndAssertion(parts)


def disjunction(parts) -> Assertion:
    parts = tuple(parts)
    if not parts:
        raise ValueError("disjunction of no assertions")
    if len(parts) == 1:
        return parts[0]
    return OrAssertion(parts)


def pauli_atom(operator: PauliOperator, phase: ParityExpr | None = None) -> PauliAssertion:
    """The atomic assertion ``(-1)^phase operator``."""
    return PauliAssertion(PauliExpr.atom(operator, phase or ParityExpr.zero()))


def stabilizer_assertion(
    operators: list[PauliOperator], phases: list[ParityExpr] | None = None
) -> Assertion:
    """Conjunction of Pauli atoms — the standard codespace assertion."""
    phases = phases or [ParityExpr.zero()] * len(operators)
    return conjunction(pauli_atom(op, phase) for op, phase in zip(operators, phases))
