"""Stabilizer codes used throughout the paper's evaluation (Table 3)."""

from repro.codes.base import StabilizerCode
from repro.codes.color import (
    color_code_832,
    error_detection_422,
    iceberg_code,
)
from repro.codes.css import CSSCode, hypergraph_product_code
from repro.codes.five_qubit import five_qubit_code, six_qubit_code
from repro.codes.gottesman import gottesman_eight_qubit_code
from repro.codes.reed_muller import quantum_reed_muller_code
from repro.codes.registry import CODE_REGISTRY, build_code, list_codes
from repro.codes.repetition import repetition_code
from repro.codes.shor import shor_code
from repro.codes.steane import steane_code
from repro.codes.surface import rotated_surface_code, xzzx_surface_code

__all__ = [
    "StabilizerCode",
    "CSSCode",
    "hypergraph_product_code",
    "repetition_code",
    "steane_code",
    "five_qubit_code",
    "six_qubit_code",
    "shor_code",
    "rotated_surface_code",
    "xzzx_surface_code",
    "quantum_reed_muller_code",
    "gottesman_eight_qubit_code",
    "color_code_832",
    "error_detection_422",
    "iceberg_code",
    "CODE_REGISTRY",
    "build_code",
    "list_codes",
]
