"""The common interface of every stabilizer code in the benchmark suite."""

from __future__ import annotations

import numpy as np

from repro.pauli.group import StabilizerGroup
from repro.pauli.pauli import PauliOperator

__all__ = ["StabilizerCode"]


class StabilizerCode:
    """An ``[[n, k, d]]`` stabilizer code.

    The code is described by its stabilizer generators and (optionally) a
    preferred choice of logical X/Z operators.  When logical operators are
    not supplied they are constructed from the generators by symplectic
    Gram-Schmidt, exactly as the tool does for codes that only come with a
    parity-check matrix (Section 7.4).
    """

    def __init__(
        self,
        name: str,
        stabilizers: list[PauliOperator],
        logical_xs: list[PauliOperator] | None = None,
        logical_zs: list[PauliOperator] | None = None,
        distance: int | None = None,
        metadata: dict | None = None,
    ):
        self.name = name
        self.group = StabilizerGroup(stabilizers)
        self.stabilizers = self.group.generators
        self.num_qubits = self.group.num_qubits
        self.num_logical = self.group.num_logical_qubits
        self.distance = distance
        self.metadata = dict(metadata or {})
        if logical_xs is None or logical_zs is None:
            logical_xs, logical_zs = self.group.logical_operators()
        self.logical_xs = list(logical_xs)
        self.logical_zs = list(logical_zs)
        self._validate_logicals()

    # ------------------------------------------------------------------
    def _validate_logicals(self) -> None:
        if len(self.logical_xs) != self.num_logical or len(self.logical_zs) != self.num_logical:
            raise ValueError(
                f"{self.name}: expected {self.num_logical} logical X/Z operators"
            )
        for index, (lx, lz) in enumerate(zip(self.logical_xs, self.logical_zs)):
            if not self.group.commutes_with(lx) or not self.group.commutes_with(lz):
                raise ValueError(f"{self.name}: logical operator {index} does not commute with the group")
            if lx.commutes_with(lz):
                raise ValueError(f"{self.name}: logical X/Z pair {index} must anti-commute")
        for i, li in enumerate(self.logical_xs):
            for j, zj in enumerate(self.logical_zs):
                if i != j and not li.commutes_with(zj):
                    raise ValueError(f"{self.name}: logical X_{i} must commute with logical Z_{j}")

    # ------------------------------------------------------------------
    @property
    def parameters(self) -> tuple[int, int, int | None]:
        """The triple ``(n, k, d)``."""
        return (self.num_qubits, self.num_logical, self.distance)

    @property
    def num_stabilizers(self) -> int:
        return len(self.stabilizers)

    def syndrome(self, error: PauliOperator) -> tuple[int, ...]:
        return self.group.syndrome(error)

    def is_logical_error(self, error: PauliOperator) -> bool:
        """Zero-syndrome error that acts non-trivially on the codespace."""
        return self.group.is_logical_operator(error)

    # ------------------------------------------------------------------
    # CSS structure
    # ------------------------------------------------------------------
    def is_css(self) -> bool:
        """Whether every generator is purely X-type or purely Z-type."""
        return all(
            not any(gen.x) or not any(gen.z) for gen in self.stabilizers
        )

    def x_checks(self) -> np.ndarray:
        """Support matrix of the X-type generators (rows over GF(2))."""
        rows = [gen.x for gen in self.stabilizers if any(gen.x) and not any(gen.z)]
        if not rows:
            return np.zeros((0, self.num_qubits), dtype=np.uint8)
        return np.array(rows, dtype=np.uint8)

    def z_checks(self) -> np.ndarray:
        """Support matrix of the Z-type generators (rows over GF(2))."""
        rows = [gen.z for gen in self.stabilizers if any(gen.z) and not any(gen.x)]
        if not rows:
            return np.zeros((0, self.num_qubits), dtype=np.uint8)
        return np.array(rows, dtype=np.uint8)

    # ------------------------------------------------------------------
    def exact_distance(self, max_weight: int | None = None) -> int | None:
        """Brute-force distance computation (small codes / tests only)."""
        return self.group.minimum_distance(max_weight)

    def logical_state_stabilizers(self, bits: tuple[int, ...]) -> list[PauliOperator]:
        """Generators stabilizing the logical computational state ``|bits>_L``."""
        if len(bits) != self.num_logical:
            raise ValueError("one bit per logical qubit is required")
        extra = [
            lz if bit == 0 else -lz for lz, bit in zip(self.logical_zs, bits)
        ]
        return list(self.stabilizers) + extra

    def describe(self) -> str:
        n, k, d = self.parameters
        d_text = "?" if d is None else str(d)
        return f"{self.name} [[{n},{k},{d_text}]]"

    def __repr__(self) -> str:
        return f"StabilizerCode({self.describe()})"
