"""Rotated surface codes and the XZZX variant (Section 7.1, Fig. 5).

The rotated surface code of distance ``d`` places one data qubit on every
vertex of a ``d x d`` grid (indexed left-to-right, top-to-bottom as in the
paper's Fig. 5).  Weight-4 stabilizers sit on the interior faces in a
checkerboard colouring and weight-2 stabilizers on alternating boundary
faces: Z-type checks touch the top/bottom boundary, X-type checks the
left/right boundary.  As in the paper's Fig. 5 the logical X operator runs
horizontally along the top row and the logical Z vertically along the left
column.

The XZZX variant is obtained by conjugating every other qubit with a
Hadamard, which turns each plaquette into an X-Z-Z-X check while keeping the
code parameters.
"""

from __future__ import annotations

from repro.codes.base import StabilizerCode
from repro.pauli.pauli import PauliOperator

__all__ = ["rotated_surface_code", "xzzx_surface_code", "surface_code_plaquettes"]


def surface_code_plaquettes(rows: int, cols: int) -> tuple[list[list[int]], list[list[int]]]:
    """Return (x_plaquettes, z_plaquettes) as lists of data-qubit indices."""

    def qubit(r: int, c: int) -> int:
        return r * cols + c

    x_plaquettes: list[list[int]] = []
    z_plaquettes: list[list[int]] = []
    for face_row in range(rows + 1):
        for face_col in range(cols + 1):
            corners = [
                (face_row - 1, face_col - 1),
                (face_row - 1, face_col),
                (face_row, face_col - 1),
                (face_row, face_col),
            ]
            support = [
                qubit(r, c) for r, c in corners if 0 <= r < rows and 0 <= c < cols
            ]
            is_z_face = (face_row + face_col) % 2 == 1
            if len(support) == 4:
                (z_plaquettes if is_z_face else x_plaquettes).append(support)
            elif len(support) == 2:
                on_top_bottom = face_row == 0 or face_row == rows
                on_left_right = face_col == 0 or face_col == cols
                if on_top_bottom and is_z_face:
                    z_plaquettes.append(support)
                elif on_left_right and not is_z_face:
                    x_plaquettes.append(support)
    return x_plaquettes, z_plaquettes


def rotated_surface_code(distance: int, cols: int | None = None) -> StabilizerCode:
    """The rotated surface code on a ``distance x distance`` grid.

    A rectangular ``distance x cols`` grid is also supported (used by the
    XZZX benchmark with different X and Z distances); the code distance is
    then ``min(distance, cols)``.
    """
    rows = distance
    cols = cols if cols is not None else distance
    if rows < 2 or cols < 2:
        raise ValueError("surface codes need at least a 2x2 grid")
    num_qubits = rows * cols
    x_plaquettes, z_plaquettes = surface_code_plaquettes(rows, cols)
    stabilizers = [
        PauliOperator.from_sparse(num_qubits, {q: "X" for q in support})
        for support in x_plaquettes
    ] + [
        PauliOperator.from_sparse(num_qubits, {q: "Z" for q in support})
        for support in z_plaquettes
    ]
    # Logical X: the top row (horizontal); logical Z: the left column (vertical).
    logical_x = PauliOperator.from_sparse(num_qubits, {c: "X" for c in range(cols)})
    logical_z = PauliOperator.from_sparse(
        num_qubits, {r * cols: "Z" for r in range(rows)}
    )
    return StabilizerCode(
        f"surface-{rows}x{cols}",
        stabilizers,
        logical_xs=[logical_x],
        logical_zs=[logical_z],
        distance=min(rows, cols),
        metadata={"family": "CSS", "rows": rows, "cols": cols},
    )


def xzzx_surface_code(distance: int, cols: int | None = None) -> StabilizerCode:
    """The XZZX surface code: the rotated code conjugated by H on odd qubits."""
    base = rotated_surface_code(distance, cols)
    rows = base.metadata["rows"]
    cols = base.metadata["cols"]

    def hadamard_twist(op: PauliOperator) -> PauliOperator:
        x_bits = list(op.x)
        z_bits = list(op.z)
        for r in range(rows):
            for c in range(cols):
                index = r * cols + c
                if (r + c) % 2 == 1:
                    x_bits[index], z_bits[index] = z_bits[index], x_bits[index]
        return PauliOperator(tuple(x_bits), tuple(z_bits), op.phase)

    stabilizers = [hadamard_twist(gen) for gen in base.stabilizers]
    logical_xs = [hadamard_twist(op) for op in base.logical_xs]
    logical_zs = [hadamard_twist(op) for op in base.logical_zs]
    return StabilizerCode(
        f"xzzx-{rows}x{cols}",
        stabilizers,
        logical_xs=logical_xs,
        logical_zs=logical_zs,
        distance=base.distance,
        metadata={"family": "XZZX", "rows": rows, "cols": cols},
    )
