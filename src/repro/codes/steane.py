"""The [[7,1,3]] Steane code (the paper's running example, Section 2.2)."""

from __future__ import annotations

import numpy as np

from repro.codes.css import CSSCode
from repro.pauli.pauli import PauliOperator

__all__ = ["steane_code", "STEANE_CHECK_MATRIX"]

# Columns are qubits 1..7; row i is the binary check of the [7,4,3] Hamming code.
# These supports reproduce g1 = X1 X3 X5 X7, g2 = X2 X3 X6 X7, g3 = X4 X5 X6 X7
# (and the same supports for the Z-type generators g4, g5, g6).
STEANE_CHECK_MATRIX = np.array(
    [
        [1, 0, 1, 0, 1, 0, 1],
        [0, 1, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.uint8,
)


def steane_code() -> CSSCode:
    """The self-dual CSS [[7,1,3]] code with the paper's generators and logicals."""
    logical_x = PauliOperator.from_label("X" * 7)
    logical_z = PauliOperator.from_label("Z" * 7)
    return CSSCode(
        "steane",
        x_check_matrix=STEANE_CHECK_MATRIX,
        z_check_matrix=STEANE_CHECK_MATRIX,
        distance=3,
        logical_xs=[logical_x],
        logical_zs=[logical_z],
        metadata={"family": "CSS", "self_dual": True},
    )
