"""Small error-detection codes: [[8,3,2]], [[4,2,2]] and the iceberg family.

The last block of Table 3 contains codes with distance 2 designed to
implement non-Clifford gates cheaply and to *detect* (rather than correct)
any single-qubit error.  The [[8,3,2]] 3D colour code lives on the vertices
of a cube: one weight-8 X stabilizer and four independent face Z stabilizers.
The [[4,2,2]] code and the [[2m, 2m-2, 2]] iceberg codes are the standard
two-generator detection codes; they stand in for the triorthogonal /
Campbell-Howard entries whose explicit check matrices are not reproducible
offline (see DESIGN.md).
"""

from __future__ import annotations

from repro.codes.base import StabilizerCode
from repro.pauli.pauli import PauliOperator

__all__ = ["color_code_832", "error_detection_422", "iceberg_code"]


def color_code_832() -> StabilizerCode:
    """The [[8,3,2]] 3D colour code on the unit cube."""
    num_qubits = 8  # vertex i has coordinates (bit0, bit1, bit2) of i

    def face(predicate) -> dict[int, str]:
        return {i: "Z" for i in range(num_qubits) if predicate(i)}

    stabilizers = [
        PauliOperator.from_label("X" * num_qubits),
        PauliOperator.from_sparse(num_qubits, face(lambda i: (i >> 0) & 1 == 0)),
        PauliOperator.from_sparse(num_qubits, face(lambda i: (i >> 1) & 1 == 0)),
        PauliOperator.from_sparse(num_qubits, face(lambda i: (i >> 2) & 1 == 0)),
        PauliOperator.from_label("Z" * num_qubits),
    ]
    return StabilizerCode(
        "color-832",
        stabilizers,
        distance=2,
        metadata={"family": "CSS", "detection_only": True, "z_distance": 2, "x_distance": 4},
    )


def error_detection_422() -> StabilizerCode:
    """The [[4,2,2]] error-detecting code."""
    stabilizers = [
        PauliOperator.from_label("XXXX"),
        PauliOperator.from_label("ZZZZ"),
    ]
    logical_xs = [PauliOperator.from_label("XXII"), PauliOperator.from_label("XIXI")]
    logical_zs = [PauliOperator.from_label("ZIZI"), PauliOperator.from_label("ZZII")]
    return StabilizerCode(
        "detection-422",
        stabilizers,
        logical_xs=logical_xs,
        logical_zs=logical_zs,
        distance=2,
        metadata={"family": "CSS", "detection_only": True},
    )


def iceberg_code(num_logical: int) -> StabilizerCode:
    """The ``[[2k + 2, 2k, 2]]`` iceberg code (two weight-(2k+2) stabilizers)."""
    if num_logical < 1 or num_logical % 2 != 0:
        raise ValueError("the iceberg code encodes an even number of logical qubits")
    num_qubits = num_logical + 2
    stabilizers = [
        PauliOperator.from_label("X" * num_qubits),
        PauliOperator.from_label("Z" * num_qubits),
    ]
    return StabilizerCode(
        f"iceberg-{num_qubits}",
        stabilizers,
        distance=2,
        metadata={"family": "CSS", "detection_only": True},
    )
