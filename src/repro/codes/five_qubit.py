"""The perfect [[5,1,3]] code and a [[6,1,3]] extension.

The five-qubit code is the smallest code correcting an arbitrary single-qubit
error.  The six-qubit entry of Table 3 is reproduced here as the one-qubit
extension of the perfect code (a valid, degenerate [[6,1,3]] stabilizer
code); the original Calderbank-Rains-Shor-Sloane generators are not available
offline, and the extension exercises exactly the same verification path.
"""

from __future__ import annotations

from repro.codes.base import StabilizerCode
from repro.pauli.pauli import PauliOperator

__all__ = ["five_qubit_code", "six_qubit_code"]

_FIVE_QUBIT_GENERATORS = ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"]


def five_qubit_code() -> StabilizerCode:
    """The cyclic [[5,1,3]] perfect code."""
    stabilizers = [PauliOperator.from_label(label) for label in _FIVE_QUBIT_GENERATORS]
    logical_x = PauliOperator.from_label("XXXXX")
    logical_z = PauliOperator.from_label("ZZZZZ")
    return StabilizerCode(
        "five-qubit",
        stabilizers,
        logical_xs=[logical_x],
        logical_zs=[logical_z],
        distance=3,
        metadata={"family": "non-CSS", "perfect": True},
    )


def six_qubit_code() -> StabilizerCode:
    """A [[6,1,3]] code: the five-qubit code with one ancilla qubit adjoined."""
    stabilizers = [
        PauliOperator.from_label(label + "I") for label in _FIVE_QUBIT_GENERATORS
    ]
    stabilizers.append(PauliOperator.from_label("IIIIIZ"))
    logical_x = PauliOperator.from_label("XXXXXI")
    logical_z = PauliOperator.from_label("ZZZZZI")
    return StabilizerCode(
        "six-qubit",
        stabilizers,
        logical_xs=[logical_x],
        logical_zs=[logical_z],
        distance=3,
        metadata={"family": "non-CSS", "note": "one-qubit extension of the [[5,1,3]] code"},
    )
