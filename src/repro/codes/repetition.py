"""The n-qubit repetition code.

The bit-flip repetition code protects against X errors only; it is the
scalable example used by the paper's Coq development and by the worked
weakest-precondition derivation of Example 4.2.
"""

from __future__ import annotations

import numpy as np

from repro.codes.css import CSSCode
from repro.pauli.pauli import PauliOperator

__all__ = ["repetition_code"]


def repetition_code(num_qubits: int, kind: str = "bit-flip") -> CSSCode:
    """Build the ``[[n, 1]]`` repetition code.

    ``kind="bit-flip"`` uses Z Z parity checks (corrects X errors, distance
    ``n`` against bit flips); ``kind="phase-flip"`` is its Hadamard dual.
    """
    if num_qubits < 2:
        raise ValueError("a repetition code needs at least two qubits")
    checks = np.zeros((num_qubits - 1, num_qubits), dtype=np.uint8)
    for row in range(num_qubits - 1):
        checks[row, row] = 1
        checks[row, row + 1] = 1
    empty = np.zeros((0, num_qubits), dtype=np.uint8)

    if kind == "bit-flip":
        logical_x = PauliOperator.from_label("X" * num_qubits)
        logical_z = PauliOperator.from_sparse(num_qubits, {0: "Z"})
        code = CSSCode(
            f"repetition-{num_qubits}",
            x_check_matrix=empty,
            z_check_matrix=checks,
            distance=1,
            logical_xs=[logical_x],
            logical_zs=[logical_z],
            metadata={"corrects": "X", "x_distance": num_qubits},
        )
        return code
    if kind == "phase-flip":
        logical_z = PauliOperator.from_label("Z" * num_qubits)
        logical_x = PauliOperator.from_sparse(num_qubits, {0: "X"})
        return CSSCode(
            f"phase-repetition-{num_qubits}",
            x_check_matrix=checks,
            z_check_matrix=empty,
            distance=1,
            logical_xs=[logical_x],
            logical_zs=[logical_z],
            metadata={"corrects": "Z", "z_distance": num_qubits},
        )
    raise ValueError(f"unknown repetition code kind {kind!r}")
