"""A catalogue of the benchmark codes (the rows of Table 3).

Every entry names a builder so the verification suite, the examples and the
benchmarks can iterate over the same set of codes.  Where the paper's exact
code could not be reconstructed offline, the registry records the
substitution (see DESIGN.md for the full table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.codes.base import StabilizerCode
from repro.codes.color import color_code_832, error_detection_422, iceberg_code
from repro.codes.css import hamming_parity_check, hypergraph_product_code
from repro.codes.five_qubit import five_qubit_code, six_qubit_code
from repro.codes.gottesman import gottesman_eight_qubit_code
from repro.codes.reed_muller import quantum_reed_muller_code
from repro.codes.repetition import repetition_code
from repro.codes.shor import shor_code
from repro.codes.steane import steane_code
from repro.codes.surface import rotated_surface_code, xzzx_surface_code

__all__ = [
    "CodeEntry",
    "CODE_REGISTRY",
    "build_code",
    "family_of",
    "family_siblings",
    "list_codes",
]


@dataclass(frozen=True)
class CodeEntry:
    """One row of the benchmark table.

    ``family`` groups codes sharing sub-structure (e.g. the rotated surface
    codes at increasing distance): the dispatcher co-locates a family on one
    worker lane and the resource layer warm-starts a member from the learnt
    clauses of its smaller siblings.  ``family_rank`` orders members within
    the family (smaller rank = smaller code); 0 means "not in a family".
    """

    key: str
    builder: Callable[[], StabilizerCode]
    target: str  # "correction" or "detection"
    paper_name: str
    note: str = ""
    family: str = ""
    family_rank: int = 0


def _tanner_substitute() -> StabilizerCode:
    code = hypergraph_product_code(
        hamming_parity_check(3),
        hamming_parity_check(3),
        name="hypergraph-product-hamming",
        distance=3,
    )
    return code


def _surface_from_repetition() -> StabilizerCode:
    rep = [[1, 1, 0], [0, 1, 1]]
    return hypergraph_product_code(rep, rep, name="hypergraph-product-repetition", distance=3)


CODE_REGISTRY: dict[str, CodeEntry] = {
    "steane": CodeEntry("steane", steane_code, "correction", "Steane code [[7,1,3]]"),
    "five-qubit": CodeEntry(
        "five-qubit",
        five_qubit_code,
        "correction",
        "Five-qubit perfect code [[5,1,3]]",
        family="perfect",
        family_rank=5,
    ),
    "six-qubit": CodeEntry(
        "six-qubit",
        six_qubit_code,
        "correction",
        "Six-qubit code [[6,1,3]]",
        note="one-qubit extension of the [[5,1,3]] code",
        family="perfect",
        family_rank=6,
    ),
    "shor": CodeEntry(
        "shor",
        shor_code,
        "correction",
        "Shor code [[9,1,3]]",
        note="substitutes the quantum dodecacode entry",
    ),
    "surface-3": CodeEntry(
        "surface-3",
        lambda: rotated_surface_code(3),
        "correction",
        "Rotated surface code d=3",
        family="surface",
        family_rank=3,
    ),
    "surface-5": CodeEntry(
        "surface-5",
        lambda: rotated_surface_code(5),
        "correction",
        "Rotated surface code d=5",
        family="surface",
        family_rank=5,
    ),
    "xzzx-3": CodeEntry(
        "xzzx-3", lambda: xzzx_surface_code(3), "correction", "XZZX surface code"
    ),
    "reed-muller-4": CodeEntry(
        "reed-muller-4",
        lambda: quantum_reed_muller_code(4),
        "correction",
        "Quantum Reed-Muller code [[15,1,3]]",
    ),
    "gottesman-8": CodeEntry(
        "gottesman-8",
        gottesman_eight_qubit_code,
        "correction",
        "Gottesman code [[8,3,3]]",
    ),
    "repetition-5": CodeEntry(
        "repetition-5",
        lambda: repetition_code(5),
        "correction",
        "Repetition code (Coq scalable example)",
    ),
    "hgp-hamming": CodeEntry(
        "hgp-hamming",
        _tanner_substitute,
        "detection",
        "Hypergraph product code",
        note="also substitutes the quantum Tanner code entries",
        family="hgp",
        family_rank=2,
    ),
    "hgp-repetition": CodeEntry(
        "hgp-repetition",
        _surface_from_repetition,
        "detection",
        "Hypergraph product of repetition codes",
        family="hgp",
        family_rank=1,
    ),
    "color-832": CodeEntry(
        "color-832", color_code_832, "detection", "3D basic color code [[8,3,2]]"
    ),
    "detection-422": CodeEntry(
        "detection-422",
        error_detection_422,
        "detection",
        "[[4,2,2]] error-detecting code",
        note="substitutes the carbon code entry",
    ),
    "iceberg-6": CodeEntry(
        "iceberg-6",
        lambda: iceberg_code(4),
        "detection",
        "Iceberg code [[6,4,2]]",
        note="substitutes the Campbell-Howard / triorthogonal entries",
    ),
}


def build_code(key: str) -> StabilizerCode:
    """Instantiate a registered code by key."""
    if key not in CODE_REGISTRY:
        raise KeyError(f"unknown code {key!r}; known codes: {sorted(CODE_REGISTRY)}")
    return CODE_REGISTRY[key].builder()


def list_codes() -> list[str]:
    return sorted(CODE_REGISTRY)


def family_of(key: str) -> str | None:
    """The family a registry key belongs to, or None (unknown key, no family)."""
    entry = CODE_REGISTRY.get(key) if isinstance(key, str) else None
    if entry is None or not entry.family:
        return None
    return entry.family


def family_siblings(key: str) -> list[str]:
    """Smaller same-family registry keys, ordered smallest first.

    These are the codes whose learnt clauses are worth offering to ``key``
    as warm-start candidates (a larger code never seeds a smaller one).
    """
    entry = CODE_REGISTRY.get(key) if isinstance(key, str) else None
    if entry is None or not entry.family:
        return []
    members = [
        other
        for other in CODE_REGISTRY.values()
        if other.family == entry.family and other.family_rank < entry.family_rank
    ]
    return [member.key for member in sorted(members, key=lambda m: m.family_rank)]
