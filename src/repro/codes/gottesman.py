"""Gottesman's ``[[2^r, 2^r - r - 2, 3]]`` codes (the r = 3 member).

The [[8,3,3]] code is the smallest member of the family; its five generators
are the standard ones from Gottesman's construction.  The paper benchmarks
the r = 8 member ([[256, 246, 3]]); at laptop scale we reproduce the family
through its r = 3 representative, which exercises the same multi-logical
verification path.
"""

from __future__ import annotations

from repro.codes.base import StabilizerCode
from repro.pauli.pauli import PauliOperator

__all__ = ["gottesman_eight_qubit_code"]

_GENERATORS = [
    "XXXXXXXX",
    "ZZZZZZZZ",
    "IXIXYZYZ",
    "IXZYIXZY",
    "IYXZXZIY",
]


def gottesman_eight_qubit_code() -> StabilizerCode:
    """The [[8,3,3]] code."""
    stabilizers = [PauliOperator.from_label(label) for label in _GENERATORS]
    return StabilizerCode(
        "gottesman-8",
        stabilizers,
        distance=3,
        metadata={"family": "non-CSS", "r": 3},
    )
