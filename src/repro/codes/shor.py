"""The [[9,1,3]] Shor code."""

from __future__ import annotations

import numpy as np

from repro.codes.css import CSSCode
from repro.pauli.pauli import PauliOperator

__all__ = ["shor_code"]


def shor_code() -> CSSCode:
    """Concatenation of the 3-qubit bit-flip and phase-flip repetition codes."""
    z_checks = np.zeros((6, 9), dtype=np.uint8)
    row = 0
    for block in range(3):
        for offset in range(2):
            z_checks[row, 3 * block + offset] = 1
            z_checks[row, 3 * block + offset + 1] = 1
            row += 1
    x_checks = np.zeros((2, 9), dtype=np.uint8)
    x_checks[0, 0:6] = 1
    x_checks[1, 3:9] = 1
    logical_z = PauliOperator.from_label("XXXXXXXXX")  # placeholder, replaced below
    # Logical operators: Z_L = Z1 Z4 Z7 (one Z per block), X_L = X1 X2 X3.
    logical_z = PauliOperator.from_sparse(9, {0: "Z", 3: "Z", 6: "Z"})
    logical_x = PauliOperator.from_sparse(9, {0: "X", 1: "X", 2: "X"})
    return CSSCode(
        "shor",
        x_check_matrix=x_checks,
        z_check_matrix=z_checks,
        distance=3,
        logical_xs=[logical_x],
        logical_zs=[logical_z],
        metadata={"family": "CSS", "concatenated": True},
    )
