"""CSS codes and the hypergraph-product construction.

A CSS code is specified by two binary parity-check matrices ``Hx`` and ``Hz``
with ``Hx @ Hz.T = 0``: each row of ``Hx`` becomes an X-type stabilizer and
each row of ``Hz`` a Z-type stabilizer.  The hypergraph product of two
classical codes (Tillich-Zemor) yields the quantum LDPC entries of Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import StabilizerCode
from repro.pauli.pauli import PauliOperator
from repro.utils.bitmatrix import as_gf2, gf2_matmul, gf2_rank

__all__ = ["CSSCode", "hypergraph_product_code", "hamming_parity_check"]


class CSSCode(StabilizerCode):
    """A stabilizer code built from two classical parity-check matrices."""

    def __init__(
        self,
        name: str,
        x_check_matrix,
        z_check_matrix,
        distance: int | None = None,
        logical_xs: list[PauliOperator] | None = None,
        logical_zs: list[PauliOperator] | None = None,
        metadata: dict | None = None,
    ):
        hx = as_gf2(x_check_matrix)
        hz = as_gf2(z_check_matrix)
        if hx.shape[1] != hz.shape[1]:
            raise ValueError("Hx and Hz must have the same number of columns")
        if gf2_matmul(hx, hz.T).any():
            raise ValueError("CSS condition violated: Hx @ Hz^T != 0")
        num_qubits = hx.shape[1]
        stabilizers = []
        for row in hx:
            stabilizers.append(
                PauliOperator(tuple(int(b) for b in row), (0,) * num_qubits)
            )
        for row in hz:
            stabilizers.append(
                PauliOperator((0,) * num_qubits, tuple(int(b) for b in row))
            )
        # Drop dependent rows so the generating set is minimal.
        stabilizers = _independent_subset(stabilizers)
        super().__init__(
            name,
            stabilizers,
            logical_xs=logical_xs,
            logical_zs=logical_zs,
            distance=distance,
            metadata=metadata,
        )


def _independent_subset(operators: list[PauliOperator]) -> list[PauliOperator]:
    """Greedily keep a maximal independent subset of the symplectic rows."""
    kept: list[PauliOperator] = []
    rows: list[np.ndarray] = []
    for op in operators:
        candidate = rows + [op.symplectic_vector()]
        if gf2_rank(np.array(candidate, dtype=np.uint8)) == len(candidate):
            kept.append(op)
            rows.append(op.symplectic_vector())
    return kept


def hamming_parity_check(r: int) -> np.ndarray:
    """Parity-check matrix of the ``[2^r - 1, 2^r - 1 - r, 3]`` Hamming code."""
    if r < 2:
        raise ValueError("Hamming codes need r >= 2")
    columns = []
    for value in range(1, 2 ** r):
        columns.append([(value >> bit) & 1 for bit in range(r)])
    return np.array(columns, dtype=np.uint8).T


def hypergraph_product_code(
    h1, h2, name: str | None = None, distance: int | None = None
) -> CSSCode:
    """The hypergraph product of two classical parity-check matrices.

    For classical codes with parameters ``[n_i, k_i, d_i]`` and check matrices
    of shape ``m_i x n_i``, the quantum code has
    ``n = n1*n2 + m1*m2`` physical qubits and
    ``k = k1*k2 + k1^T*k2^T`` logical qubits, with distance
    ``min(d1, d2)`` when both transpose codes are trivial.
    """
    h1 = as_gf2(h1)
    h2 = as_gf2(h2)
    m1, n1 = h1.shape
    m2, n2 = h2.shape

    identity_n1 = np.eye(n1, dtype=np.uint8)
    identity_n2 = np.eye(n2, dtype=np.uint8)
    identity_m1 = np.eye(m1, dtype=np.uint8)
    identity_m2 = np.eye(m2, dtype=np.uint8)

    # Qubits: block A of size n1*n2, block B of size m1*m2.
    hx = np.concatenate([np.kron(h1, identity_n2), np.kron(identity_m1, h2.T)], axis=1)
    hz = np.concatenate([np.kron(identity_n1, h2), np.kron(h1.T, identity_m2)], axis=1)
    label = name or f"hypergraph-product({n1}x{n2})"
    return CSSCode(label, hx, hz, distance=distance, metadata={"construction": "hypergraph product"})
