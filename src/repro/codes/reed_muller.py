"""Steane's quantum Reed-Muller codes ``[[2^r - 1, 1, 3]]``.

The punctured Reed-Muller construction: evaluation points are the non-zero
vectors of GF(2)^r.  X-type stabilizers are the evaluations of the degree-1
monomials ``x_i``; Z-type stabilizers are the evaluations of all monomials of
degree 1 up to ``r - 2``.  For ``r = 3`` this is exactly the Steane code, for
``r = 4`` the [[15,1,3]] code used for magic-state distillation.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.codes.css import CSSCode
from repro.pauli.pauli import PauliOperator

__all__ = ["quantum_reed_muller_code"]


def _monomial_evaluation(r: int, variables: tuple[int, ...]) -> list[int]:
    """Evaluate the monomial ``prod_{i in variables} x_i`` on all non-zero points."""
    values = []
    for point in range(1, 2 ** r):
        bits = [(point >> bit) & 1 for bit in range(r)]
        values.append(int(all(bits[v] for v in variables)))
    return values


def quantum_reed_muller_code(r: int) -> CSSCode:
    """The ``[[2^r - 1, 1, 3]]`` quantum Reed-Muller code (r >= 3)."""
    if r < 3:
        raise ValueError("quantum Reed-Muller codes need r >= 3")
    num_qubits = 2 ** r - 1
    x_rows = [_monomial_evaluation(r, (i,)) for i in range(r)]
    z_rows = []
    for degree in range(1, r - 1):
        for variables in combinations(range(r), degree):
            z_rows.append(_monomial_evaluation(r, variables))
    logical_x = PauliOperator.from_label("X" * num_qubits)
    logical_z = PauliOperator.from_label("Z" * num_qubits)
    return CSSCode(
        f"reed-muller-{r}",
        x_check_matrix=np.array(x_rows, dtype=np.uint8),
        z_check_matrix=np.array(z_rows, dtype=np.uint8),
        distance=3,
        logical_xs=[logical_x],
        logical_zs=[logical_z],
        metadata={"family": "CSS", "r": r},
    )
