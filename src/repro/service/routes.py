"""HTTP routes: the verification job lifecycle as resources.

============================  =============================================
``POST   /jobs``              submit a task spec → 201 + job descriptor
``GET    /jobs/<id>``         job status (and result once succeeded)
``GET    /jobs/<id>/events``  chunked NDJSON event stream (replay + live)
``DELETE /jobs/<id>``         cancel: 202 accepted, 409 already terminal
``GET    /healthz``           liveness/drain probe
``GET    /stats``             server, admission, job and engine counters
============================  =============================================

The ``POST /jobs`` body is ``{"task": {...}, "priority"?: int,
"lane"?: str, "deadline"?: seconds, "stream"?: bool}`` where the task spec
is decoded by :func:`repro.api.tasks.task_from_dict` — malformed specs are
400s, never 500s.  ``lane`` names a priority lane (``batch`` < ``normal`` <
``interactive``) mapped onto the dispatcher's numeric priorities; an
explicit ``priority`` overrides the lane.  With ``"stream": true`` the 201
response body is the job's NDJSON event stream itself (the job id travels
in the ``X-Job-Id`` header) — submit-and-stream on one connection instead
of a submit round-trip followed by a ``GET .../events`` connection.

The event stream's lines are exactly
:meth:`repro.api.events.Event.to_json` — the ``schema_version 1.0``
contract that ``python -m repro validate-events`` checks — so the wire
format is the already-pinned one, not a service-specific invention.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, AsyncIterator

from repro.api.jobs import Job, JobCancelledError, JobStatus
from repro.api.tasks import task_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.server import VerificationService

__all__ = ["HttpError", "Request", "Response", "Router", "PRIORITY_LANES"]

#: Named priority lanes → dispatcher priorities.  Interactive work overtakes
#: the default lane, batch work yields to it.
PRIORITY_LANES = {"batch": -10, "normal": 0, "interactive": 10}

MAX_BODY_BYTES = 1 << 20  # a task spec is small; anything bigger is abuse


class HttpError(Exception):
    """An error with a definite HTTP status; the handler maps it to JSON."""

    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    method: str
    path: str
    headers: dict[str, str]  # keys lowercased
    body: bytes = b""

    @property
    def api_key(self) -> str:
        return self.headers.get("x-api-key", "anonymous")

    def json(self) -> dict:
        if not self.body:
            raise HttpError(400, "a JSON body is required")
        try:
            payload = json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "the request body must be a JSON object")
        return payload


@dataclass
class Response:
    status: int = 200
    payload: dict | None = None
    headers: dict[str, str] = field(default_factory=dict)
    #: streaming responses yield byte chunks instead of carrying a payload
    stream: AsyncIterator[bytes] | None = None
    #: extra fields merged into the access-log record (job id, lane, ...)
    log: dict = field(default_factory=dict)

    def body(self) -> bytes:
        if self.payload is None:
            return b""
        return (json.dumps(self.payload, default=str) + "\n").encode()


class Router:
    """Maps parsed requests onto the service's engine, admission and drain
    state.  Pure routing/marshalling: no socket handling lives here."""

    def __init__(self, service: "VerificationService"):
        self.service = service
        # X-Idempotency-Key → job id.  A POST /jobs retried after a lost
        # response returns the original job instead of double-running the
        # task.  Retention matches the drain coordinator's full job registry
        # (the lookup substrate): keys live for the replica's lifetime.
        self._idempotency: dict[str, str] = {}

    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> Response:
        method, path = request.method, request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            return self.healthz()
        if path == "/stats" and method == "GET":
            return self.stats()
        if path == "/jobs" and method == "POST":
            return self.submit(request)
        if len(parts) == 2 and parts[0] == "jobs":
            if method == "GET":
                return self.job_status(parts[1])
            if method == "DELETE":
                return self.cancel(parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            if method == "GET":
                return self.job_events(parts[1])
        raise HttpError(404, f"no route for {method} {request.path}")

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Response:
        service = self.service
        idempotency_key = request.headers.get("x-idempotency-key", "")
        if idempotency_key:
            known = self._idempotency.get(idempotency_key)
            job = service.drain.get(known) if known is not None else None
            if job is not None:
                # Replay, before admission and before the drain gate: the
                # first attempt already paid both, and a retry racing a
                # drain must still find the job it created.
                return Response(
                    201,
                    {
                        "id": job.id,
                        "status": job.status.value,
                        "priority": job.priority,
                        "deadline": job.deadline,
                        "task_kind": getattr(type(job.task), "kind", ""),
                        "events": f"/jobs/{job.id}/events",
                        "deduplicated": True,
                    },
                    log={"job_id": job.id, "job_lane": job.lane, "deduplicated": True},
                )
        if service.drain.draining:
            raise HttpError(503, "draining: not accepting new jobs")
        payload = request.json()
        spec = payload.get("task")
        try:
            task = task_from_dict(spec)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc

        lane = payload.get("lane", "normal")
        if lane not in PRIORITY_LANES:
            raise HttpError(
                400, f"unknown lane {lane!r}; expected one of {sorted(PRIORITY_LANES)}"
            )
        priority = payload.get("priority", PRIORITY_LANES[lane])
        if not isinstance(priority, int):
            raise HttpError(400, "priority must be an integer")
        deadline = payload.get("deadline")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise HttpError(400, "deadline must be a positive number of seconds")

        stream = payload.get("stream", False)
        if not isinstance(stream, bool):
            raise HttpError(400, "stream must be a boolean")

        api_key = request.api_key
        decision = service.admission.admit(api_key)
        if not decision.allowed:
            raise HttpError(
                429,
                f"rejected by admission control ({decision.cause})",
                headers={"Retry-After": str(max(1, math.ceil(decision.retry_after)))},
            )
        try:
            job = service.engine.submit(task, priority=priority, deadline=deadline)
        except Exception:
            service.admission.release(api_key)
            raise
        service.drain.track(job)
        if idempotency_key:
            self._idempotency[idempotency_key] = job.id
        job.add_done_callback(lambda _job: service.admission.release(api_key))
        log = {"job_id": job.id, "job_lane": job.lane}
        if stream:
            # Submit-and-stream: the event stream IS the response body, so a
            # client that wants the verdict pays one connection per job
            # instead of two.
            return Response(
                201,
                stream=self._event_stream(job),
                headers={
                    "Content-Type": "application/x-ndjson",
                    "X-Job-Id": job.id,
                },
                log=log,
            )
        return Response(
            201,
            {
                "id": job.id,
                "status": job.status.value,
                "priority": job.priority,
                "deadline": job.deadline,
                "task_kind": type(task).kind,
                "events": f"/jobs/{job.id}/events",
            },
            log=log,
        )

    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> Job:
        job = self.service.drain.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    def job_status(self, job_id: str) -> Response:
        job = self._job(job_id)
        status = job.status
        descriptor: dict = {
            "id": job.id,
            "status": status.value,
            "priority": job.priority,
            "task_kind": getattr(type(job.task), "kind", ""),
            "events": f"/jobs/{job.id}/events",
        }
        if status is JobStatus.SUCCEEDED:
            descriptor["result"] = job.result(timeout=0).to_dict()
        elif status is JobStatus.CANCELLED:
            descriptor["reason"] = job.cancel_reason
        elif status is JobStatus.FAILED:
            try:
                job.result(timeout=0)
            except JobCancelledError:  # pragma: no cover - cancelled is handled above
                pass
            # repro: allow[REPRO-EXC] - error reported in the descriptor
            except Exception as error:  # noqa: BLE001 - reporting, not handling
                descriptor["error"] = f"{type(error).__name__}: {error}"
        return Response(200, descriptor)

    def cancel(self, job_id: str) -> Response:
        job = self._job(job_id)
        if not job.request_cancel():
            # Already terminal (including an earlier DELETE that landed):
            # a stable 409, never a dispatcher-internal error.
            raise HttpError(
                409, f"{job.id} already terminal ({job.status.value})"
            )
        return Response(202, {"id": job.id, "status": "cancelling"})

    @staticmethod
    def _encode_events(events) -> bytes:
        return "".join(event.to_json() + "\n" for event in events).encode()

    def _event_stream(self, job: Job) -> AsyncIterator[bytes]:
        """The job's NDJSON event feed: replay first, then live events.

        Two wire optimisations over the naive one-callback-one-chunk loop:
        a *finished* job's history is served as a single pre-joined chunk
        with no subscription (and no per-event loop hops), and a live job's
        events are greedily coalesced — everything queued by the time the
        stream task wakes goes out as one chunk — so a fast solver doesn't
        pay one writer drain per event.
        """

        async def ndjson() -> AsyncIterator[bytes]:
            events, terminal = job.snapshot()
            if terminal:
                if events:
                    yield self._encode_events(events)
                return
            loop = asyncio.get_running_loop()
            feed: asyncio.Queue = asyncio.Queue()

            def _push(event) -> None:
                loop.call_soon_threadsafe(feed.put_nowait, event)

            # Subscribing from the snapshot boundary replays (under the
            # job's lock) anything emitted since, so no event is lost
            # between snapshot() and subscribe().
            job.subscribe(_push, from_seq=len(events))
            if events:
                yield self._encode_events(events)
            while True:
                batch = [await feed.get()]
                while True:
                    try:
                        batch.append(feed.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                yield self._encode_events(batch)
                if any(event.TERMINAL for event in batch):
                    return

        return ndjson()

    def job_events(self, job_id: str) -> Response:
        job = self._job(job_id)
        return Response(
            200,
            stream=self._event_stream(job),
            headers={"Content-Type": "application/x-ndjson"},
            log={"job_id": job.id, "job_lane": job.lane},
        )

    # ------------------------------------------------------------------
    def healthz(self) -> Response:
        draining = self.service.drain.draining
        return Response(
            503 if draining else 200,
            {"status": "draining" if draining else "ok"},
        )

    def stats(self) -> Response:
        service = self.service
        return Response(
            200,
            {
                "server": service.server_stats(),
                "admission": service.admission.stats(),
                "jobs": service.drain.counts(),
                "engine": service.engine.cache_info(),
                "resources": service.engine.resources.stats() or {},
            },
        )
