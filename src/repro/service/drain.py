"""Graceful drain: stop accepting, finish or cancel in-flight, exit clean.

On SIGTERM (or a programmatic :meth:`DrainCoordinator.begin_drain`) the
service flips from *serving* to *draining*:

* new ``POST /jobs`` are refused with 503 (read-only routes keep working, so
  health checks and event-stream consumers see the drain through);
* in-flight jobs get up to ``grace`` seconds to finish on their own;
* whatever is still live after the grace window is cancelled with reason
  ``"shutdown"`` — the same terminal :class:`~repro.api.events.JobCancelled`
  event a queued job receives when the executor shuts down, so every
  subscribed stream still ends with exactly one terminal event;
* the coordinator then waits (briefly) for those cancellations to land, so
  no job is left non-terminal when the server task returns.

The coordinator only tracks jobs the *server* created; an engine shared with
other code keeps its other jobs untouched.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.jobs import Job

__all__ = ["DrainCoordinator"]


class DrainCoordinator:
    """Tracks server-owned jobs and orchestrates the drain sequence."""

    def __init__(self) -> None:
        self._jobs: dict[str, "Job"] = {}
        self._draining = False
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def track(self, job: "Job") -> None:
        self._jobs[job.id] = job

    def get(self, job_id: str) -> "Job | None":
        return self._jobs.get(job_id)

    def jobs(self) -> list["Job"]:
        return list(self._jobs.values())

    def live_jobs(self) -> list["Job"]:
        return [job for job in self._jobs.values() if not job.status.terminal]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.status.value] = counts.get(job.status.value, 0) + 1
        return counts

    # ------------------------------------------------------------------
    async def begin_drain(self, grace: float = 10.0) -> dict:
        """Run the drain sequence; returns a summary for the final log line.

        Idempotent: a second call (second SIGTERM) just awaits the first
        drain's completion.
        """
        if self._draining:
            await self._drained.wait()
            return {"finished": 0, "cancelled": 0, "repeat": True}
        self._draining = True
        deadline = time.monotonic() + max(0.0, grace)

        # Phase 1: let in-flight work finish within the grace window.  Job
        # completion happens on the dispatcher thread; poll rather than
        # bridge callbacks, since the set shrinks monotonically and the
        # window is short.
        while time.monotonic() < deadline:
            live = self.live_jobs()
            if not live:
                break
            await asyncio.sleep(min(0.05, max(0.0, deadline - time.monotonic())))

        # Phase 2: cancel stragglers with the shutdown reason.  A queued job
        # flips terminal at dispatch; a running one stops within a control
        # slice.
        stragglers = self.live_jobs()
        for job in stragglers:
            job.request_cancel(reason="shutdown")

        # Phase 3: wait for the cancellations to land so every stream has
        # flushed its terminal event before the server exits.  Bounded: a
        # solver slice is sub-second, so a stuck job here is a bug we'd
        # rather surface as a slow-but-clean exit than hang on.
        flush_deadline = time.monotonic() + 30.0
        for job in stragglers:
            remaining = flush_deadline - time.monotonic()
            if remaining <= 0:
                break
            await asyncio.get_running_loop().run_in_executor(
                None, job.wait, remaining
            )

        shutdown_cancelled = sum(
            1
            for job in stragglers
            if job.status.terminal and job.cancel_reason == "shutdown"
        )
        terminal = sum(1 for job in self._jobs.values() if job.status.terminal)
        summary = {
            "finished": terminal - shutdown_cancelled,
            "cancelled": shutdown_cancelled,
            "orphaned": len(self.live_jobs()),
        }
        self._drained.set()
        return summary
