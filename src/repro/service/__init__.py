"""The networked verification service: the job API on the wire.

:mod:`repro.service` layers a stdlib-only asyncio HTTP/1.1 server on top of
:class:`~repro.api.aio.AsyncEngine`, turning the in-process
submit/stream/cancel job surface into a multi-tenant network service::

    python -m repro serve --port 8080

    curl -d '{"task": {"kind": "correction", "code": "steane"}}' \
         http://localhost:8080/jobs
    curl http://localhost:8080/jobs/job-1/events     # chunked NDJSON stream

The NDJSON event stream is exactly the ``schema_version 1.0`` contract of
:mod:`repro.api.events` (replay-then-live, contiguous ``seq``, one terminal
event), so ``python -m repro validate-events`` validates what the wire
carries.  The server is production-shaped: per-client token-bucket admission
control and in-flight quotas (:mod:`repro.service.admission`), priority
lanes mapped onto the dispatcher's priorities, bounded submit queues with
429 + ``Retry-After`` backpressure, request timeouts, graceful drain on
SIGTERM (:mod:`repro.service.drain`), and structured NDJSON access logging.

:mod:`repro.service.client` is the stdlib blocking client the tests and the
load benchmark use.
"""

from repro.service.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.service.client import ServiceClient, ServiceError
from repro.service.drain import DrainCoordinator
from repro.service.server import VerificationService

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "DrainCoordinator",
    "ServiceClient",
    "ServiceError",
    "VerificationService",
]
