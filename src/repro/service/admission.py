"""Admission control: per-client token buckets, quotas, and backpressure.

The service answers three questions before a ``POST /jobs`` reaches the
engine, in order of cheapness:

1. *Is the whole server over capacity?*  A bounded count of non-terminal
   jobs (``max_pending``) — the submit queue's backpressure valve.  The
   dispatcher runs one job at a time, so an unbounded queue would just turn
   overload into unbounded latency; refusing early with a ``Retry-After``
   keeps the queue honest.
2. *Is this client over its in-flight quota?*  Each API key may hold at most
   ``max_inflight_per_key`` live jobs.
3. *Is this client submitting too fast?*  A classic token bucket per key:
   ``rate`` tokens/second refill up to a ``burst`` cap, one token per
   submission.

All three rejections map to HTTP 429 with a ``Retry-After`` hint; the
decision records which gate tripped so ``GET /stats`` can report rejection
counts by cause.  Clients are identified by the ``X-API-Key`` header; absent
keys share the ``"anonymous"`` bucket, so unauthenticated traffic is rate
limited collectively rather than freely.

Everything here is synchronous and lock-guarded: decisions are made on the
event loop but job-termination callbacks (:meth:`release`) arrive from the
engine's dispatcher thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["AdmissionController", "AdmissionDecision", "TokenBucket"]


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    allowed: bool
    #: which gate rejected: "capacity", "quota", "rate" (or "" when allowed)
    cause: str = ""
    #: suggested client back-off in seconds (rounded up for Retry-After)
    retry_after: float = 0.0


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, capped at ``burst``.

    Starts full, so a fresh client can burst immediately.  ``try_acquire``
    returns the wait (in seconds) until a token would be available — zero
    means the token was taken.
    """

    def __init__(self, rate: float, burst: float, *, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; return 0.0 on success, else the
        seconds until enough tokens will have accumulated."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens


class AdmissionController:
    """Admission policy shared by every connection of one service instance."""

    def __init__(
        self,
        *,
        max_pending: int = 64,
        max_inflight_per_key: int = 16,
        rate: float = 50.0,
        burst: float = 25.0,
        clock=time.monotonic,
    ):
        self.max_pending = max_pending
        self.max_inflight_per_key = max_inflight_per_key
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, int] = {}
        self._pending = 0
        self.admitted = 0
        self.rejected: dict[str, int] = {"capacity": 0, "quota": 0, "rate": 0}
        # Cumulative per-key counters: unlike ``_inflight`` (which drains
        # back to empty as jobs finish) these survive the load, so a
        # post-run ``GET /stats`` still shows who submitted what.
        self.admitted_by_key: dict[str, int] = {}
        self.completed_by_key: dict[str, int] = {}

    # ------------------------------------------------------------------
    def admit(self, api_key: str) -> AdmissionDecision:
        """Decide one submission for ``api_key`` and, when allowed, reserve
        its capacity/quota slot (released via :meth:`release`)."""
        with self._lock:
            if self._pending >= self.max_pending:
                self.rejected["capacity"] += 1
                # The queue drains one job at a time; a second is the
                # shortest plausible wait, not a promise.
                return AdmissionDecision(False, "capacity", 1.0)
            if self._inflight.get(api_key, 0) >= self.max_inflight_per_key:
                self.rejected["quota"] += 1
                return AdmissionDecision(False, "quota", 1.0)
            bucket = self._buckets.get(api_key)
            if bucket is None:
                bucket = self._buckets[api_key] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
            wait = bucket.try_acquire()
            if wait > 0.0:
                self.rejected["rate"] += 1
                return AdmissionDecision(False, "rate", wait)
            self._pending += 1
            self._inflight[api_key] = self._inflight.get(api_key, 0) + 1
            self.admitted += 1
            self.admitted_by_key[api_key] = self.admitted_by_key.get(api_key, 0) + 1
            return AdmissionDecision(True)

    def release(self, api_key: str) -> None:
        """Return the slot reserved by a successful :meth:`admit` — called
        from the job's done-callback (dispatcher thread) or from the error
        path when submission itself failed."""
        with self._lock:
            self._pending = max(0, self._pending - 1)
            left = self._inflight.get(api_key, 0) - 1
            if left > 0:
                self._inflight[api_key] = left
            else:
                self._inflight.pop(api_key, None)
            self.completed_by_key[api_key] = self.completed_by_key.get(api_key, 0) + 1

    # ------------------------------------------------------------------
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def stats(self) -> dict:
        with self._lock:
            return {
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
                "pending": self._pending,
                "max_pending": self.max_pending,
                "max_inflight_per_key": self.max_inflight_per_key,
                "clients": len(self._buckets),
                "inflight_by_key": dict(self._inflight),
                "admitted_by_key": dict(self.admitted_by_key),
                "completed_by_key": dict(self.completed_by_key),
            }
