"""A blocking stdlib client for the verification service.

Built on :mod:`http.client` (which transparently decodes chunked transfer
encoding, so the NDJSON event stream reads as a plain line iterator).  This
is the client the test suite and the load benchmark drive; it is also a
reasonable starting point for real integrations that do not want an async
stack::

    client = ServiceClient("127.0.0.1", 8080, api_key="team-a")
    job = client.submit({"kind": "correction", "code": "steane"})
    for event in client.events(job["id"]):
        ...
    final = client.job(job["id"])

Non-2xx responses raise :class:`ServiceError` carrying the HTTP status and
the server's JSON error payload (including ``Retry-After`` for 429s), so
callers can implement back-off without parsing anything themselves.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterator

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx service response."""

    def __init__(self, status: int, payload: dict, headers: dict[str, str]):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


class ServiceClient:
    """One service endpoint; by default a fresh connection per request (the
    server closes after each response).  With ``keep_alive=True`` the client
    asks the server for a persistent connection and ``submit_stream`` pumps
    every job through one socket — the cheap path for high-rate dispatch.
    A keep-alive client is NOT thread-safe (one live socket); use one client
    per thread, and fully consume each event stream before the next submit.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        api_key: str | None = None,
        timeout: float = 60.0,
        keep_alive: bool = False,
    ):
        self.host = host
        self.port = port
        self.api_key = api_key
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._conn: http.client.HTTPConnection | None = None
        self._conn_clean = True  # previous response fully drained?

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _persistent(self) -> http.client.HTTPConnection:
        if not self._conn_clean:
            self._drop_persistent()
        if self._conn is None:
            self._conn = self._connect()
            self._conn_clean = True
        return self._conn

    def _drop_persistent(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # noqa: BLE001 - teardown
                pass
            self._conn = None
        self._conn_clean = True

    def close(self) -> None:
        """Release the persistent connection (no-op without keep_alive)."""
        self._drop_persistent()

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        if self.keep_alive:
            headers["Connection"] = "keep-alive"
        return headers

    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        """One request/response cycle; raises :class:`ServiceError` on
        non-2xx."""
        conn = self._connect()
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers=self._headers(),
            )
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw) if raw else {}
            if not 200 <= response.status < 300:
                raise ServiceError(
                    response.status,
                    payload,
                    {k.lower(): v for k, v in response.getheaders()},
                )
            return payload
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def submit(
        self,
        task: dict,
        *,
        priority: int | None = None,
        lane: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        """``POST /jobs``; returns the job descriptor (``id``, ``events``...)."""
        body: dict = {"task": task}
        if priority is not None:
            body["priority"] = priority
        if lane is not None:
            body["lane"] = lane
        if deadline is not None:
            body["deadline"] = deadline
        return self.request("POST", "/jobs", body)

    def submit_stream(
        self,
        task: dict,
        *,
        priority: int | None = None,
        lane: str | None = None,
        deadline: float | None = None,
        raw: bool = False,
    ) -> tuple[str, Iterator[dict | str]]:
        """``POST /jobs`` with ``"stream": true``: submit and consume the
        job's event stream on ONE connection.

        Returns ``(job_id, events)`` where ``events`` yields one event per
        NDJSON line until the terminal event; the job id comes from the
        ``X-Job-Id`` response header.  This halves the connection count of
        the submit-then-``events()`` pattern.  With ``keep_alive=True`` the
        same socket is reused across calls (chunked streams are
        self-delimiting), dropping the per-job connection cost to zero —
        but each stream must be fully consumed before the next submit.
        """
        body: dict = {"task": task, "stream": True}
        if priority is not None:
            body["priority"] = priority
        if lane is not None:
            body["lane"] = lane
        if deadline is not None:
            body["deadline"] = deadline
        payload_bytes = json.dumps(body)
        persistent = self.keep_alive
        conn: http.client.HTTPConnection
        response = None
        # A pooled socket may have gone stale (server closed it between
        # calls); retry exactly once on a fresh connection.
        for attempt in (0, 1):
            conn = self._persistent() if persistent else self._connect()
            if persistent:
                self._conn_clean = False
            try:
                conn.request(
                    "POST", "/jobs", body=payload_bytes, headers=self._headers()
                )
                response = conn.getresponse()
                if persistent and attempt == 0 and response.status == 408:
                    # An idle pooled socket the server had already timed out:
                    # that buffered 408 answers the PREVIOUS idle period, not
                    # this request.  Resubmit on a fresh connection.
                    self._drop_persistent()
                    continue
                break
            except (
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                ConnectionError,
                OSError,
            ):
                if persistent:
                    self._drop_persistent()
                else:
                    conn.close()
                if not persistent or attempt:
                    raise
        assert response is not None
        if response.status != 201:
            raw_body = response.read()
            payload = json.loads(raw_body) if raw_body else {}
            if persistent:
                # Error bodies are Connection: close — start fresh next time.
                self._drop_persistent()
            else:
                conn.close()
            raise ServiceError(
                response.status,
                payload,
                {k.lower(): v for k, v in response.getheaders()},
            )
        job_id = response.getheader("X-Job-Id", "")

        def lines() -> Iterator[dict | str]:
            drained = False
            try:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    yield line.decode() if raw else json.loads(line)
                drained = True
            finally:
                if persistent:
                    if drained and not response.isclosed():
                        response.close()  # releases the conn for reuse
                        self._conn_clean = True
                    elif drained and response.isclosed():
                        self._conn_clean = True
                    else:
                        self._drop_persistent()
                else:
                    conn.close()

        return job_id, lines()

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self.request("DELETE", f"/jobs/{job_id}")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    # ------------------------------------------------------------------
    def events(self, job_id: str, *, raw: bool = False) -> Iterator[dict | str]:
        """Stream ``GET /jobs/<id>/events``: yields one event per NDJSON
        line until the terminal event closes the stream.  ``raw=True`` yields
        the undecoded JSON lines (what ``validate-events`` consumes)."""
        conn = self._connect()
        try:
            conn.request("GET", f"/jobs/{job_id}/events", headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                raw_body = response.read()
                payload = json.loads(raw_body) if raw_body else {}
                raise ServiceError(
                    response.status,
                    payload,
                    {k.lower(): v for k, v in response.getheaders()},
                )
            for line in response:
                line = line.strip()
                if not line:
                    continue
                yield line.decode() if raw else json.loads(line)
        finally:
            conn.close()
