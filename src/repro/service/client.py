"""A blocking stdlib client for the verification service.

Built on :mod:`http.client` (which transparently decodes chunked transfer
encoding, so the NDJSON event stream reads as a plain line iterator).  This
is the client the test suite and the load benchmark drive; it is also a
reasonable starting point for real integrations that do not want an async
stack::

    client = ServiceClient("127.0.0.1", 8080, api_key="team-a")
    job = client.submit({"kind": "correction", "code": "steane"})
    for event in client.events(job["id"]):
        ...
    final = client.job(job["id"])

Non-2xx responses raise :class:`ServiceError` carrying the HTTP status and
the server's JSON error payload (including ``Retry-After`` for 429s), so
callers can implement back-off without parsing anything themselves.

With ``retries > 0`` the client implements the back-off itself: capped
exponential delays with deterministic jitter (seeded per client, so test
runs are reproducible), automatic ``Retry-After`` honoring on 429/503, and
transport-error retries.  A POST is only retried when it carries an
``X-Idempotency-Key`` — :meth:`submit` generates one automatically for a
retrying client — which the server dedupes against its job registry, so a
response lost after the job was created can never double-run the task.
:meth:`events` reconnects a broken stream and resumes from the last seen
``seq`` via the server's replay, deduplicating instead of restarting.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from typing import Iterator

__all__ = ["ServiceClient", "ServiceError"]

#: Event types that end a job's stream (mirrors ``Event.TERMINAL`` in
#: ``repro.api.events`` — hardcoded so the client stays dependency-free).
_TERMINAL_EVENTS = frozenset({"JobCompleted", "JobCancelled", "JobFailed"})

#: Transport-layer failures worth retrying: connection loss and HTTP framing
#: breaks (``IncompleteRead`` is a truncated chunked stream, ``BadStatusLine``
#: a server that closed mid-response).
_TRANSPORT_ERRORS = (ConnectionError, OSError, http.client.HTTPException)


class ServiceError(Exception):
    """A non-2xx service response."""

    def __init__(self, status: int, payload: dict, headers: dict[str, str]):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


class ServiceClient:
    """One service endpoint; by default a fresh connection per request (the
    server closes after each response).  With ``keep_alive=True`` the client
    asks the server for a persistent connection and ``submit_stream`` pumps
    every job through one socket — the cheap path for high-rate dispatch.
    A keep-alive client is NOT thread-safe (one live socket); use one client
    per thread, and fully consume each event stream before the next submit.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        api_key: str | None = None,
        timeout: float = 60.0,
        keep_alive: bool = False,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.api_key = api_key
        self.timeout = timeout
        self.keep_alive = keep_alive
        #: extra attempts after the first (0 preserves the historical
        #: fail-fast behaviour: a 429 raises immediately).
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        # Deterministic jitter: same seed → same delay sequence, so chaos
        # tests replay identically while concurrent clients (different
        # seeds) still decorrelate their retries.
        self._retry_rng = random.Random(retry_seed)
        self._conn: http.client.HTTPConnection | None = None
        self._conn_clean = True  # previous response fully drained?

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _persistent(self) -> http.client.HTTPConnection:
        if not self._conn_clean:
            self._drop_persistent()
        if self._conn is None:
            self._conn = self._connect()
            self._conn_clean = True
        return self._conn

    def _drop_persistent(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # repro: allow[REPRO-EXC] - socket teardown
                pass
            self._conn = None
        self._conn_clean = True

    def close(self) -> None:
        """Release the persistent connection (no-op without keep_alive)."""
        self._drop_persistent()

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        if self.keep_alive:
            headers["Connection"] = "keep-alive"
        return headers

    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential delay with deterministic jitter in [50%, 100%]."""
        base = min(self.backoff_cap, self.backoff * (2 ** attempt))
        return base * (0.5 + 0.5 * self._retry_rng.random())

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> dict:
        """A request/response cycle; raises :class:`ServiceError` on non-2xx.

        With ``retries > 0`` this is a retry loop: 429/503 responses are
        retried after their ``Retry-After`` (capped at ``backoff_cap``, the
        jittered backoff when absent); transport errors are retried for
        idempotent calls — GET/DELETE always, POST only when ``headers``
        carries an ``X-Idempotency-Key`` the server can dedupe on.  Other
        errors (4xx semantics, exhausted budget) raise as before.
        """
        idempotent = method in ("GET", "DELETE") or bool(
            headers and "X-Idempotency-Key" in headers
        )
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, headers)
            except ServiceError as error:
                if attempt >= self.retries or error.status not in (429, 503):
                    raise
                delay = error.retry_after
                if delay is None:
                    delay = self._backoff_delay(attempt)
                else:
                    delay = min(max(delay, 0.0), self.backoff_cap)
            except _TRANSPORT_ERRORS:
                if attempt >= self.retries or not idempotent:
                    raise
                delay = self._backoff_delay(attempt)
            attempt += 1
            time.sleep(delay)

    def _request_once(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        conn = self._connect()
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={**self._headers(), **(headers or {})},
            )
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw) if raw else {}
            if not 200 <= response.status < 300:
                raise ServiceError(
                    response.status,
                    payload,
                    {k.lower(): v for k, v in response.getheaders()},
                )
            return payload
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def submit(
        self,
        task: dict,
        *,
        priority: int | None = None,
        lane: str | None = None,
        deadline: float | None = None,
        idempotency_key: str | None = None,
    ) -> dict:
        """``POST /jobs``; returns the job descriptor (``id``, ``events``...).

        A retrying client (``retries > 0``) attaches an ``X-Idempotency-Key``
        — the given one, or a generated UUID — so a resubmission after a
        lost response returns the original job (descriptor carries
        ``"deduplicated": true``) instead of running the task twice.
        """
        body: dict = {"task": task}
        if priority is not None:
            body["priority"] = priority
        if lane is not None:
            body["lane"] = lane
        if deadline is not None:
            body["deadline"] = deadline
        if idempotency_key is None and self.retries:
            idempotency_key = uuid.uuid4().hex
        headers = {"X-Idempotency-Key": idempotency_key} if idempotency_key else None
        return self.request("POST", "/jobs", body, headers=headers)

    def submit_stream(
        self,
        task: dict,
        *,
        priority: int | None = None,
        lane: str | None = None,
        deadline: float | None = None,
        raw: bool = False,
    ) -> tuple[str, Iterator[dict | str]]:
        """``POST /jobs`` with ``"stream": true``: submit and consume the
        job's event stream on ONE connection.

        Returns ``(job_id, events)`` where ``events`` yields one event per
        NDJSON line until the terminal event; the job id comes from the
        ``X-Job-Id`` response header.  This halves the connection count of
        the submit-then-``events()`` pattern.  With ``keep_alive=True`` the
        same socket is reused across calls (chunked streams are
        self-delimiting), dropping the per-job connection cost to zero —
        but each stream must be fully consumed before the next submit.
        """
        body: dict = {"task": task, "stream": True}
        if priority is not None:
            body["priority"] = priority
        if lane is not None:
            body["lane"] = lane
        if deadline is not None:
            body["deadline"] = deadline
        payload_bytes = json.dumps(body)
        persistent = self.keep_alive
        conn: http.client.HTTPConnection
        response = None
        # A pooled socket may have gone stale (server closed it between
        # calls); retry exactly once on a fresh connection.
        for attempt in (0, 1):
            conn = self._persistent() if persistent else self._connect()
            if persistent:
                self._conn_clean = False
            try:
                conn.request(
                    "POST", "/jobs", body=payload_bytes, headers=self._headers()
                )
                response = conn.getresponse()
                if persistent and attempt == 0 and response.status == 408:
                    # An idle pooled socket the server had already timed out:
                    # that buffered 408 answers the PREVIOUS idle period, not
                    # this request.  Resubmit on a fresh connection.
                    self._drop_persistent()
                    continue
                break
            except (
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                ConnectionError,
                OSError,
            ):
                if persistent:
                    self._drop_persistent()
                else:
                    conn.close()
                if not persistent or attempt:
                    raise
        assert response is not None
        if response.status != 201:
            raw_body = response.read()
            payload = json.loads(raw_body) if raw_body else {}
            if persistent:
                # Error bodies are Connection: close — start fresh next time.
                self._drop_persistent()
            else:
                conn.close()
            raise ServiceError(
                response.status,
                payload,
                {k.lower(): v for k, v in response.getheaders()},
            )
        job_id = response.getheader("X-Job-Id", "")

        def lines() -> Iterator[dict | str]:
            drained = False
            try:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    yield line.decode() if raw else json.loads(line)
                drained = True
            finally:
                if persistent:
                    if drained and not response.isclosed():
                        response.close()  # releases the conn for reuse
                        self._conn_clean = True
                    elif drained and response.isclosed():
                        self._conn_clean = True
                    else:
                        self._drop_persistent()
                else:
                    conn.close()

        return job_id, lines()

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self.request("DELETE", f"/jobs/{job_id}")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    # ------------------------------------------------------------------
    def events(
        self,
        job_id: str,
        *,
        raw: bool = False,
        reconnects: int | None = None,
    ) -> Iterator[dict | str]:
        """Stream ``GET /jobs/<id>/events``: yields one event per NDJSON
        line until the terminal event closes the stream.  ``raw=True`` yields
        the undecoded JSON lines (what ``validate-events`` consumes).

        A stream broken mid-flight (reset, truncated chunking) is
        reconnected up to ``reconnects`` times (default: the client's
        ``retries``) and *resumed*: the server replays the whole stream, and
        the client skips every event at or below the last ``seq`` it already
        delivered — the consumer sees each event exactly once, in order,
        regardless of how many reconnects happened underneath.
        """
        if reconnects is None:
            reconnects = self.retries
        last_seq = -1
        failures = 0
        while True:
            try:
                for line in self._event_lines_once(job_id):
                    text = line.decode()
                    try:
                        event = json.loads(text)
                    except ValueError:
                        if raw:
                            yield text  # pass malformed lines through verbatim
                            continue
                        raise
                    seq = event.get("seq") if isinstance(event, dict) else None
                    if isinstance(seq, int):
                        if seq <= last_seq:
                            continue  # replayed prefix after a reconnect
                        last_seq = seq
                    yield text if raw else event
                    if isinstance(event, dict) and event.get("event") in _TERMINAL_EVENTS:
                        return
                # EOF without a terminal event: every job stream ends with
                # one, so this is a break the transport failed to surface (a
                # reset can land before the first chunk and read as a clean
                # empty body).  Treat it exactly like a transport error.
                raise ConnectionError(
                    f"event stream for {job_id} ended without a terminal event"
                )
            except _TRANSPORT_ERRORS:
                if failures >= reconnects:
                    raise
                time.sleep(self._backoff_delay(failures))
                failures += 1

    def _event_lines_once(self, job_id: str) -> Iterator[bytes]:
        """One physical ``GET .../events`` connection's stripped NDJSON lines."""
        conn = self._connect()
        try:
            conn.request("GET", f"/jobs/{job_id}/events", headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                raw_body = response.read()
                payload = json.loads(raw_body) if raw_body else {}
                raise ServiceError(
                    response.status,
                    payload,
                    {k.lower(): v for k, v in response.getheaders()},
                )
            for line in response:
                line = line.strip()
                if line:
                    yield line
        finally:
            conn.close()
