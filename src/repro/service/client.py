"""A blocking stdlib client for the verification service.

Built on :mod:`http.client` (which transparently decodes chunked transfer
encoding, so the NDJSON event stream reads as a plain line iterator).  This
is the client the test suite and the load benchmark drive; it is also a
reasonable starting point for real integrations that do not want an async
stack::

    client = ServiceClient("127.0.0.1", 8080, api_key="team-a")
    job = client.submit({"kind": "correction", "code": "steane"})
    for event in client.events(job["id"]):
        ...
    final = client.job(job["id"])

Non-2xx responses raise :class:`ServiceError` carrying the HTTP status and
the server's JSON error payload (including ``Retry-After`` for 429s), so
callers can implement back-off without parsing anything themselves.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterator

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx service response."""

    def __init__(self, status: int, payload: dict, headers: dict[str, str]):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.headers = headers

    @property
    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


class ServiceClient:
    """One service endpoint; a fresh connection per request (the server
    closes after each response anyway)."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        api_key: str | None = None,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.api_key = api_key
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        return headers

    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        """One request/response cycle; raises :class:`ServiceError` on
        non-2xx."""
        conn = self._connect()
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers=self._headers(),
            )
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw) if raw else {}
            if not 200 <= response.status < 300:
                raise ServiceError(
                    response.status,
                    payload,
                    {k.lower(): v for k, v in response.getheaders()},
                )
            return payload
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def submit(
        self,
        task: dict,
        *,
        priority: int | None = None,
        lane: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        """``POST /jobs``; returns the job descriptor (``id``, ``events``...)."""
        body: dict = {"task": task}
        if priority is not None:
            body["priority"] = priority
        if lane is not None:
            body["lane"] = lane
        if deadline is not None:
            body["deadline"] = deadline
        return self.request("POST", "/jobs", body)

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self.request("DELETE", f"/jobs/{job_id}")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    # ------------------------------------------------------------------
    def events(self, job_id: str, *, raw: bool = False) -> Iterator[dict | str]:
        """Stream ``GET /jobs/<id>/events``: yields one event per NDJSON
        line until the terminal event closes the stream.  ``raw=True`` yields
        the undecoded JSON lines (what ``validate-events`` consumes)."""
        conn = self._connect()
        try:
            conn.request("GET", f"/jobs/{job_id}/events", headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                raw_body = response.read()
                payload = json.loads(raw_body) if raw_body else {}
                raise ServiceError(
                    response.status,
                    payload,
                    {k.lower(): v for k, v in response.getheaders()},
                )
            for line in response:
                line = line.strip()
                if not line:
                    continue
                yield line.decode() if raw else json.loads(line)
        finally:
            conn.close()
