"""The asyncio HTTP/1.1 server: sockets, timeouts, logging, lifecycle.

Stdlib only: :func:`asyncio.start_server` plus a small, strict HTTP/1.1
reader (request line, headers, ``Content-Length`` body, size caps).  By
default one request per connection (responses carry ``Connection: close``);
a client that sends an explicit ``Connection: keep-alive`` gets a
persistent connection instead — chunked streams are self-delimiting, so a
submit-and-stream client can pump many jobs through ONE socket, which is
what makes high-rate dispatch cheap (per-job TCP setup is the dominant
wire cost for sub-millisecond solves).  Event streams are sent with chunked
transfer encoding and tolerate the client hanging up mid-stream: the writer
error just ends that consumer; the job, its guards, and the shared session
are unaffected (a broken subscriber is dropped by
:meth:`repro.api.jobs.Job.emit`).

Lifecycle: :meth:`VerificationService.serve_forever` installs a SIGTERM/
SIGINT handler (when the platform supports it), serves until the signal,
then runs the drain sequence (:mod:`repro.service.drain`) and returns — the
CLI maps that clean return to exit code 0.

Access logging is structured: one JSON object per request on the
``repro.service.access`` logger.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time

from repro import faults, sanitize
from repro.api.engine import Engine
from repro.service.admission import AdmissionController
from repro.service.drain import DrainCoordinator
from repro.service.routes import MAX_BODY_BYTES, HttpError, Request, Response, Router

__all__ = ["VerificationService"]

access_log = logging.getLogger("repro.service.access")

_STATUS_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

MAX_HEADER_BYTES = 32 * 1024


class VerificationService:
    """One server instance: engine + admission + drain + listener."""

    def __init__(
        self,
        engine: Engine | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: AdmissionController | None = None,
        request_timeout: float = 10.0,
        drain_grace: float = 10.0,
        **engine_kwargs,
    ):
        self.engine = engine if engine is not None else Engine(**engine_kwargs)
        self._owns_engine = engine is None
        self.host = host
        self.port = port  # rebound to the real port once the socket exists
        self.admission = admission if admission is not None else AdmissionController()
        self.drain = DrainCoordinator()
        self.router = Router(self)
        self.request_timeout = request_timeout
        self.drain_grace = drain_grace
        self.started_at: float | None = None
        self.requests_served = 0
        self.connections_open = 0
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._watchdog: "sanitize.LoopWatchdog | None" = None
        # Bound after the engine above: an Engine(fault_plan=...) built by
        # **engine_kwargs has already armed the plan by now, so the socket
        # and loop injection points see it too.
        self._fault = faults.hook("socket")
        self._loop_fault = faults.hook("loop")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "VerificationService":
        """Bind the listener (resolving an ephemeral port request)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        # Under REPRO_SANITIZE a daemon thread heartbeats the loop and
        # counts stalls — the dynamic twin of the REPRO-ASYNC static rule.
        self._watchdog = sanitize.new_loop_watchdog(asyncio.get_running_loop())
        return self

    def request_stop(self) -> None:
        """Flip the stop flag; ``serve_forever`` takes it from there."""
        self._stop.set()

    async def serve_forever(self, *, install_signal_handlers: bool = True) -> dict:
        """Serve until SIGTERM/SIGINT (or :meth:`request_stop`), then drain.

        Returns the drain summary; a normal return means every tracked job
        reached its terminal event and the socket is closed — the clean-exit
        contract the CLI and the CI smoke test rely on.
        """
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # e.g. non-main thread or unsupported platform
        try:
            await self._stop.wait()
            return await self.shutdown()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)

    async def shutdown(self) -> dict:
        """Drain jobs, then close the listener and (when owned) the engine.

        The listener stays open through the grace window: the drain gate
        503s new submissions the moment draining starts, but status polls,
        event streams and — critically — a ``DELETE`` racing the shutdown
        must still be able to reach their jobs (see ``repro.service.drain``'s
        contract: read-only routes keep working through the drain).
        """
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        summary = await self.drain.begin_drain(self.drain_grace)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._owns_engine:
            await asyncio.get_running_loop().run_in_executor(None, self.engine.close)
        access_log.info(
            json.dumps({"event": "drained", **summary}, default=str)
        )
        return summary

    async def __aenter__(self) -> "VerificationService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_open += 1
        try:
            # Serve requests until the client closes, errors, or didn't ask
            # for keep-alive (the default is still one request per
            # connection, so legacy clients see the historical behaviour).
            while await self._serve_one(reader, writer):
                pass
        finally:
            self.connections_open -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: loop teardown cancelling a parked keep-alive
                # handler mid-close; the socket is closed either way, and
                # completing quietly keeps asyncio's connection callback from
                # logging a spurious traceback.
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """One request/response cycle; True = keep the connection open."""
        if self._loop_fault is not None:
            # A delay-mode ``loop.stall`` rule sleeps inside fire(), blocking
            # the event loop — the dynamic twin of what the sanitize
            # watchdog's stall counter measures.
            self._loop_fault.fire("stall")
        started = time.monotonic()
        request: Request | None = None
        response: Response | None = None
        status = 0  # 0 = nothing sent (clean EOF / client vanished)
        sent = 0
        keep = False
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), self.request_timeout
                )
            except asyncio.TimeoutError:
                status, sent = await self._send_error(writer, 408, "request timeout")
                return False
            except HttpError as error:
                status, sent = await self._send_error(
                    writer, error.status, error.message, error.headers
                )
                return False
            except (asyncio.IncompleteReadError, ConnectionError):
                return False  # client went away before completing a request
            if request is None:
                return False  # clean EOF before any request bytes
            keep = request.headers.get("connection", "").lower() == "keep-alive"
            try:
                response = await self.router.handle(request)
            except HttpError as error:
                status, sent = await self._send_error(
                    writer, error.status, error.message, error.headers
                )
                return False
            except Exception as error:  # noqa: BLE001 - the connection boundary
                logging.getLogger("repro.service").exception("handler error")
                status, sent = await self._send_error(
                    writer, 500, f"{type(error).__name__}: {error}"
                )
                return False
            status, sent = await self._send_response(
                writer, response, keep_alive=keep
            )
            return keep
        finally:
            if request is not None or status:
                self.requests_served += 1
                self._log_access(
                    request,
                    status,
                    sent,
                    time.monotonic() - started,
                    extra=response.log if response is not None else None,
                )

    async def _read_request(self, reader: asyncio.StreamReader) -> Request | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise HttpError(413, "headers too large") from exc
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # connection opened and closed without a request
            raise
        if len(head) > MAX_HEADER_BYTES:
            raise HttpError(413, "headers too large")
        lines = head.decode("latin-1").split("\r\n")
        request_parts = lines[0].split(" ")
        if len(request_parts) != 3 or not request_parts[2].startswith("HTTP/1."):
            raise HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = request_parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise HttpError(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError as exc:
                raise HttpError(400, "malformed Content-Length") from exc
            if length < 0:
                raise HttpError(400, "malformed Content-Length")
            if length > MAX_BODY_BYTES:
                raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            body = await reader.readexactly(length)
        elif headers.get("transfer-encoding"):
            raise HttpError(400, "chunked request bodies are not supported")
        return Request(method=method.upper(), path=path, headers=headers, body=body)

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------
    @staticmethod
    def _head(status: int, headers: dict[str, str], keep_alive: bool = False) -> bytes:
        reason = _STATUS_REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        lines.append("Connection: keep-alive" if keep_alive else "Connection: close")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _send_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        keep_alive: bool = False,
    ) -> tuple[int, int]:
        if response.stream is not None:
            return await self._send_stream(writer, response, keep_alive=keep_alive)
        body = response.body()
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            **response.headers,
        }
        writer.write(self._head(response.status, headers, keep_alive) + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # the client left; nothing further to deliver
        return response.status, len(body)

    async def _send_stream(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        keep_alive: bool = False,
    ) -> tuple[int, int]:
        headers = {
            "Content-Type": "application/x-ndjson",
            "Transfer-Encoding": "chunked",
            **response.headers,
        }
        sent = 0
        try:
            writer.write(self._head(response.status, headers, keep_alive))
            await writer.drain()
            async for chunk in response.stream:
                if self._fault is not None:
                    if self._fault.fire("reset") is not None:
                        # Hard RST mid-stream: the client's read fails with
                        # ConnectionResetError, exactly like a dropped NAT
                        # mapping or a crashed peer.
                        writer.transport.abort()
                        raise ConnectionResetError("injected socket reset")
                    if self._fault.fire("truncate") is not None:
                        # FIN without the final 0-length chunk: the client
                        # sees EOF mid-chunked-stream (IncompleteRead).
                        writer.write_eof()
                        raise ConnectionResetError("injected stream truncation")
                writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
                await writer.drain()
                sent += len(chunk)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, OSError):
            # Disconnect mid-stream: stop feeding this consumer.  The
            # subscription dies with the queue; the job runs on.
            pass
        finally:
            stream_close = getattr(response.stream, "aclose", None)
            if stream_close is not None:
                try:
                    await stream_close()
                except Exception:  # repro: allow[REPRO-EXC] - generator teardown
                    pass
        return response.status, sent

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str,
        headers: dict | None = None,
    ) -> tuple[int, int]:
        return await self._send_response(
            writer,
            Response(status, {"error": message, "status": status}, headers or {}),
        )

    # ------------------------------------------------------------------
    def _log_access(
        self,
        request: Request | None,
        status: int,
        sent: int,
        duration: float,
        extra: dict | None = None,
    ) -> None:
        record = {
            "method": request.method if request else "-",
            "path": request.path if request else "-",
            "status": status,
            "api_key": request.api_key if request else "-",
            "bytes": sent,
            "duration_ms": round(duration * 1000, 3),
        }
        if extra:
            # Route-provided context: job id and the dispatcher lane the job
            # routed to (``job_lane``), so per-lane behaviour is greppable.
            record.update(extra)
        access_log.info(json.dumps(record, default=str))

    def server_stats(self) -> dict:
        return {
            "host": self.host,
            "port": self.port,
            "uptime_seconds": (
                round(time.monotonic() - self.started_at, 3)
                if self.started_at is not None
                else 0.0
            ),
            "requests_served": self.requests_served,
            "connections_open": self.connections_open,
            "draining": self.drain.draining,
        }
