"""``repro.analysis`` — project-specific static analysis for the repro codebase.

The verification engine's correctness rests on conventions no generic
linter knows about: lane-affine solver sessions, lock-guarded shared
registries, a non-blocking asyncio front door, and a multi-layer stats
chain whose key sets must stay in sync.  This package mechanizes those
conventions as AST-level rules (stdlib :mod:`ast` only, no third-party
dependencies) behind a small rule engine with per-line suppression
comments::

    some_call()  # repro: allow[REPRO-LOCK] reason the exception is sound

Run it as ``python -m repro analyze src/`` (exits nonzero on findings)
or programmatically through :class:`Analyzer`.
"""

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.engine import Analyzer, main
from repro.analysis.rules import DEFAULT_RULES

__all__ = [
    "Analyzer",
    "DEFAULT_RULES",
    "Finding",
    "Rule",
    "SourceFile",
    "main",
]
