"""The analyzer driver and its command-line front end.

``Analyzer`` walks the given paths for ``.py`` files, runs every per-file
rule on each file and every project rule on the whole set, then drops
findings waived by ``# repro: allow[RULE-ID]`` comments.  Unparsable
files are reported as ``REPRO-PARSE`` findings rather than crashing the
run.  ``main`` is what ``python -m repro analyze`` dispatches to: exit 0
when clean, 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules import DEFAULT_RULES

__all__ = ["Analyzer", "iter_python_files", "main"]

PARSE_RULE_ID = "REPRO-PARSE"


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            seen.setdefault(candidate, None)
    return list(seen)


class Analyzer:
    """Run a rule set over a file tree and collect findings."""

    def __init__(self, rules: Sequence[Rule] | None = None):
        self.rules = tuple(DEFAULT_RULES if rules is None else rules)

    def analyze_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        files: list[SourceFile] = []
        findings: list[Finding] = []
        for path in iter_python_files(paths):
            try:
                files.append(SourceFile(path))
            except (SyntaxError, ValueError, OSError) as error:
                line = getattr(error, "lineno", None) or 1
                findings.append(Finding(
                    path=str(path), line=line, col=1,
                    rule_id=PARSE_RULE_ID, message=str(error),
                ))
        findings.extend(self.analyze_files(files))
        return sorted(findings)

    def analyze_files(self, files: list[SourceFile]) -> list[Finding]:
        by_path = {str(source.path): source for source in files}
        findings: list[Finding] = []
        for source in files:
            for rule in self.rules:
                findings.extend(rule.check_file(source))
        for rule in self.rules:
            findings.extend(rule.check_project(files))
        kept = []
        for finding in findings:
            source = by_path.get(finding.path)
            if source is not None and source.is_suppressed(finding):
                continue
            kept.append(finding)
        return sorted(kept)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Project-specific static analysis (repro.analysis).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    findings = Analyzer().analyze_paths(args.paths)
    if args.json:
        print(json.dumps([finding.to_dict() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        count = len(findings)
        if count:
            print(f"{count} finding{'s' if count != 1 else ''}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
