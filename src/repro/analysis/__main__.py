"""``python -m repro.analysis`` — direct entry to the analyzer CLI."""

import sys

from repro.analysis.engine import main

sys.exit(main())
