"""Core model of the analyzer: findings, sources, rules, suppressions.

A :class:`SourceFile` wraps one parsed Python file together with its
suppression table; a :class:`Rule` inspects files (or the whole file set,
for cross-module contracts) and yields :class:`Finding` objects.  The
:class:`~repro.analysis.engine.Analyzer` drives the rules and filters
findings a ``# repro: allow[RULE-ID]`` comment waives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["Finding", "Rule", "SourceFile", "attr_chain", "parse_suppressions"]

#: ``# repro: allow[RULE-ID]`` (optionally ``allow[A,B]``), with free-form
#: reason text after the bracket.  ``allow[*]`` waives every rule.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9*,\- ]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


def parse_suppressions(lines: Iterable[str]) -> dict[int, set[str]]:
    """Map line number -> waived rule ids for ``# repro: allow[...]`` comments.

    A suppression on a code line covers findings on that line; a comment
    standing alone on its own line covers the next line instead (useful
    above a ``with`` statement or a decorated definition).
    """
    table: dict[int, set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        target = number + 1 if text.lstrip().startswith("#") else number
        table.setdefault(target, set()).update(rules)
    return table


class SourceFile:
    """One parsed Python source file plus its suppression table."""

    def __init__(self, path: str | Path, text: str | None = None):
        self.path = Path(path)
        self.text = self.path.read_text() if text is None else text
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(self.path))
        self.suppressions = parse_suppressions(self.lines)

    @property
    def posix(self) -> str:
        """The path with forward slashes — what path-scoped rules match on."""
        return self.path.as_posix()

    def is_suppressed(self, finding: Finding) -> bool:
        waived = self.suppressions.get(finding.line)
        if not waived:
            return False
        return finding.rule_id in waived or "*" in waived

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """Base class for analyzer rules.

    Per-file rules override :meth:`check_file`; cross-module contract rules
    (key-set diffs between layers) override :meth:`check_project`, which
    sees every analyzed file at once.  A rule may implement both.
    """

    rule_id: str = ""
    description: str = ""

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        return iter(())


def attr_chain(node: ast.AST) -> str | None:
    """Dotted name for an attribute chain (``a.b.c``), else None.

    Calls inside the chain break it (``a().b`` has no static root), which
    is the conservative behaviour the rules want.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
