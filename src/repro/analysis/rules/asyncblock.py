"""REPRO-ASYNC — blocking calls inside ``async def`` bodies.

The service is a single-event-loop asyncio server: one blocking call in a
coroutine stalls every connection, heartbeat and drain timer at once.
Blocking work must be pushed through ``loop.run_in_executor`` (passing
the callable, not calling it) — the drain coordinator's
``run_in_executor(None, job.wait, remaining)`` is the idiom.

Flagged inside coroutine bodies (nested *sync* ``def``s are separate
scopes and exempt — they run wherever they are called):

* ``time.sleep`` (use ``asyncio.sleep``)
* anything rooted at ``sqlite3`` (the clause store is synchronous by
  design; keep it off the loop)
* blocking socket construction (``socket.socket``/``create_connection``)
* the ``open`` builtin and ``os.system``/``subprocess.*``
* ``ServiceClient`` — the *blocking* HTTP client; a coroutine talking to
  the service should use the asyncio primitives directly
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, attr_chain

__all__ = ["BlockingInAsyncRule"]

BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "os.system",
    "os.popen",
    "urllib.request.urlopen",
})

BLOCKING_CALL_PREFIXES = ("sqlite3.", "subprocess.")

BLOCKING_BUILTINS = frozenset({"open", "input"})

BLOCKING_NAMES = frozenset({"ServiceClient"})


class BlockingInAsyncRule(Rule):
    rule_id = "REPRO-ASYNC"
    description = "blocking call inside an 'async def' body (stalls the event loop)"

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for child in node.body:
                    yield from self._scan(source, child)

    def _scan(self, source: SourceFile, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            return  # sync scope: runs where it is *called*, not here
        if isinstance(node, ast.AsyncFunctionDef):
            # ast.walk at the top level already visits nested coroutines.
            return
        yield from self._check(source, node)
        for child in ast.iter_child_nodes(node):
            yield from self._scan(source, child)

    def _check(self, source: SourceFile, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is not None:
                if chain in BLOCKING_CALLS or chain.startswith(BLOCKING_CALL_PREFIXES):
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"'{chain}(...)' blocks the event loop; use asyncio "
                        "primitives or loop.run_in_executor",
                    )
                    return
            if isinstance(node.func, ast.Name) and node.func.id in BLOCKING_BUILTINS:
                yield source.finding(
                    self.rule_id,
                    node,
                    f"builtin '{node.func.id}(...)' is blocking file/terminal "
                    "I/O; offload it with loop.run_in_executor",
                )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in BLOCKING_NAMES:
                yield source.finding(
                    self.rule_id,
                    node,
                    f"'{node.id}' is the blocking client; a coroutine must "
                    "not issue synchronous HTTP on the loop",
                )
