"""REPRO-EVENT — event dataclasses drifting from the NDJSON schema contract.

``repro.api.events`` carries the schema_version 1.0 contract twice: once
as the event dataclasses that serialize, and once as the declarative
``EVENT_SCHEMAS`` table the NDJSON validator checks streams against.
The two must describe the same payloads — a field added to a dataclass
but not the table makes the validator reject every stream that carries
it, and a table entry with no backing field can never be produced.

The rule finds the ``EVENT_SCHEMAS`` dict literal and every dataclass
declaring a ``TYPE`` ClassVar, then diffs field names against schema
keys in both directions (base ``Event`` bookkeeping — ``job_id``/``seq``
— lives on the base class, so subclass bodies are exactly the payload).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["EventSchemaRule"]

SCHEMA_TABLE = "EVENT_SCHEMAS"
BASE_CLASS = "Event"


def _is_classvar(annotation: ast.AST) -> bool:
    return "ClassVar" in ast.unparse(annotation)


def _payload_fields(cls: ast.ClassDef) -> list[str]:
    fields = []
    for item in cls.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and not item.target.id.startswith("_")
            and not _is_classvar(item.annotation)
        ):
            fields.append(item.target.id)
    return fields


def _declared_type(cls: ast.ClassDef) -> str | None:
    """The value of the class's ``TYPE: ClassVar[str] = "..."`` member."""
    for item in cls.body:
        target = None
        value = None
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            target, value = item.target.id, item.value
        elif isinstance(item, ast.Assign) and len(item.targets) == 1:
            if isinstance(item.targets[0], ast.Name):
                target, value = item.targets[0].id, item.value
        if target == "TYPE" and isinstance(value, ast.Constant):
            if isinstance(value.value, str):
                return value.value
    return None


def _schema_tables(source: SourceFile) -> Iterator[tuple[ast.AST, dict[str, set[str]]]]:
    for node in ast.walk(source.tree):
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and target.id == SCHEMA_TABLE
            and isinstance(value, ast.Dict)
        ):
            table: dict[str, set[str]] = {}
            for key, inner in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(inner, ast.Dict)
                ):
                    table[key.value] = {
                        k.value
                        for k in inner.keys
                        if isinstance(k, ast.Constant) and isinstance(k.value, str)
                    }
            yield node, table


class EventSchemaRule(Rule):
    rule_id = "REPRO-EVENT"
    description = (
        "event dataclass fields out of sync with the EVENT_SCHEMAS validator table"
    )

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        for source in files:
            for table_node, table in _schema_tables(source):
                yield from self._check_module(source, table_node, table)

    def _check_module(
        self,
        source: SourceFile,
        table_node: ast.AST,
        table: dict[str, set[str]],
    ) -> Iterator[Finding]:
        seen_types = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef) or node.name == BASE_CLASS:
                continue
            declared = _declared_type(node)
            if declared is None:
                continue
            seen_types.add(declared)
            fields = _payload_fields(node)
            schema = table.get(declared)
            if schema is None:
                yield source.finding(
                    self.rule_id,
                    node,
                    f"event type '{declared}' has no {SCHEMA_TABLE} entry — "
                    "the validator would reject every stream carrying it",
                )
                continue
            for name in fields:
                if name not in schema:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"'{node.name}.{name}' is serialized but absent from "
                        f"{SCHEMA_TABLE}['{declared}']",
                    )
            for name in sorted(schema - set(fields)):
                yield source.finding(
                    self.rule_id,
                    node,
                    f"{SCHEMA_TABLE}['{declared}'] declares '{name}' but "
                    f"'{node.name}' has no such field — it can never be produced",
                )
        for declared in sorted(set(table) - seen_types):
            yield source.finding(
                self.rule_id,
                table_node,
                f"{SCHEMA_TABLE} declares type '{declared}' but no event "
                "dataclass in this module serializes it",
            )
