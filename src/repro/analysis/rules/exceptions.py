"""REPRO-EXC — broad exception handlers that swallow failures silently.

The resilience layers (service, store, job API) are exactly the places
where a silently-swallowed exception turns into an undebuggable hang: a
lane that dies without a log line, a store failure that never trips the
circuit breaker, a drain that waits forever on a job nobody failed.  In
those packages a ``except Exception`` / bare ``except`` handler must do
at least one visible thing with the failure:

* re-raise (``raise`` anywhere in the handler body), or
* log it (a ``.debug/.info/.warning/.error/.exception/.critical/.log``
  call), or
* count it (an augmented assignment — the ``storage_errors += 1`` /
  ``lane_crashes += 1`` idiom the stats surfaces report).

Handlers for *specific* exception types are not flagged — naming the
type is already a statement about what can happen there.  Deliberate
swallows (finalizer teardown, best-effort cleanup) carry a
``# repro: allow[REPRO-EXC] - why`` annotation.

Scope: ``repro/service/``, ``repro/store/`` and ``repro/api/`` inside
the package; files outside the package (analyzer fixtures, scripts) are
always checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["SilentExceptRule"]

#: broad types whose handlers must be visibly handled.
BROAD_TYPES = frozenset({"Exception", "BaseException"})

#: logger-style method names whose call counts as "logged it".
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

#: package paths the rule polices.  Everything else inside ``repro/`` is
#: out of scope (analysis, smt, ...); everything outside the package —
#: fixtures and scripts — is checked unconditionally.
SCOPED_PATHS = ("repro/service/", "repro/store/", "repro/api/")


def _is_broad(annotation: ast.expr | None) -> bool:
    """True when the handler catches everything (bare / Exception / ...)."""
    if annotation is None:  # bare except
        return True
    if isinstance(annotation, ast.Name):
        return annotation.id in BROAD_TYPES
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    return False


def _is_log_call(node: ast.Call) -> bool:
    func = node.func
    return isinstance(func, ast.Attribute) and func.attr in LOG_METHODS


def _handled_visibly(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            return True
        if isinstance(node, ast.Call) and _is_log_call(node):
            return True
    return False


class SilentExceptRule(Rule):
    rule_id = "REPRO-EXC"
    description = (
        "broad except handler in service/store/api that neither re-raises, "
        "logs, nor counts the failure"
    )

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        posix = source.posix
        if "repro/" in posix and not any(p in posix for p in SCOPED_PATHS):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _handled_visibly(node):
                continue
            caught = "bare except" if node.type is None else "except Exception"
            yield source.finding(
                self.rule_id,
                node,
                f"{caught} swallows the failure: re-raise, log, or count "
                "it (or annotate a deliberate swallow with "
                "'# repro: allow[REPRO-EXC] - why')",
            )
