"""The project rule set. Add new rules here and in the README table."""

from repro.analysis.rules.affinity import SessionAffinityRule
from repro.analysis.rules.asyncblock import BlockingInAsyncRule
from repro.analysis.rules.eventschema import EventSchemaRule
from repro.analysis.rules.exceptions import SilentExceptRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.statschain import StatsChainRule

__all__ = [
    "DEFAULT_RULES",
    "BlockingInAsyncRule",
    "EventSchemaRule",
    "LockDisciplineRule",
    "SessionAffinityRule",
    "SilentExceptRule",
    "StatsChainRule",
]

DEFAULT_RULES = (
    LockDisciplineRule(),
    SessionAffinityRule(),
    BlockingInAsyncRule(),
    StatsChainRule(),
    EventSchemaRule(),
    SilentExceptRule(),
)
