"""REPRO-LOCK — registered shared structures mutated outside their lock.

The engine's shared registries (compile cache, pool/context registries,
admission counters) are each guarded by a named lock; every mutation must
happen lexically inside ``with self.<lock>``.  The registry below names
the (class, attributes, lock) triples the project has declared shared —
this is the machine-readable form of the comments in ``Engine.__init__``
and the ``ResourceManager`` docstring.

``__init__`` is exempt (the object is not shared until construction
returns).  Reads are not flagged: several hot paths read counters
unlocked on purpose, and flagging reads would bury the real signal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["GUARDED_CLASSES", "LockDisciplineRule"]

#: class name -> list of (guarded attribute names, lock attribute name).
GUARDED_CLASSES: dict[str, list[tuple[frozenset[str], str]]] = {
    "Engine": [
        (frozenset({"_cache", "_hits", "_misses", "_uncacheable"}), "_cache_lock"),
        (frozenset({"_job_counter", "_executor"}), "_submit_lock"),
    ],
    "PoolManager": [
        (frozenset({"_sessions", "_busy"}), "_lock"),
    ],
    "ResourceManager": [
        (
            frozenset({
                "_contexts", "_task_sessions", "_shard_assignments",
                "_keys_per_lane", "_lane_lru", "_retired",
            }),
            "_lock",
        ),
    ],
    "AdmissionController": [
        (frozenset({"_buckets", "_inflight", "_pending"}), "_lock"),
    ],
}

#: method names whose call on a guarded attribute mutates it in place.
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "popleft", "remove", "reverse",
    "setdefault", "sort", "update",
})

#: methods that may run before the object is shared.
EXEMPT_METHODS = frozenset({"__init__"})


def _self_attr(node: ast.AST) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class LockDisciplineRule(Rule):
    rule_id = "REPRO-LOCK"
    description = (
        "mutation of a registered shared structure outside its 'with <lock>' block"
    )

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name in GUARDED_CLASSES:
                yield from self._check_class(source, node)

    def _check_class(self, source: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
        guards = GUARDED_CLASSES[cls.name]
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in EXEMPT_METHODS:
                continue
            for child in item.body:
                yield from self._visit(source, cls.name, guards, child, frozenset())

    def _visit(
        self,
        source: SourceFile,
        cls_name: str,
        guards: list[tuple[frozenset[str], str]],
        node: ast.AST,
        held: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function may run later, on another thread, with no
            # lock held — its body starts from a clean slate.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                yield from self._visit(source, cls_name, guards, child, frozenset())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for with_item in node.items:
                expr = with_item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                attr = _self_attr(expr)
                if attr is not None:
                    acquired.add(attr)
            for child in node.body:
                yield from self._visit(source, cls_name, guards, child, frozenset(acquired))
            return

        yield from self._check_node(source, cls_name, guards, node, held)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(source, cls_name, guards, child, held)

    def _check_node(
        self,
        source: SourceFile,
        cls_name: str,
        guards: list[tuple[frozenset[str], str]],
        node: ast.AST,
        held: frozenset[str],
    ) -> Iterator[Finding]:
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if not (isinstance(node, ast.AnnAssign) and node.value is None):
                targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            for leaf in self._unpack(target):
                attr = self._mutated_attr(leaf)
                if attr is not None:
                    yield from self._flag(source, cls_name, guards, leaf, attr, held)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = _self_attr(node.func.value)
            if attr is not None and node.func.attr in MUTATING_METHODS:
                yield from self._flag(source, cls_name, guards, node, attr, held)

    @staticmethod
    def _unpack(target: ast.AST) -> Iterator[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from LockDisciplineRule._unpack(element)
        else:
            yield target

    @staticmethod
    def _mutated_attr(target: ast.AST) -> str | None:
        """Attribute name when ``target`` rebinds or indexes ``self.<attr>``."""
        if isinstance(target, ast.Subscript):
            return _self_attr(target.value)
        return _self_attr(target)

    def _flag(
        self,
        source: SourceFile,
        cls_name: str,
        guards: list[tuple[frozenset[str], str]],
        node: ast.AST,
        attr: str,
        held: frozenset[str],
    ) -> Iterator[Finding]:
        for guarded, lock in guards:
            if attr in guarded and lock not in held:
                yield source.finding(
                    self.rule_id,
                    node,
                    f"'{cls_name}.{attr}' mutated outside 'with self.{lock}'",
                )
