"""REPRO-STATS — a solver counter missing from a downstream stats layer.

Every new solver counter travels five layers before a user sees it:

    SolverResult (smt/solver.py)       the solver's own dataclass
      -> SMTCheck (smt/interface.py)   per-check snapshot
      -> SolveSession.stats()          cumulative session dict
      -> SolverStats (api/events.py)   the NDJSON event
      -> every emit(SolverStats(...))  call site threading the values

PRs 5–8 each rewired this chain by hand and a missed hop surfaces only
as a silently-absent key.  This rule diffs the key sets mechanically:
the *counters* are ``SolverResult``'s ``int = 0`` fields, and each
downstream layer must know every one of them.  Layers are located by
class name anywhere in the analyzed file set, so the rule works on the
real tree and on small test fixtures alike; absent layers are skipped
(analyzing a partial tree is not an error).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["StatsChainRule"]

SOURCE_CLASS = "SolverResult"
SNAPSHOT_CLASS = "SMTCheck"
EVENT_CLASS = "SolverStats"
SESSION_CLASS = "SolveSession"


def _is_classvar(annotation: ast.AST) -> bool:
    return "ClassVar" in ast.unparse(annotation)


def _dataclass_fields(cls: ast.ClassDef) -> list[str]:
    fields = []
    for item in cls.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and not item.target.id.startswith("_")
            and not _is_classvar(item.annotation)
        ):
            fields.append(item.target.id)
    return fields


def _counter_fields(cls: ast.ClassDef) -> list[str]:
    """``int``-annotated fields defaulting to 0 — the accumulating counters."""
    counters = []
    for item in cls.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and isinstance(item.annotation, ast.Name)
            and item.annotation.id == "int"
            and isinstance(item.value, ast.Constant)
            and item.value.value == 0
        ):
            counters.append(item.target.id)
    return counters


def _find_class(files: list[SourceFile], name: str) -> tuple[SourceFile, ast.ClassDef] | None:
    for source in files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return source, node
    return None


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _string_constants(node: ast.AST) -> set[str]:
    return {
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


class StatsChainRule(Rule):
    rule_id = "REPRO-STATS"
    description = (
        "solver counter emitted at one stats-chain layer but absent downstream"
    )

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        found = _find_class(files, SOURCE_CLASS)
        if found is None:
            return
        _, result_cls = found
        counters = _counter_fields(result_cls)
        if not counters:
            return

        for layer_name in (SNAPSHOT_CLASS, EVENT_CLASS):
            layer = _find_class(files, layer_name)
            if layer is None:
                continue
            source, cls = layer
            known = set(_dataclass_fields(cls))
            for counter in counters:
                if counter not in known:
                    yield source.finding(
                        self.rule_id,
                        cls,
                        f"counter '{counter}' ({SOURCE_CLASS}) is missing from "
                        f"'{layer_name}' — the stats chain drops it here",
                    )

        session = _find_class(files, SESSION_CLASS)
        if session is not None:
            source, cls = session
            stats = _method(cls, "stats")
            if stats is not None:
                keys = _string_constants(stats)
                for counter in counters:
                    if counter not in keys:
                        yield source.finding(
                            self.rule_id,
                            stats,
                            f"counter '{counter}' ({SOURCE_CLASS}) never appears "
                            f"as a key in '{SESSION_CLASS}.stats()'",
                        )

        # Emit sites: every keyword-style SolverStats(...) constructor call
        # must thread all counters (a missed keyword silently zeroes one).
        for source in files:
            for node in ast.walk(source.tree):
                if not (isinstance(node, ast.Call) and node.keywords):
                    continue
                callee = node.func
                name = callee.attr if isinstance(callee, ast.Attribute) else (
                    callee.id if isinstance(callee, ast.Name) else None
                )
                if name != EVENT_CLASS:
                    continue
                if any(keyword.arg is None for keyword in node.keywords):
                    continue  # **kwargs: not statically checkable
                passed = {keyword.arg for keyword in node.keywords}
                for counter in counters:
                    if counter not in passed:
                        yield source.finding(
                            self.rule_id,
                            node,
                            f"'{EVENT_CLASS}(...)' emit site does not pass "
                            f"counter '{counter}' — it would serialize as 0",
                        )
