"""REPRO-SESSION — solver sessions touched outside lane-mediated modules.

Concurrency safety in this codebase is lane affinity, not locking: a
``SolveSession`` (or the ``CodeContext`` that owns one) may only be
driven through the resource/engine/job layer, which routes every task to
its shard's lane and serializes on the lane lock.  Any other module
calling session methods directly — importing the classes, constructing
them, or reaching through a ``.session`` attribute — bypasses that
routing and can race a live solve.

The allowlist names the modules that ARE the mediation layer (plus the
``smt`` package that defines the types and the package ``__init__``
re-exports).  Tests are not analyzed by the CI job, so single-threaded
test usage stays unrestricted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["SESSION_TYPES", "SessionAffinityRule"]

SESSION_TYPES = frozenset({"SolveSession", "CodeContext", "IncrementalSplitSession"})

#: posix path suffixes/fragments of modules allowed to touch sessions.
ALLOWED_PATHS = (
    "repro/smt/",
    "repro/api/resources.py",
    "repro/api/engine.py",
    "repro/api/backends.py",
    "repro/api/jobs.py",
    "repro/api/__init__.py",
    "repro/analysis/",
)


class SessionAffinityRule(Rule):
    rule_id = "REPRO-SESSION"
    description = (
        "direct SolveSession/CodeContext use outside the lane-mediated modules"
    )

    def check_file(self, source: SourceFile) -> Iterator[Finding]:
        posix = source.posix
        if any(fragment in posix for fragment in ALLOWED_PATHS):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in SESSION_TYPES:
                        yield source.finding(
                            self.rule_id,
                            node,
                            f"imports '{alias.name}': solver sessions are "
                            "lane-affine; go through Engine.run/submit",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in SESSION_TYPES:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"constructs '{node.func.id}' directly; sessions must "
                        "be created and driven by the resource layer",
                    )
            elif isinstance(node, ast.Attribute):
                # x.session.<anything> — reaching through a context's live
                # session from an unmediated module.
                value = node.value
                if isinstance(value, ast.Attribute) and value.attr == "session":
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"reaches through '.session.{node.attr}'; only the "
                        "lane that owns the context may drive its session",
                    )
