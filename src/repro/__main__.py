"""Module entry point: ``python -m repro`` dispatches to the task-API CLI."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
