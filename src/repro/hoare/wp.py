"""The weakest-(liberal-)precondition calculator implementing Fig. 3.

``weakest_precondition`` walks a loop-free program backwards and applies the
backward rules of the proof system:

* (Skip), (Seq) — structural;
* (Assign) — substitution of classical variables, including inside the
  symbolic phases of Pauli expressions;
* (U-X) ... (U-iSWAP), (U-T) — the gate substitutions, realised as backward
  conjugation of Pauli expressions;
* derived rules for ``[b] q *= U`` with Pauli ``U`` — a conditional phase
  flip on the anti-commuting atoms;
* (Meas) — ``(P ∧ A[0/x]) ∨ (¬P ∧ A[1/x])`` with ``¬P`` the flipped-phase
  atom;
* (Init) — ``(Z_i ∧ A) ∨ (-Z_i ∧ A[-Y_i/Y_i, -Z_i/Z_i])``;
* (If) — ``(¬b ∧ A0) ∨ (b ∧ A1)``.

While loops are rejected (the logic needs a user-provided invariant; the QEC
programs of the evaluation are loop-free), matching Theorem A.11's scope.
"""

from __future__ import annotations

from repro.classical.expr import BoolConst, IntConst, Not, UFBool, BoolVar
from repro.classical.parity import ParityExpr
from repro.lang.ast import (
    Assign,
    AssignDecoder,
    ConditionalGate,
    ConditionalPauli,
    If,
    InitQubit,
    Measure,
    Seq,
    Skip,
    Statement,
    Unitary,
    While,
)
from repro.logic.assertion import (
    AndAssertion,
    Assertion,
    BoolAssertion,
    OrAssertion,
    PauliAssertion,
    pauli_atom,
)
from repro.pauli.expr import PauliExpr
from repro.pauli.pauli import PauliOperator

__all__ = ["weakest_precondition", "decoder_output_expr"]


def decoder_output_expr(function: str, output_index: int, arguments: tuple[str, ...]) -> UFBool:
    """The uninterpreted expression standing for output ``i`` of a decoder call."""
    return UFBool(f"{function}[{output_index}]", tuple(BoolVar(a) for a in arguments))


def weakest_precondition(program: Statement, postcondition: Assertion) -> Assertion:
    """The weakest liberal precondition of a loop-free program."""
    if isinstance(program, Skip):
        return postcondition
    if isinstance(program, Seq):
        assertion = postcondition
        for statement in reversed(program.statements):
            assertion = weakest_precondition(statement, assertion)
        return assertion
    if isinstance(program, Unitary):
        return postcondition.apply_gate(program.gate, program.qubits, "backward")
    if isinstance(program, ConditionalPauli):
        condition = ParityExpr.from_bool_expr(program.condition)
        return postcondition.apply_conditional_pauli(program.qubit, program.pauli, condition)
    if isinstance(program, ConditionalGate):
        # The general (If) rule: (¬b ∧ A) ∨ (b ∧ A[U-substitution]).
        transformed = postcondition.apply_gate(program.gate, program.qubits, "backward")
        return OrAssertion(
            (
                AndAssertion((BoolAssertion(Not(program.condition)), postcondition)),
                AndAssertion((BoolAssertion(program.condition), transformed)),
            )
        )
    if isinstance(program, Assign):
        return postcondition.substitute_classical({program.name: program.expr})
    if isinstance(program, AssignDecoder):
        mapping = {
            target: decoder_output_expr(program.function, index + 1, program.arguments)
            for index, target in enumerate(program.targets)
        }
        return postcondition.substitute_classical(mapping)
    if isinstance(program, Measure):
        zero_branch = postcondition.substitute_classical({program.target: BoolConst(False)})
        one_branch = postcondition.substitute_classical({program.target: BoolConst(True)})
        atom = PauliAssertion(PauliExpr.atom(program.observable, program.phase))
        return OrAssertion(
            (
                AndAssertion((atom, zero_branch)),
                AndAssertion((atom.negated(), one_branch)),
            )
        )
    if isinstance(program, InitQubit):
        num_qubits = _infer_num_qubits(postcondition)
        z_atom = pauli_atom(PauliOperator.from_sparse(num_qubits, {program.qubit: "Z"}))
        flipped = postcondition.apply_conditional_pauli(
            program.qubit, "X", ParityExpr.one()
        )
        return OrAssertion(
            (
                AndAssertion((z_atom, postcondition)),
                AndAssertion((z_atom.negated(), flipped)),
            )
        )
    if isinstance(program, If):
        then_wp = weakest_precondition(program.then_branch, postcondition)
        else_wp = weakest_precondition(program.else_branch, postcondition)
        return OrAssertion(
            (
                AndAssertion((BoolAssertion(Not(program.condition)), else_wp)),
                AndAssertion((BoolAssertion(program.condition), then_wp)),
            )
        )
    if isinstance(program, While):
        raise NotImplementedError(
            "while loops need a user-provided invariant; the QEC programs of the "
            "evaluation are loop-free (Theorem A.11)"
        )
    raise TypeError(f"unknown statement type {type(program).__name__}")


def _infer_num_qubits(assertion: Assertion) -> int:
    """Find the system size from the first Pauli atom of an assertion."""
    if isinstance(assertion, PauliAssertion):
        return assertion.expr.num_qubits
    if isinstance(assertion, (AndAssertion, OrAssertion)):
        for part in assertion.parts:
            try:
                return _infer_num_qubits(part)
            except ValueError:
                continue
    if hasattr(assertion, "operand"):
        return _infer_num_qubits(assertion.operand)
    if hasattr(assertion, "antecedent"):
        try:
            return _infer_num_qubits(assertion.antecedent)
        except ValueError:
            return _infer_num_qubits(assertion.consequent)
    raise ValueError("cannot infer the number of qubits from a purely classical assertion")
