"""Hoare triples (correctness formulas) for QEC programs (Definition 4.1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classical.expr import BoolConst, BoolExpr
from repro.lang.ast import Statement
from repro.logic.assertion import Assertion

__all__ = ["HoareTriple"]


@dataclass(frozen=True)
class HoareTriple:
    """``{precondition ∧ classical_constraint} program {postcondition}``.

    The classical constraint ``P_c`` (for example ``sum of error indicators
    <= 1``) is kept separate from the quantum part of the precondition
    because the verification-condition reduction treats it as the antecedent
    of the final classical entailment (Section 5.1).
    """

    precondition: Assertion
    program: Statement
    postcondition: Assertion
    classical_constraint: BoolExpr = field(default_factory=lambda: BoolConst(True))
    name: str = "correctness formula"

    def __repr__(self) -> str:
        return (
            f"HoareTriple({self.name}: "
            f"{{{self.classical_constraint!r} ∧ {self.precondition!r}}} ... "
            f"{{{self.postcondition!r}}})"
        )
