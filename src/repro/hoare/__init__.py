"""Correctness formulas and the proof system of Fig. 3."""

from repro.hoare.triple import HoareTriple
from repro.hoare.wp import weakest_precondition

__all__ = ["HoareTriple", "weakest_precondition"]
