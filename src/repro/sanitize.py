"""Opt-in runtime sanitizers for the project's concurrency contracts.

``REPRO_SANITIZE=1`` arms cheap dynamic assertions that complement the
static rules in :mod:`repro.analysis`:

* **single-entry guards** on lane-affine objects (``SolveSession.check``,
  ``CodeContext`` entry points): lane affinity promises each session is
  driven by one thread *at a time* (sessions legally migrate between a
  caller thread and a lane thread across jobs — the invariant is no
  concurrent entry, not a fixed owner);
* **lock-held checks** where a lock requirement crosses a function
  boundary and the static rule cannot see it (a lane driving a session
  must hold its lane lock);
* an **event-loop watchdog** in the service: a daemon thread heartbeats
  the loop and counts stalls longer than the threshold — a blocked loop
  is exactly the bug class REPRO-ASYNC guards against statically.

When the environment variable is unset every hook collapses to a
``None`` check (guard factories return ``None``), so the production hot
path pays one attribute load and nothing else.
"""

from __future__ import annotations

import functools
import logging
import os
import threading

__all__ = [
    "ENABLED",
    "EntryGuard",
    "LoopWatchdog",
    "SanitizerError",
    "assert_lock_held",
    "enabled",
    "entry_guarded",
    "new_entry_guard",
    "new_loop_watchdog",
]

log = logging.getLogger("repro.sanitize")

ENABLED = os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
    "", "0", "false", "no", "off",
)


def enabled() -> bool:
    """The live switch — module attribute so tests can monkeypatch it."""
    return ENABLED


class SanitizerError(AssertionError):
    """A concurrency contract was violated at runtime."""


class EntryGuard:
    """Detects concurrent entry into a lane-affine object.

    Reentrant for the owning thread (a context's entry point may call the
    session's); raises :class:`SanitizerError` when a second thread enters
    while the first is still inside — the race lane affinity must prevent.
    """

    __slots__ = ("label", "_lock", "_owner", "_depth")

    def __init__(self, label: str):
        self.label = label
        self._lock = threading.Lock()
        self._owner: int | None = None
        self._depth = 0

    def __enter__(self) -> "EntryGuard":
        me = threading.get_ident()
        with self._lock:
            if self._owner is None or self._owner == me:
                self._owner = me
                self._depth += 1
                return self
            other = self._owner
        raise SanitizerError(
            f"sanitizer: concurrent entry into {self.label}: thread {me} "
            f"entered while thread {other} is still inside — lane affinity "
            "violated (two lanes driving one session?)"
        )

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._depth -= 1
            if self._depth <= 0:
                self._owner = None
                self._depth = 0


def new_entry_guard(label: str) -> EntryGuard | None:
    """An :class:`EntryGuard` when sanitizing, else None (zero-cost hook)."""
    return EntryGuard(label) if enabled() else None


def entry_guarded(method):
    """Wrap an instance method in the object's ``_entry_guard`` (when armed).

    The decorated class creates ``self._entry_guard`` via
    :func:`new_entry_guard` in ``__init__``; with sanitizing off the guard
    is None and the wrapper is a single extra call.
    """
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        guard = self._entry_guard
        if guard is None:
            return method(self, *args, **kwargs)
        with guard:
            return method(self, *args, **kwargs)
    return wrapper


def assert_lock_held(lock, what: str) -> None:
    """Raise unless ``lock`` is held (by us, for RLocks; by anyone, for Locks).

    No-op when sanitizing is off, so call sites can invoke it
    unconditionally on cold paths.
    """
    if not enabled():
        return
    owned = getattr(lock, "_is_owned", None)
    held = owned() if callable(owned) else lock.locked()
    if not held:
        raise SanitizerError(f"sanitizer: {what} requires {lock!r} to be held")


class LoopWatchdog:
    """Counts event-loop stalls: heartbeats posted from a daemon thread.

    Each beat schedules a callback with ``call_soon_threadsafe`` and waits
    ``threshold`` seconds for the loop to run it; a miss increments
    ``stalls`` and logs the offence.  Detection only — an exception cannot
    usefully be raised *into* a blocked loop from outside.
    """

    def __init__(self, loop, threshold: float = 1.0, interval: float = 0.25):
        self.loop = loop
        self.threshold = threshold
        self.interval = interval
        self.stalls = 0
        self.beats = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "LoopWatchdog":
        self._thread = threading.Thread(
            target=self._run, name="repro-sanitize-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.threshold + 1.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            beat = threading.Event()
            try:
                self.loop.call_soon_threadsafe(beat.set)
            except RuntimeError:  # loop closed under us: we're done
                return
            self.beats += 1
            if not beat.wait(self.threshold):
                self.stalls += 1
                log.warning(
                    "sanitizer: event loop blocked > %.2fs (stall #%d) — "
                    "some coroutine is doing synchronous work on the loop",
                    self.threshold, self.stalls,
                )


def new_loop_watchdog(loop, threshold: float = 1.0) -> LoopWatchdog | None:
    """A started :class:`LoopWatchdog` when sanitizing, else None."""
    if not enabled():
        return None
    return LoopWatchdog(loop, threshold=threshold).start()
