"""Operational semantics of QEC programs (Section 4.1, Fig. 2)."""

from repro.semantics.dense import DenseSimulator, GATE_MATRICES

__all__ = ["DenseSimulator", "GATE_MATRICES"]
