"""Dense-matrix operational semantics for classical-quantum programs.

This executes the transition rules of Fig. 2 literally on state vectors /
density operators, enumerating both branches of every measurement.  It is
exponential in the number of qubits and is used as the executable ground
truth against which the proof system (Fig. 3) is checked in the property
based soundness tests — the role the Coq development plays in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.classical.expr import evaluate
from repro.classical.memory import ClassicalMemory
from repro.lang.ast import (
    Assign,
    AssignDecoder,
    ConditionalGate,
    ConditionalPauli,
    If,
    InitQubit,
    Measure,
    Seq,
    Skip,
    Statement,
    Unitary,
    While,
)
from repro.pauli.pauli import PauliOperator

__all__ = ["DenseSimulator", "GATE_MATRICES"]

_SQRT2 = np.sqrt(2.0)
GATE_MATRICES: dict[str, np.ndarray] = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
    "H": np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2,
    "S": np.array([[1, 0], [0, 1j]], dtype=complex),
    "SDG": np.array([[1, 0], [0, -1j]], dtype=complex),
    "T": np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex),
    "TDG": np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex),
    "CNOT": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "CZ": np.diag([1, 1, 1, -1]).astype(complex),
    # The paper's iSWAP convention (matrix with -i entries).
    "ISWAP": np.array(
        [[1, 0, 0, 0], [0, 0, -1j, 0], [0, -1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}


class DenseSimulator:
    """Execute programs on explicit density operators.

    The output of :meth:`run` is a list of ``(memory, rho)`` pairs — the
    classical-quantum state as a map from classical memories to partial
    density operators, represented sparsely by its non-zero entries.
    """

    def __init__(self, num_qubits: int):
        if num_qubits > 12:
            raise ValueError("the dense simulator is meant for small systems only")
        self.num_qubits = num_qubits
        self.dim = 2 ** num_qubits

    # ------------------------------------------------------------------
    def initial_state(self, memory: ClassicalMemory | dict | None = None) -> list:
        """The singleton classical-quantum state ``(m, |0...0><0...0|)``."""
        rho = np.zeros((self.dim, self.dim), dtype=complex)
        rho[0, 0] = 1.0
        mem = memory if isinstance(memory, ClassicalMemory) else ClassicalMemory(memory or {})
        return [(mem, rho)]

    def state_from_vector(self, vector: np.ndarray, memory=None) -> list:
        vector = np.asarray(vector, dtype=complex).reshape(-1)
        rho = np.outer(vector, vector.conj())
        mem = memory if isinstance(memory, ClassicalMemory) else ClassicalMemory(memory or {})
        return [(mem, rho)]

    # ------------------------------------------------------------------
    def _lift(self, gate: str, qubits: tuple[int, ...]) -> np.ndarray:
        matrix = GATE_MATRICES[gate.upper()]
        if len(qubits) == 1:
            operators = [np.eye(2, dtype=complex)] * self.num_qubits
            operators[qubits[0]] = matrix
            full = operators[0]
            for op in operators[1:]:
                full = np.kron(full, op)
            return full
        # Two-qubit gate: build by summing over computational components.
        full = np.zeros((self.dim, self.dim), dtype=complex)
        control, target = qubits
        for a in range(2):
            for b in range(2):
                for c in range(2):
                    for d in range(2):
                        amplitude = matrix[2 * a + b, 2 * c + d]
                        if amplitude == 0:
                            continue
                        ops = [np.eye(2, dtype=complex)] * self.num_qubits
                        ops[control] = _ketbra(a, c)
                        ops[target] = _ketbra(b, d)
                        term = ops[0]
                        for op in ops[1:]:
                            term = np.kron(term, op)
                        full += amplitude * term
        return full

    # ------------------------------------------------------------------
    def run(self, program: Statement, state: list, max_loop_iterations: int = 64) -> list:
        """Execute a program on a classical-quantum state."""
        if isinstance(program, Skip):
            return state
        if isinstance(program, Seq):
            current = state
            for inner in program.statements:
                current = self.run(inner, current, max_loop_iterations)
            return current
        if isinstance(program, Unitary):
            unitary = self._lift(program.gate, program.qubits)
            return [(m, unitary @ rho @ unitary.conj().T) for m, rho in state]
        if isinstance(program, InitQubit):
            return [(m, self._reset(rho, program.qubit)) for m, rho in state]
        if isinstance(program, Assign):
            return [
                (m.update(program.name, evaluate(program.expr, m)), rho) for m, rho in state
            ]
        if isinstance(program, AssignDecoder):
            return self._run_decoder(program, state)
        if isinstance(program, ConditionalPauli):
            return self._run_conditional(
                Unitary(program.pauli, (program.qubit,)), program.condition, state
            )
        if isinstance(program, ConditionalGate):
            return self._run_conditional(
                Unitary(program.gate, program.qubits), program.condition, state
            )
        if isinstance(program, If):
            true_states = [(m, r) for m, r in state if evaluate(program.condition, m)]
            false_states = [(m, r) for m, r in state if not evaluate(program.condition, m)]
            result = self.run(program.then_branch, true_states, max_loop_iterations)
            result += self.run(program.else_branch, false_states, max_loop_iterations)
            return _merge(result)
        if isinstance(program, While):
            remaining = state
            finished: list = []
            for _ in range(max_loop_iterations):
                done = [(m, r) for m, r in remaining if not evaluate(program.condition, m)]
                busy = [(m, r) for m, r in remaining if evaluate(program.condition, m)]
                finished += done
                if not busy:
                    break
                remaining = self.run(program.body, busy, max_loop_iterations)
            return _merge(finished)
        if isinstance(program, Measure):
            return self._run_measure(program, state)
        raise TypeError(f"unknown statement {type(program).__name__}")

    # ------------------------------------------------------------------
    def _run_conditional(self, unitary: Unitary, condition, state: list) -> list:
        matrix = self._lift(unitary.gate, unitary.qubits)
        result = []
        for memory, rho in state:
            if evaluate(condition, memory):
                result.append((memory, matrix @ rho @ matrix.conj().T))
            else:
                result.append((memory, rho))
        return result

    def _run_decoder(self, statement: AssignDecoder, state: list) -> list:
        result = []
        for memory, rho in state:
            functions = memory.get("__functions__", {})
            if statement.function not in functions:
                raise KeyError(
                    f"the dense semantics needs an interpretation for decoder {statement.function!r}"
                )
            arguments = [bool(memory[a]) for a in statement.arguments]
            outputs = functions[statement.function](*arguments)
            assignments = {t: bool(v) for t, v in zip(statement.targets, outputs)}
            result.append((memory.update_many(assignments), rho))
        return result

    def _run_measure(self, statement: Measure, state: list) -> list:
        result = []
        for memory, rho in state:
            sign = (-1) ** statement.phase.evaluate(memory)
            observable = sign * statement.observable.to_matrix()
            plus = (np.eye(self.dim, dtype=complex) + observable) / 2
            minus = (np.eye(self.dim, dtype=complex) - observable) / 2
            for outcome, projector in ((False, plus), (True, minus)):
                branch = projector @ rho @ projector
                if np.trace(branch).real > 1e-12:
                    result.append((memory.update(statement.target, outcome), branch))
        return _merge(result)

    def _reset(self, rho: np.ndarray, qubit: int) -> np.ndarray:
        zero = PauliOperator.from_sparse(self.num_qubits, {qubit: "Z"}).to_matrix()
        plus = (np.eye(self.dim, dtype=complex) + zero) / 2
        minus = (np.eye(self.dim, dtype=complex) - zero) / 2
        flip = self._lift("X", (qubit,))
        return plus @ rho @ plus + flip @ (minus @ rho @ minus) @ flip.conj().T


def _ketbra(i: int, j: int) -> np.ndarray:
    matrix = np.zeros((2, 2), dtype=complex)
    matrix[i, j] = 1.0
    return matrix


def _merge(states: list) -> list:
    merged: dict = {}
    order = []
    for memory, rho in states:
        key = memory
        if key not in merged:
            merged[key] = rho.copy()
            order.append(key)
        else:
            merged[key] = merged[key] + rho
    return [(memory, merged[memory]) for memory in order]
