"""Conjunctive normal form containers.

Literals follow the DIMACS convention: variable ``v >= 1`` appears positively
as ``v`` and negatively as ``-v``.  The CNF object owns the variable counter
so encoders can allocate auxiliary (Tseitin) variables without clashing.
"""

from __future__ import annotations

__all__ = ["CNF"]


class CNF:
    """A growable CNF formula with named input variables."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self._names: dict[object, int] = {}
        self._reverse: dict[int, object] = {}

    # ------------------------------------------------------------------
    def new_var(self, name: object | None = None) -> int:
        """Allocate a fresh variable, optionally associated with a name."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            if name in self._names:
                raise ValueError(f"variable name {name!r} already allocated")
            self._names[name] = var
            self._reverse[var] = name
        return var

    def var_for(self, name: object) -> int:
        """Variable for ``name``, allocating it on first use."""
        if name not in self._names:
            return self.new_var(name)
        return self._names[name]

    def has_name(self, name: object) -> bool:
        return name in self._names

    def name_of(self, var: int) -> object | None:
        return self._reverse.get(var)

    def named_variables(self) -> dict[object, int]:
        return dict(self._names)

    # ------------------------------------------------------------------
    def add_clause(self, literals) -> None:
        """Add a clause; tautologies are dropped and duplicates removed."""
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            lit = int(lit)
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self.clauses.append(clause)

    def add_clauses(self, clauses) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def to_dimacs(self) -> str:
        """Serialise in DIMACS format (useful for debugging and external cross-checks)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause)) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"
