"""A CDCL SAT solver with incremental solving support.

The solver implements the standard conflict-driven clause-learning loop:
two-watched-literal unit propagation, first-UIP conflict analysis with
clause learning and non-chronological backjumping, VSIDS-style activity
ordering with decay, Luby restarts and learnt-clause deletion.  It is written
for clarity first, but is fast enough for the QEC verification conditions in
the benchmarks (thousands of variables, tens of thousands of clauses).

Assumption literals are supported so the parallel verifier can split a task
into subtasks by fixing selected error indicators, mirroring the enumeration
strategy of Appendix D.4.

The solver is *incremental* in the MiniSat sense: :meth:`SATSolver.solve` may
be called repeatedly (with different assumption sets), and between calls new
clauses and variables may be added with :meth:`SATSolver.add_clause` and
:meth:`SATSolver.grow_variables`.  Learnt clauses, VSIDS activities, saved
phases and the root-level trail all survive across calls, which is what makes
closely related queries (enumeration subtasks, trial-distance walks, registry
sweeps) dramatically cheaper than re-solving from scratch.  Learnt clauses
are sound across calls because first-UIP learning only resolves over reason
clauses — assumption literals enter learnt clauses negatively instead of
being resolved away, so every learnt clause is a consequence of the clause
database alone.

Long-lived shared sessions need the learnt database managed, not merely
retained: learnt clauses are scored by their literal-block distance (LBD, the
number of distinct decision levels among their literals) and minimized with
the recursive (MiniSat-style) redundant-literal elimination before being
attached; when the learnt population outgrows its budget, the worst half
(highest LBD, breaking ties on length) is deleted, keeping "glue" clauses
(LBD <= 2) and clauses currently locked as reasons.  Clauses restored from a
warm cache enter through :meth:`SATSolver.absorb_learnt`, so they stay
deletable like any other learnt clause.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["SATSolver", "SolveControl", "SolverInterrupted", "SolverResult"]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


@dataclass
class SolverResult:
    """Outcome of one solve call; statistics are per-call deltas."""

    satisfiable: bool
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def __bool__(self) -> bool:
        return self.satisfiable


class SolverInterrupted(Exception):
    """A solve call was interrupted by its :class:`SolveControl`.

    The solver backtracks to decision level 0 before raising, so the instance
    stays fully consistent — learnt clauses, activities and the root trail are
    retained, and the next :meth:`SATSolver.solve` call behaves as if the
    interrupted call never happened.  ``reason`` is one of ``"cancelled"``,
    ``"deadline"`` or ``"budget"``.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class SolveControl:
    """Cooperative interruption policy for one (or many) solve calls.

    The solver polls the control every ``check_interval`` search events (a
    conflict counts more than a decision, so the latency bound is roughly one
    "solve-budget slice" of ``check_interval / 8`` conflicts or
    ``check_interval`` decisions, whichever comes first):

    * ``cancelled`` — a zero-argument callable (e.g. ``threading.Event.is_set``)
      flipped by another thread; truthy means stop with reason ``"cancelled"``;
    * ``deadline``  — a :func:`time.monotonic` timestamp; reaching it stops
      with reason ``"deadline"``;
    * ``conflict_budget`` — a per-call conflict allowance; exceeding it stops
      with reason ``"budget"``.

    One control may be shared by every solve call of a job, which is how a
    per-job deadline bounds a whole distance walk rather than one probe.
    """

    deadline: float | None = None
    cancelled: Callable[[], bool] | None = None
    conflict_budget: int | None = None
    check_interval: int = 128

    def interrupted(self, conflicts: int = 0) -> str | None:
        """The stop reason, or None to keep searching."""
        if self.cancelled is not None and self.cancelled():
            return "cancelled"
        if self.conflict_budget is not None and conflicts > self.conflict_budget:
            return "budget"
        if self.deadline is not None and time.monotonic() >= self.deadline:
            return "deadline"
        return None

    @classmethod
    def for_deadline(cls, seconds: float | None, **kwargs) -> "SolveControl":
        """A control whose deadline is ``seconds`` from now (None = no deadline)."""
        deadline = time.monotonic() + seconds if seconds is not None else None
        return cls(deadline=deadline, **kwargs)


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (``index`` is 1-based)."""
    while True:
        k = index.bit_length()
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        index = index - (1 << (k - 1)) + 1


class SATSolver:
    """Conflict-driven clause-learning solver over a :class:`~repro.smt.cnf.CNF`."""

    def __init__(
        self,
        cnf,
        max_conflicts: int | None = None,
        max_learnt: int | None = None,
    ):
        self.num_vars = cnf.num_vars
        self.clauses: list[list[int]] = []
        self.max_conflicts = max_conflicts
        # Learnt-clause budget: None derives the classic len(clauses)/3 floor
        # per solve call; an explicit value (used by tests and by callers that
        # keep sessions alive for very long) fixes the reduction trigger.
        self.max_learnt = max_learnt
        self.clause_is_learnt: list[bool] = []
        self.clause_lbd: list[int] = []
        self.num_learnt = 0
        self.learnt_deleted = 0
        self.reductions = 0
        self.minimized_literals = 0
        self.erased_clauses = 0

        size = self.num_vars + 1
        self.assignment = [_UNASSIGNED] * size
        self.level = [0] * size
        self.reason: list[int | None] = [None] * size
        self.activity = [0.0] * size
        self.polarity = [False] * size
        self.watches: dict[int, list[int]] = {}
        self.trail: list[int] = []
        self.trail_limits: list[int] = []
        self.queue_head = 0

        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.num_solves = 0
        self._restart_count = 0
        self._activity_increment = 1.0
        self._activity_decay = 0.95
        self._contradiction = False

        for clause in cnf.clauses:
            self._attach_clause(list(clause), learnt=False)

        # Problem clauses and learnt clauses interleave once add_clause is
        # used, so the learnt population is tracked as a count, not a
        # boundary index into self.clauses.
        self.num_problem_clauses = len(self.clauses)

    # ------------------------------------------------------------------
    # Incremental interface
    # ------------------------------------------------------------------
    def grow_variables(self, num_vars: int) -> None:
        """Extend the variable range to ``num_vars`` (no-op when not larger)."""
        if num_vars <= self.num_vars:
            return
        extra = num_vars - self.num_vars
        self.assignment.extend([_UNASSIGNED] * extra)
        self.level.extend([0] * extra)
        self.reason.extend([None] * extra)
        self.activity.extend([0.0] * extra)
        self.polarity.extend([False] * extra)
        self.num_vars = num_vars

    def add_clause(self, clause) -> None:
        """Attach a clause after construction (between :meth:`solve` calls).

        The clause is simplified against the permanent root-level assignment:
        literals false at level 0 are dropped and clauses satisfied at level 0
        are skipped entirely, so the two chosen watches are never false and
        the watched-literal invariant is preserved without repair passes.
        Units are enqueued on the root trail; the next :meth:`solve` call
        propagates them before doing any search.
        """
        simplified = self._simplify_against_root(clause)
        if simplified is None:
            return
        index = self._attach_clause(simplified, learnt=False)
        if index is not None:
            self.num_problem_clauses += 1

    def absorb_learnt(self, clause) -> bool:
        """Attach a clause known to be a consequence of the formula.

        This is the warm-cache entry point: learnt clauses serialized from an
        earlier session over the *same* formula may be re-attached here.  They
        enter the database as learnt clauses (scored by their length, since
        the original LBD is meaningless against a fresh trail), so the
        periodic reduction can still delete them.  Returns whether the clause
        survived root-level simplification and was stored.
        """
        simplified = self._simplify_against_root(clause)
        if simplified is None:
            return False
        index = self._attach_clause(simplified, learnt=True, lbd=len(simplified))
        return index is not None

    def learnt_clauses(self, max_var: int | None = None) -> list[list[int]]:
        """The current learnt clauses, optionally restricted to ``var <= max_var``.

        The restriction is what makes serialization safe for sessions whose
        encoding keeps growing: clauses over variables that a fresh session
        will allocate identically (the base encoding) round-trip; clauses over
        later auxiliary variables are filtered out.
        """
        result = []
        for index, clause in enumerate(self.clauses):
            if not self.clause_is_learnt[index]:
                continue
            if max_var is not None and any(abs(lit) > max_var for lit in clause):
                continue
            result.append(list(clause))
        return result

    def _simplify_against_root(self, clause) -> list[int] | None:
        """Root-level simplification shared by the clause entry points.

        Returns the simplified literal list, or None when the clause is a
        tautology or permanently satisfied and need not be stored.
        """
        if self._decision_level() != 0:
            raise RuntimeError("clauses may only be added at decision level 0")
        seen: set[int] = set()
        simplified: list[int] = []
        for lit in clause:
            lit = int(lit)
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range")
            if -lit in seen:
                return None  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self._value(lit)
            if value == _TRUE:
                return None  # permanently satisfied at level 0
            if value == _FALSE:
                continue  # permanently falsified literal
            simplified.append(lit)
        return simplified

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def _attach_clause(self, clause: list[int], learnt: bool, lbd: int = 0) -> int | None:
        if not clause:
            self._contradiction = True
            return None
        if len(clause) == 1:
            # Unit input clause: enqueue at level 0.
            lit = clause[0]
            if not self._enqueue(lit, None):
                self._contradiction = True
            return None
        index = len(self.clauses)
        self.clauses.append(clause)
        self.clause_is_learnt.append(learnt)
        self.clause_lbd.append(lbd if learnt else 0)
        if learnt:
            self.num_learnt += 1
        for lit in clause[:2]:
            self.watches.setdefault(-lit, []).append(index)
        return index

    def _reduce_learnt(self) -> None:
        """Delete the worst half of the deletable learnt clauses.

        Deletable means: learnt, not currently the reason of an assigned
        literal (locked), and not glue (LBD > 2).  Worst is highest LBD,
        breaking ties on clause length.  The clause list is compacted and the
        watch lists and reason indices remapped, so the method is safe at any
        decision level (the solve loop calls it between propagation and the
        next decision).
        """
        locked = {index for index in self.reason if index is not None}
        candidates = [
            index
            for index in range(len(self.clauses))
            if self.clause_is_learnt[index]
            and self.clause_lbd[index] > 2
            and index not in locked
        ]
        if len(candidates) < 2:
            return
        candidates.sort(key=lambda index: (self.clause_lbd[index], len(self.clauses[index])))
        drop = set(candidates[len(candidates) // 2 :])
        if not drop:
            return
        mapping: dict[int, int] = {}
        clauses: list[list[int]] = []
        is_learnt: list[bool] = []
        lbds: list[int] = []
        for index, clause in enumerate(self.clauses):
            if index in drop:
                continue
            mapping[index] = len(clauses)
            clauses.append(clause)
            is_learnt.append(self.clause_is_learnt[index])
            lbds.append(self.clause_lbd[index])
        self.clauses = clauses
        self.clause_is_learnt = is_learnt
        self.clause_lbd = lbds
        self.watches = {}
        for index, clause in enumerate(self.clauses):
            for lit in clause[:2]:
                self.watches.setdefault(-lit, []).append(index)
        for var in range(1, self.num_vars + 1):
            reason_index = self.reason[var]
            if reason_index is not None:
                self.reason[var] = mapping[reason_index]
        self.num_learnt -= len(drop)
        self.learnt_deleted += len(drop)
        self.reductions += 1

    def erase_satisfied(self) -> int:
        """Erase clauses permanently satisfied at level 0; strip false literals.

        This is the solver half of guard garbage collection: once a selector
        is negated at the root, every clause it guarded is permanently
        satisfied and can be physically removed, so retiring stale guards
        actually shrinks the clause database instead of leaving dead weight
        in the watch lists.  Root-falsified literals are stripped from the
        surviving clauses at the same time (sound: they can never help
        satisfy the clause again).  Returns the number of erased clauses.
        """
        if self._decision_level() != 0:
            raise RuntimeError("erase_satisfied requires decision level 0")
        if self._contradiction:
            return 0
        if self._propagate() is not None:
            self._contradiction = True
            return 0
        erased = 0
        clauses: list[list[int]] = []
        is_learnt: list[bool] = []
        lbds: list[int] = []
        for index, clause in enumerate(self.clauses):
            if any(self._value(lit) == _TRUE for lit in clause):
                erased += 1
                if self.clause_is_learnt[index]:
                    self.num_learnt -= 1
                else:
                    self.num_problem_clauses -= 1
                continue
            stripped = [lit for lit in clause if self._value(lit) != _FALSE]
            # With the root trail fully propagated, an unsatisfied clause
            # keeps >= 2 unassigned literals; handle the impossible shapes
            # defensively anyway so a caller bug cannot corrupt the watches.
            if not stripped:
                self._contradiction = True
                continue
            if len(stripped) == 1:
                self._enqueue(stripped[0], None)
                erased += 1
                if self.clause_is_learnt[index]:
                    self.num_learnt -= 1
                else:
                    self.num_problem_clauses -= 1
                continue
            clauses.append(stripped)
            is_learnt.append(self.clause_is_learnt[index])
            lbds.append(self.clause_lbd[index])
        self.clauses = clauses
        self.clause_is_learnt = is_learnt
        self.clause_lbd = lbds
        self.watches = {}
        for index, clause in enumerate(self.clauses):
            for lit in clause[:2]:
                self.watches.setdefault(-lit, []).append(index)
        # Every assigned variable is at level 0 here, and level-0 assignments
        # never need their reasons again (conflict analysis skips them), so
        # dropping all reason indices is both safe and required — they may
        # point at erased clauses.
        self.reason = [None] * (self.num_vars + 1)
        self.erased_clauses += erased
        return erased

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        value = self.assignment[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else -value

    def _enqueue(self, lit: int, reason_index: int | None) -> bool:
        current = self._value(lit)
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        var = abs(lit)
        self.assignment[var] = _TRUE if lit > 0 else _FALSE
        self.level[var] = len(self.trail_limits)
        self.reason[var] = reason_index
        self.polarity[var] = lit > 0
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_limits)

    # ------------------------------------------------------------------
    # Unit propagation with two watched literals
    # ------------------------------------------------------------------
    def _propagate(self) -> int | None:
        """Propagate pending assignments; return a conflicting clause index or None."""
        while self.queue_head < len(self.trail):
            lit = self.trail[self.queue_head]
            self.queue_head += 1
            self.propagations += 1
            watch_list = self.watches.get(lit)
            if not watch_list:
                continue
            new_watch_list: list[int] = []
            index_position = 0
            while index_position < len(watch_list):
                clause_index = watch_list[index_position]
                index_position += 1
                clause = self.clauses[clause_index]
                # Ensure the falsified literal is in position 1.
                false_lit = -lit
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == _TRUE:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self._value(candidate) != _FALSE:
                        clause[1], clause[position] = clause[position], clause[1]
                        self.watches.setdefault(-clause[1], []).append(clause_index)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(clause_index)
                if self._value(first) == _FALSE:
                    # Conflict: keep remaining watches and report.
                    new_watch_list.extend(watch_list[index_position:])
                    self.watches[lit] = new_watch_list
                    return clause_index
                self._enqueue(first, clause_index)
            self.watches[lit] = new_watch_list
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause_index: int | None = conflict_index
        trail_position = len(self.trail) - 1
        current_level = self._decision_level()

        while True:
            clause = self.clauses[clause_index]
            for clause_lit in clause:
                if lit is not None and clause_lit == lit:
                    continue
                var = abs(clause_lit)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump_activity(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(clause_lit)
            # Select the next literal on the trail to resolve.
            while not seen[abs(self.trail[trail_position])]:
                trail_position -= 1
            lit = self.trail[trail_position]
            trail_position -= 1
            seen[abs(lit)] = False
            counter -= 1
            if counter == 0:
                break
            clause_index = self.reason[abs(lit)]
        learnt[0] = -lit

        if len(learnt) > 2:
            learnt = self._minimize_learnt(learnt, seen)

        if len(learnt) == 1:
            backjump_level = 0
            lbd = 1
        else:
            # Move the literal with the highest level (other than the UIP) to slot 1.
            best = max(range(1, len(learnt)), key=lambda i: self.level[abs(learnt[i])])
            learnt[1], learnt[best] = learnt[best], learnt[1]
            backjump_level = self.level[abs(learnt[1])]
            lbd = len({self.level[abs(learnt_lit)] for learnt_lit in learnt})
        return learnt, backjump_level, lbd

    def _minimize_learnt(self, learnt: list[int], seen: list[bool]) -> list[int]:
        """Recursive clause minimization (MiniSat's redundant-literal test).

        A non-UIP literal is redundant when its reason clause — and,
        recursively, the reasons of that clause's literals — grounds out
        entirely in literals already in the learnt clause (``seen``) or fixed
        at level 0.  ``seen`` doubles as the memo: literals proven reachable
        stay marked, failed probes unwind their own marks only.
        """
        levels = {self.level[abs(lit)] for lit in learnt[1:]}
        to_clear: list[int] = []
        kept = [learnt[0]]
        for lit in learnt[1:]:
            if self.reason[abs(lit)] is None or not self._lit_redundant(
                lit, seen, levels, to_clear
            ):
                kept.append(lit)
        self.minimized_literals += len(learnt) - len(kept)
        return kept

    def _lit_redundant(
        self, lit: int, seen: list[bool], levels: set[int], to_clear: list[int]
    ) -> bool:
        stack = [lit]
        top = len(to_clear)
        while stack:
            current = stack.pop()
            clause = self.clauses[self.reason[abs(current)]]
            for other in clause:
                var = abs(other)
                if var == abs(current) or seen[var] or self.level[var] == 0:
                    continue
                if self.reason[var] is None or self.level[var] not in levels:
                    # Grounds in a decision/assumption or leaves the clause's
                    # levels: not redundant.  Unwind this probe's marks.
                    for marked in to_clear[top:]:
                        seen[marked] = False
                    del to_clear[top:]
                    return False
                seen[var] = True
                stack.append(other)
                to_clear.append(var)
        return True

    def _bump_activity(self, var: int) -> None:
        self.activity[var] += self._activity_increment
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self._activity_increment *= 1e-100

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        limit = self.trail_limits[target_level]
        for lit in reversed(self.trail[limit:]):
            var = abs(lit)
            self.assignment[var] = _UNASSIGNED
            self.reason[var] = None
        del self.trail[limit:]
        del self.trail_limits[target_level:]
        self.queue_head = len(self.trail)

    # ------------------------------------------------------------------
    # Decision heuristic
    # ------------------------------------------------------------------
    def _pick_branch_variable(self) -> int | None:
        best_var = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assignment[var] == _UNASSIGNED and self.activity[var] > best_activity:
                best_var = var
                best_activity = self.activity[var]
        return best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, assumptions=(), control: SolveControl | None = None) -> SolverResult:
        """Decide satisfiability under the given assumption literals.

        May be called repeatedly; learnt clauses and heuristic state persist
        between calls.  The returned statistics are per-call deltas — the
        cumulative counters stay available as ``solver.conflicts`` etc.

        ``control`` bounds the call: the solver polls it on a conflict- and
        decision-count cadence (see :class:`SolveControl`) and raises
        :class:`SolverInterrupted` when it fires, after backtracking to level
        0 so the instance stays reusable.
        """
        self.num_solves += 1
        start = (self.conflicts, self.decisions, self.propagations)
        if control is not None:
            reason = control.interrupted(0)
            if reason is not None:
                raise SolverInterrupted(reason)

        def _result(satisfiable: bool, model=None) -> SolverResult:
            return SolverResult(
                satisfiable,
                model,
                self.conflicts - start[0],
                self.decisions - start[1],
                self.propagations - start[2],
            )

        if self._contradiction:
            return _result(False)

        conflict = self._propagate()
        if conflict is not None:
            # A conflict while propagating the root trail is independent of
            # any assumptions: the formula itself is unsatisfiable.  Latch it,
            # because propagation cannot rediscover a consumed conflict.
            self._contradiction = True
            return _result(False)

        root_level = 0
        for lit in assumptions:
            if self._value(lit) == _FALSE:
                self._cancel_until(0)
                return _result(False)
            if self._value(lit) == _UNASSIGNED:
                self.trail_limits.append(len(self.trail))
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    self._cancel_until(0)
                    return _result(False)
        root_level = self._decision_level()

        conflicts_until_restart = 100 * _luby(self._restart_count + 1)
        conflicts_since_restart = 0
        max_learnt = self.max_learnt
        if max_learnt is None:
            max_learnt = max(1000, len(self.clauses) // 3)
        # Control polling is amortised: conflicts weigh 8 search events,
        # decisions 1, and the control is consulted every check_interval
        # events — cheap enough for the hot loop, tight enough that a cancel
        # or deadline lands within one slice.
        events_since_check = 0
        check_interval = control.check_interval if control is not None else 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if (
                    self.max_conflicts is not None
                    and self.conflicts - start[0] > self.max_conflicts
                ):
                    self._cancel_until(0)
                    raise RuntimeError("conflict budget exhausted")
                if control is not None:
                    events_since_check += 8
                    if events_since_check >= check_interval:
                        events_since_check = 0
                        reason = control.interrupted(self.conflicts - start[0])
                        if reason is not None:
                            self._cancel_until(0)
                            raise SolverInterrupted(reason)
                if self._decision_level() <= root_level:
                    if root_level == 0:
                        # Conflict below any assumption: permanently UNSAT.
                        self._contradiction = True
                    self._cancel_until(0)
                    return _result(False)
                learnt, backjump_level, lbd = self._analyze(conflict)
                self._cancel_until(max(backjump_level, root_level))
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    index = self._attach_clause(learnt, learnt=True, lbd=lbd)
                    self._enqueue(learnt[0], index)
                self._decay_activities()
            else:
                if conflicts_since_restart >= conflicts_until_restart:
                    conflicts_since_restart = 0
                    self._restart_count += 1
                    conflicts_until_restart = 100 * _luby(self._restart_count + 1)
                    self._cancel_until(root_level)
                    continue
                if self.num_learnt > max_learnt:
                    self._reduce_learnt()
                    max_learnt = int(max_learnt * 1.1)
                if control is not None:
                    events_since_check += 1
                    if events_since_check >= check_interval:
                        events_since_check = 0
                        reason = control.interrupted(self.conflicts - start[0])
                        if reason is not None:
                            self._cancel_until(0)
                            raise SolverInterrupted(reason)
                variable = self._pick_branch_variable()
                if variable is None:
                    model = {
                        var: self.assignment[var] == _TRUE
                        for var in range(1, self.num_vars + 1)
                    }
                    self._cancel_until(0)
                    return _result(True, model)
                self.decisions += 1
                self.trail_limits.append(len(self.trail))
                preferred = variable if self.polarity[variable] else -variable
                self._enqueue(preferred, None)
