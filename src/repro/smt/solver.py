"""A CDCL SAT solver with incremental solving support.

The solver implements the standard conflict-driven clause-learning loop:
two-watched-literal unit propagation, first-UIP conflict analysis with
clause learning and non-chronological backjumping, VSIDS-style activity
ordering with decay, Luby restarts and learnt-clause deletion.  It is written
for clarity first, but is fast enough for the QEC verification conditions in
the benchmarks (thousands of variables, tens of thousands of clauses).

Assumption literals are supported so the parallel verifier can split a task
into subtasks by fixing selected error indicators, mirroring the enumeration
strategy of Appendix D.4.

The solver is *incremental* in the MiniSat sense: :meth:`SATSolver.solve` may
be called repeatedly (with different assumption sets), and between calls new
clauses and variables may be added with :meth:`SATSolver.add_clause` and
:meth:`SATSolver.grow_variables`.  Learnt clauses, VSIDS activities, saved
phases and the root-level trail all survive across calls, which is what makes
closely related queries (enumeration subtasks, trial-distance walks, registry
sweeps) dramatically cheaper than re-solving from scratch.  Learnt clauses
are sound across calls because first-UIP learning only resolves over reason
clauses — assumption literals enter learnt clauses negatively instead of
being resolved away, so every learnt clause is a consequence of the clause
database alone.

Long-lived shared sessions need the learnt database managed, not merely
retained: learnt clauses are scored by their literal-block distance (LBD, the
number of distinct decision levels among their literals) and minimized with
the recursive (MiniSat-style) redundant-literal elimination before being
attached; when the learnt population outgrows its budget, the worst half
(highest LBD, breaking ties on length) is deleted, keeping "glue" clauses
(LBD <= 2) and clauses currently locked as reasons.  Clauses restored from a
warm cache enter through :meth:`SATSolver.absorb_learnt`, so they stay
deletable like any other learnt clause.

Hot-path engineering (MiniSat / glucose playbook):

* **Decisions** come from an indexed binary max-heap over variable
  activities (ties broken toward the smaller variable index, which makes the
  heap pick *identical* to a linear maximum scan).  Assigned variables are
  removed lazily — they surface at the top and are discarded (counted in
  ``heap_discards``); a mid-search backtrack reinserts every variable it
  unassigns, while the end-of-solve backtrack defers reinsertion so the
  next call refills only the variables its root propagation left
  unassigned.  A decision costs O(log n) instead of the previous O(n)
  scan.  The scan survives as the ``"linear"`` decision policy
  (``REPRO_DECISION_POLICY`` environment variable or the
  ``decision_policy`` argument) purely so the benchmark harness can
  measure the heap against the historical behaviour; both policies make
  bit-identical decisions.
* **Propagation** uses per-literal watcher arrays of (clause index, blocker
  literal) pairs stored interleaved in flat lists indexed by a literal→slot
  map, with truth values stored literal-indexed so a value check is one
  list lookup.  A watcher whose cached blocker is already true is skipped
  without touching the clause at all (counted in ``blocker_hits``);
  watcher lists are swap-compacted in place — only once a watcher has
  actually migrated — instead of being rebuilt per propagation, and
  binary clauses live in dedicated watcher arrays that resolve from the
  cached pair alone.
* **Conflict analysis** allocates nothing proportional to the variable
  count: the ``seen`` mark states, the minimization stack and the level
  scratch are reusable instance buffers cleared through a to-clear list,
  so a conflict costs O(size of the resolved clauses), not O(num_vars).
  Minimization is a path-DFS over the reason graph with post-order
  removable/failed memoization and an abstract-level bitmask filter.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["SATSolver", "SolveControl", "SolverInterrupted", "SolverResult"]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

# Mark states for the shared conflict-analysis ``_seen`` buffer.
_SEEN_SOURCE = 1  # marked during first-UIP resolution (or a learnt literal)
_SEEN_REMOVABLE = 2  # minimization memo: proven to ground out in the clause
_SEEN_FAILED = 3  # minimization memo: proven NOT to ground out


@dataclass
class SolverResult:
    """Outcome of one solve call; statistics are per-call deltas."""

    satisfiable: bool
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    blocker_hits: int = 0
    heap_discards: int = 0
    binary_subsumed: int = 0
    #: Learnt clauses deleted by clause-database reduction during this call —
    #: a per-call delta of the cumulative ``solver.learnt_deleted`` counter.
    learnt_evicted: int = 0

    def __bool__(self) -> bool:
        return self.satisfiable


class SolverInterrupted(Exception):
    """A solve call was interrupted by its :class:`SolveControl`.

    The solver backtracks to decision level 0 before raising, so the instance
    stays fully consistent — learnt clauses, activities and the root trail are
    retained, and the next :meth:`SATSolver.solve` call behaves as if the
    interrupted call never happened.  ``reason`` is one of ``"cancelled"``,
    ``"deadline"`` or ``"budget"``.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class SolveControl:
    """Cooperative interruption policy for one (or many) solve calls.

    The solver polls the control every ``check_interval`` search events (a
    conflict counts more than a decision, so the latency bound is roughly one
    "solve-budget slice" of ``check_interval / 8`` conflicts or
    ``check_interval`` decisions, whichever comes first):

    * ``cancelled`` — a zero-argument callable (e.g. ``threading.Event.is_set``)
      flipped by another thread; truthy means stop with reason ``"cancelled"``;
    * ``deadline``  — a :func:`time.monotonic` timestamp; reaching it stops
      with reason ``"deadline"``;
    * ``conflict_budget`` — a per-call conflict allowance; exceeding it stops
      with reason ``"budget"``.

    One control may be shared by every solve call of a job, which is how a
    per-job deadline bounds a whole distance walk rather than one probe.
    """

    deadline: float | None = None
    cancelled: Callable[[], bool] | None = None
    conflict_budget: int | None = None
    check_interval: int = 128

    def interrupted(self, conflicts: int = 0) -> str | None:
        """The stop reason, or None to keep searching."""
        if self.cancelled is not None and self.cancelled():
            return "cancelled"
        if self.conflict_budget is not None and conflicts > self.conflict_budget:
            return "budget"
        if self.deadline is not None and time.monotonic() >= self.deadline:
            return "deadline"
        return None

    @classmethod
    def for_deadline(cls, seconds: float | None, **kwargs) -> "SolveControl":
        """A control whose deadline is ``seconds`` from now (None = no deadline)."""
        deadline = time.monotonic() + seconds if seconds is not None else None
        return cls(deadline=deadline, **kwargs)


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (``index`` is 1-based)."""
    while True:
        k = index.bit_length()
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        index = index - (1 << (k - 1)) + 1


class SATSolver:
    """Conflict-driven clause-learning solver over a :class:`~repro.smt.cnf.CNF`."""

    #: Recognised decision policies; ``"linear"`` is the historical O(n)
    #: activity scan kept as a benchmark fallback, never the default.
    DECISION_POLICIES: tuple[str, ...] = ("heap", "linear")

    def __init__(
        self,
        cnf,
        max_conflicts: int | None = None,
        max_learnt: int | None = None,
        decision_policy: str | None = None,
    ):
        if decision_policy is None:
            decision_policy = os.environ.get("REPRO_DECISION_POLICY") or "heap"
        if decision_policy not in self.DECISION_POLICIES:
            raise ValueError(
                f"unknown decision policy {decision_policy!r}; "
                f"expected one of {self.DECISION_POLICIES}"
            )
        self.decision_policy = decision_policy
        self._use_heap: bool = decision_policy == "heap"

        self.clauses: list[list[int]] = []
        self.max_conflicts = max_conflicts
        # Learnt-clause budget: None derives the classic len(clauses)/3 floor
        # per solve call; an explicit value (used by tests and by callers that
        # keep sessions alive for very long) fixes the reduction trigger.
        self.max_learnt = max_learnt
        self.clause_is_learnt: list[bool] = []
        self.clause_lbd: list[int] = []
        self.num_learnt = 0
        self.learnt_deleted = 0
        self.reductions = 0
        self.minimized_literals = 0
        self.binary_subsumed = 0
        self.erased_clauses = 0

        # Per-variable state (index 0 unused); every array here is extended
        # in one place, _ensure_capacity, so the solver cannot grow one array
        # and forget another.
        self.num_vars = 0
        # Literal truth values, indexed by the *literal itself*: _lit_values
        # has length 2*num_vars + 1 so a negative literal indexes from the
        # end (Python's negative indexing).  One list lookup answers "what is
        # the value of literal l" with no sign test and no abs() — the
        # single most frequent operation in the solver.
        self._lit_values: list[int] = [_UNASSIGNED]
        self.level: list[int] = [0]
        self.reason: list[int | None] = [None]
        self.activity: list[float] = [0.0]
        self.polarity: list[bool] = [False]

        # Watcher arrays: _watchers[slot] is a flat interleaved list of
        # (clause_index, blocker_literal) pairs for one literal.  The slot of
        # literal l is 2*l for l > 0 and 1 - 2*l for l < 0, so a literal's
        # watchers are one list lookup away (no dict hashing on the hot
        # path).  Binary clauses live in the parallel _binary_watchers
        # arrays, scanned first and without any compaction bookkeeping (a
        # binary watcher can never migrate).  Slots 0 and 1 belong to the
        # unused variable 0.
        self._watchers: list[list[int]] = [[], []]
        self._binary_watchers: list[list[int]] = [[], []]

        # Decision heap: an indexed binary max-heap of variables ordered by
        # (activity, -var).  _heap_index[var] is the variable's position in
        # _heap, or -1 when absent.  The end-of-solve backtrack defers
        # reinsertion (_heap_stale): most of those variables are immediately
        # re-assigned by the next call's root propagation, so solve() refills
        # only the genuinely unassigned ones after propagating assumptions.
        self._heap: list[int] = []
        self._heap_index: list[int] = [-1]
        self._heap_stale = False
        self._defer_reinsert = False

        # Conflict-analysis scratch, reused across conflicts and cleared via
        # _seen_to_clear so per-conflict cost scales with the clause sizes
        # involved, never with num_vars.  _seen holds per-variable mark
        # states: 0 = unseen, _SEEN_SOURCE = marked by first-UIP resolution,
        # _SEEN_REMOVABLE / _SEEN_FAILED = minimization memo verdicts.
        self._seen: list[int] = [0]
        self._seen_to_clear: list[int] = []
        self._min_stack: list[int] = []
        self._levels_scratch: set[int] = set()
        self._bin_subsume_scratch: set[int] = set()

        self.trail: list[int] = []
        self.trail_limits: list[int] = []
        self.queue_head = 0

        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.blocker_hits = 0
        self.heap_discards = 0
        self.num_solves = 0
        self._restart_count = 0
        self._activity_increment = 1.0
        self._activity_decay = 0.95
        self._contradiction = False

        self._ensure_capacity(cnf.num_vars)
        # Bulk attach: building the clause database and watcher lists with
        # plain list operations (no per-clause method calls) measurably
        # shortens session start-up — construction is on the critical path
        # of a shared context's first check.
        clauses = self.clauses
        is_learnt = self.clause_is_learnt
        lbds = self.clause_lbd
        long_watchers = self._watchers
        binary_watchers = self._binary_watchers
        for clause in cnf.clauses:
            clause = list(clause)
            if len(clause) < 2:
                self._attach_clause(clause, learnt=False)
                continue
            index = len(clauses)
            clauses.append(clause)
            is_learnt.append(False)
            lbds.append(0)
            first, second = clause[0], clause[1]
            watchers = binary_watchers if len(clause) == 2 else long_watchers
            watcher_list = watchers[(first << 1) + 1 if first > 0 else -(first << 1)]
            watcher_list.append(index)
            watcher_list.append(second)
            watcher_list = watchers[(second << 1) + 1 if second > 0 else -(second << 1)]
            watcher_list.append(index)
            watcher_list.append(first)

        # Problem clauses and learnt clauses interleave once add_clause is
        # used, so the learnt population is tracked as a count, not a
        # boundary index into self.clauses.
        self.num_problem_clauses = len(self.clauses)

    # ------------------------------------------------------------------
    # Incremental interface
    # ------------------------------------------------------------------
    def _ensure_capacity(self, num_vars: int) -> None:
        """Extend every per-variable array (and the watcher slots and the
        decision heap) to cover variables up to ``num_vars``.  The single
        place variable storage is allocated."""
        extra = num_vars - self.num_vars
        if extra <= 0:
            return
        # The literal-indexed value array cannot be extended in place — a
        # negative literal's position depends on the total length — so it is
        # rebuilt from the (root-level) trail.  Growth only ever happens
        # between solve calls at decision level 0, where the trail lists
        # every assigned literal.
        values = [_UNASSIGNED] * (2 * num_vars + 1)
        for trail_lit in self.trail:
            values[trail_lit] = _TRUE
            values[-trail_lit] = _FALSE
        self._lit_values = values
        self.level.extend([0] * extra)
        self.reason.extend([None] * extra)
        self.activity.extend([0.0] * extra)
        self.polarity.extend([False] * extra)
        self._seen.extend([0] * extra)
        self._heap_index.extend([-1] * extra)
        for _ in range(extra):
            self._watchers.append([])
            self._watchers.append([])
            self._binary_watchers.append([])
            self._binary_watchers.append([])
        first_new = self.num_vars + 1
        self.num_vars = num_vars
        if self._use_heap:
            for var in range(first_new, num_vars + 1):
                self._heap_insert(var)

    def grow_variables(self, num_vars: int) -> None:
        """Extend the variable range to ``num_vars`` (no-op when not larger)."""
        self._ensure_capacity(num_vars)

    def add_clause(self, clause) -> None:
        """Attach a clause after construction (between :meth:`solve` calls).

        The clause is simplified against the permanent root-level assignment:
        literals false at level 0 are dropped and clauses satisfied at level 0
        are skipped entirely, so the two chosen watches are never false and
        the watched-literal invariant is preserved without repair passes.
        Units are enqueued on the root trail; the next :meth:`solve` call
        propagates them before doing any search.
        """
        simplified = self._simplify_against_root(clause)
        if simplified is None:
            return
        index = self._attach_clause(simplified, learnt=False)
        if index is not None:
            self.num_problem_clauses += 1

    def absorb_learnt(self, clause) -> bool:
        """Attach a clause known to be a consequence of the formula.

        This is the warm-cache entry point: learnt clauses serialized from an
        earlier session over the *same* formula may be re-attached here.  They
        enter the database as learnt clauses (scored by their length, since
        the original LBD is meaningless against a fresh trail), so the
        periodic reduction can still delete them.  Returns whether the clause
        survived root-level simplification and was stored.
        """
        simplified = self._simplify_against_root(clause)
        if simplified is None:
            return False
        index = self._attach_clause(simplified, learnt=True, lbd=len(simplified))
        return index is not None

    def learnt_clauses(self, max_var: int | None = None) -> list[list[int]]:
        """The current learnt clauses, optionally restricted to ``var <= max_var``.

        The restriction is what makes serialization safe for sessions whose
        encoding keeps growing: clauses over variables that a fresh session
        will allocate identically (the base encoding) round-trip; clauses over
        later auxiliary variables are filtered out.
        """
        result = []
        for index, clause in enumerate(self.clauses):
            if not self.clause_is_learnt[index]:
                continue
            if max_var is not None and any(abs(lit) > max_var for lit in clause):
                continue
            result.append(list(clause))
        return result

    def learnt_clauses_meta(self, max_var: int | None = None) -> list[tuple[list[int], int]]:
        """Like :meth:`learnt_clauses`, but paired with each clause's LBD.

        The clause store persists the LBD alongside the literals so its
        size-bounded eviction can drop the least valuable clauses (worst LBD,
        then oldest) instead of evicting blindly.
        """
        result = []
        for index, clause in enumerate(self.clauses):
            if not self.clause_is_learnt[index]:
                continue
            if max_var is not None and any(abs(lit) > max_var for lit in clause):
                continue
            result.append((list(clause), self.clause_lbd[index]))
        return result

    def _simplify_against_root(self, clause) -> list[int] | None:
        """Root-level simplification shared by the clause entry points.

        Returns the simplified literal list, or None when the clause is a
        tautology or permanently satisfied and need not be stored.
        """
        if self.trail_limits:
            raise RuntimeError("clauses may only be added at decision level 0")
        values = self._lit_values
        num_vars = self.num_vars
        seen: set[int] = set()
        simplified: list[int] = []
        for lit in clause:
            lit = int(lit)
            if lit == 0 or lit > num_vars or lit < -num_vars:
                raise ValueError(f"literal {lit} out of range")
            if lit in seen:
                continue
            if -lit in seen:
                return None  # tautology
            seen.add(lit)
            value = values[lit]
            if value == _TRUE:
                return None  # permanently satisfied at level 0
            if value == _FALSE:
                continue  # permanently falsified literal
            simplified.append(lit)
        return simplified

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def _watch(self, clause_index: int, watched: int, blocker: int, binary: bool) -> None:
        """Register ``clause_index`` on ``watched``'s watcher slot.

        The slot is the one scanned when ``watched`` becomes false, i.e. the
        slot of ``-watched``; ``blocker`` is cached alongside so propagation
        can skip the clause when the blocker is already true.  Binary clauses
        live in their own per-literal arrays: their blocker IS the whole
        remaining clause, so propagation resolves them from the watcher pair
        alone — never touching the clause list, never migrating, and never
        paying the long-watcher compaction bookkeeping.
        """
        slot = (watched << 1) + 1 if watched > 0 else -(watched << 1)
        watchers = (self._binary_watchers if binary else self._watchers)[slot]
        watchers.append(clause_index)
        watchers.append(blocker)

    def _attach_clause(self, clause: list[int], learnt: bool, lbd: int = 0) -> int | None:
        if not clause:
            self._contradiction = True
            return None
        if len(clause) == 1:
            # Unit input clause: enqueue at level 0.
            lit = clause[0]
            if not self._enqueue(lit, None):
                self._contradiction = True
            return None
        index = len(self.clauses)
        self.clauses.append(clause)
        self.clause_is_learnt.append(learnt)
        self.clause_lbd.append(lbd if learnt else 0)
        if learnt:
            self.num_learnt += 1
        binary = len(clause) == 2
        self._watch(index, clause[0], clause[1], binary)
        self._watch(index, clause[1], clause[0], binary)
        return index

    def _rebuild_watchers(self) -> None:
        """Re-derive every watcher list from the clause database.

        Used after bulk clause surgery (:meth:`_reduce_learnt`,
        :meth:`erase_satisfied`): the first two literals of every clause are
        its watches, with the opposite watch cached as the blocker.
        """
        for watcher_list in self._watchers:
            watcher_list.clear()
        for watcher_list in self._binary_watchers:
            watcher_list.clear()
        for index, clause in enumerate(self.clauses):
            binary = len(clause) == 2
            self._watch(index, clause[0], clause[1], binary)
            self._watch(index, clause[1], clause[0], binary)

    def _reduce_learnt(self) -> None:
        """Delete the worst half of the deletable learnt clauses.

        Deletable means: learnt, not currently the reason of an assigned
        literal (locked), and not glue (LBD > 2).  Worst is highest LBD,
        breaking ties on clause length.  The clause list is compacted and the
        watcher lists and reason indices remapped, so the method is safe at
        any decision level (the solve loop calls it between propagation and
        the next decision).
        """
        locked = {index for index in self.reason if index is not None}
        candidates = [
            index
            for index in range(len(self.clauses))
            if self.clause_is_learnt[index]
            and self.clause_lbd[index] > 2
            and index not in locked
        ]
        if len(candidates) < 2:
            return
        candidates.sort(key=lambda index: (self.clause_lbd[index], len(self.clauses[index])))
        drop = set(candidates[len(candidates) // 2 :])
        if not drop:
            return
        mapping: dict[int, int] = {}
        clauses: list[list[int]] = []
        is_learnt: list[bool] = []
        lbds: list[int] = []
        for index, clause in enumerate(self.clauses):
            if index in drop:
                continue
            mapping[index] = len(clauses)
            clauses.append(clause)
            is_learnt.append(self.clause_is_learnt[index])
            lbds.append(self.clause_lbd[index])
        self.clauses = clauses
        self.clause_is_learnt = is_learnt
        self.clause_lbd = lbds
        self._rebuild_watchers()
        for var in range(1, self.num_vars + 1):
            reason_index = self.reason[var]
            if reason_index is not None:
                self.reason[var] = mapping[reason_index]
        self.num_learnt -= len(drop)
        self.learnt_deleted += len(drop)
        self.reductions += 1

    def erase_satisfied(self) -> int:
        """Erase clauses permanently satisfied at level 0; strip false literals.

        This is the solver half of guard garbage collection: once a selector
        is negated at the root, every clause it guarded is permanently
        satisfied and can be physically removed, so retiring stale guards
        actually shrinks the clause database instead of leaving dead weight
        in the watcher lists.  Root-falsified literals are stripped from the
        surviving clauses at the same time (sound: they can never help
        satisfy the clause again).  Returns the number of erased clauses.
        """
        if self._decision_level() != 0:
            raise RuntimeError("erase_satisfied requires decision level 0")
        if self._contradiction:
            return 0
        if self._propagate() is not None:
            self._contradiction = True
            return 0
        erased = 0
        clauses: list[list[int]] = []
        is_learnt: list[bool] = []
        lbds: list[int] = []
        for index, clause in enumerate(self.clauses):
            if any(self._value(lit) == _TRUE for lit in clause):
                erased += 1
                if self.clause_is_learnt[index]:
                    self.num_learnt -= 1
                else:
                    self.num_problem_clauses -= 1
                continue
            stripped = [lit for lit in clause if self._value(lit) != _FALSE]
            # With the root trail fully propagated, an unsatisfied clause
            # keeps >= 2 unassigned literals; handle the impossible shapes
            # defensively anyway so a caller bug cannot corrupt the watchers.
            if not stripped:
                self._contradiction = True
                continue
            if len(stripped) == 1:
                self._enqueue(stripped[0], None)
                erased += 1
                if self.clause_is_learnt[index]:
                    self.num_learnt -= 1
                else:
                    self.num_problem_clauses -= 1
                continue
            clauses.append(stripped)
            is_learnt.append(self.clause_is_learnt[index])
            lbds.append(self.clause_lbd[index])
        self.clauses = clauses
        self.clause_is_learnt = is_learnt
        self.clause_lbd = lbds
        self._rebuild_watchers()
        # Every assigned variable is at level 0 here, and level-0 assignments
        # never need their reasons again (conflict analysis skips them), so
        # dropping all reason indices is both safe and required — they may
        # point at erased clauses.
        self.reason = [None] * (self.num_vars + 1)
        self.erased_clauses += erased
        return erased

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        return self._lit_values[lit]

    def _enqueue(self, lit: int, reason_index: int | None) -> bool:
        values = self._lit_values
        current = values[lit]
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        values[lit] = _TRUE
        values[-lit] = _FALSE
        var = abs(lit)
        self.level[var] = len(self.trail_limits)
        self.reason[var] = reason_index
        self.polarity[var] = lit > 0
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_limits)

    # ------------------------------------------------------------------
    # Unit propagation: two watched literals with cached blockers
    # ------------------------------------------------------------------
    def _propagate(self) -> int | None:
        """Propagate pending assignments; return a conflicting clause index or None.

        The inner loop walks one literal's watcher slot — a flat interleaved
        (clause_index, blocker) list — compacting it in place: watchers that
        stay put are copied down over the ones that migrated to another
        literal, and the tail is truncated once, instead of materialising a
        new list per propagated literal.  A watcher whose cached blocker is
        already true is kept without touching its clause (``blocker_hits``).
        Binary clauses live in dedicated watcher arrays scanned first for
        each literal: true blocker → satisfied, false blocker → conflict,
        unassigned blocker → implied, with their clause never fetched.
        Implied literals are assigned inline (the :meth:`_enqueue` checks
        are statically known to pass here), which matters because
        propagation assigns far more literals than decisions and conflicts
        combined.
        """
        trail = self.trail
        trail_append = trail.append
        watchers = self._watchers
        binary_watchers = self._binary_watchers
        clauses = self.clauses
        values = self._lit_values
        level = self.level
        reason = self.reason
        current_level = len(self.trail_limits)
        blocker_hits = 0
        propagations = 0
        conflict: int | None = None
        head = self.queue_head
        while head < len(trail):
            lit = trail[head]
            head += 1
            propagations += 1
            slot = lit << 1 if lit > 0 else 1 - (lit << 1)
            # Binary watchers first: each resolves from its (index, blocker)
            # pair alone — no clause fetch, no migration, no compaction.
            # zip(it, it) walks the flat list pairwise at C speed.
            binary_list = binary_watchers[slot]
            if binary_list:
                pairs = iter(binary_list)
                for clause_index, blocker in zip(pairs, pairs):
                    value = values[blocker]
                    if value == _TRUE:
                        blocker_hits += 1
                        continue
                    if value == _FALSE:
                        conflict = clause_index
                        break
                    values[blocker] = _TRUE
                    values[-blocker] = _FALSE
                    var = blocker if blocker > 0 else -blocker
                    level[var] = current_level
                    reason[var] = clause_index
                    trail_append(blocker)
                if conflict is not None:
                    break
            watcher_list = watchers[slot]
            if not watcher_list:
                continue
            false_lit = -lit
            read = write = 0
            end = len(watcher_list)
            # ``write`` trails ``read`` only once a watcher has migrated
            # away; until then every entry keeps its place and the loop
            # writes nothing at all (the overwhelmingly common case).
            dirty = False
            while read < end:
                clause_index = watcher_list[read]
                blocker = watcher_list[read + 1]
                read += 2
                value = values[blocker]
                if value == _TRUE:
                    blocker_hits += 1
                    if dirty:
                        watcher_list[write] = clause_index
                        watcher_list[write + 1] = blocker
                    write += 2
                    continue
                clause = clauses[clause_index]
                # Ensure the falsified literal is in position 1.
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                if first != blocker:
                    value = values[first]
                    if value == _TRUE:
                        watcher_list[write] = clause_index
                        watcher_list[write + 1] = first
                        write += 2
                        continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if values[candidate] != _FALSE:
                        clause[1] = candidate
                        clause[position] = false_lit
                        migrated = watchers[
                            (candidate << 1) + 1 if candidate > 0
                            else -(candidate << 1)
                        ]
                        migrated.append(clause_index)
                        migrated.append(first)
                        found = True
                        dirty = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watcher_list[write] = clause_index
                watcher_list[write + 1] = first
                write += 2
                value = values[first]
                if value == _FALSE:
                    conflict = clause_index
                    break
                values[first] = _TRUE
                values[-first] = _FALSE
                var = first if first > 0 else -first
                level[var] = current_level
                reason[var] = clause_index
                trail_append(first)
            if conflict is not None:
                # Keep the remaining watchers and report the conflict.
                if dirty:
                    while read < end:
                        watcher_list[write] = watcher_list[read]
                        watcher_list[write + 1] = watcher_list[read + 1]
                        read += 2
                        write += 2
                    del watcher_list[write:]
                break
            if dirty:
                del watcher_list[write:]
        self.queue_head = head
        self.blocker_hits += blocker_hits
        self.propagations += propagations
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP), allocation-free
    # ------------------------------------------------------------------
    def _analyze(self, conflict_index: int) -> tuple[list[int], int, int]:
        """First-UIP analysis: returns ``(learnt_clause, backjump_level, lbd)``.

        Uses the instance-level ``_seen`` buffer; every variable marked here
        (or by the minimization below) is recorded in ``_seen_to_clear`` and
        unmarked before returning, so the buffer is all-False between
        conflicts without ever being rebuilt.
        """
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        to_clear = self._seen_to_clear
        level = self.level
        trail = self.trail
        activity = self.activity
        heap_index = self._heap_index
        use_heap = self._use_heap
        increment = self._activity_increment
        counter = 0
        lit = 0  # 0 is never a literal: first iteration resolves nothing
        clause_index: int | None = conflict_index
        trail_position = len(trail) - 1
        current_level = self._decision_level()

        while True:
            clause = self.clauses[clause_index]
            for clause_lit in clause:
                if clause_lit == lit:
                    continue
                var = clause_lit if clause_lit > 0 else -clause_lit
                if not seen[var] and level[var] > 0:
                    seen[var] = _SEEN_SOURCE
                    to_clear.append(var)
                    # Inlined _bump_activity: this runs once per resolved
                    # variable per conflict, the single hottest non-propagate
                    # site in the solver.
                    bumped = activity[var] + increment
                    activity[var] = bumped
                    if bumped > 1e100:
                        self._rescale_activities()
                        increment = self._activity_increment
                    elif use_heap and heap_index[var] >= 0:
                        self._heap_sift_up(heap_index[var])
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(clause_lit)
            # Select the next literal on the trail to resolve.
            while True:
                lit = trail[trail_position]
                trail_position -= 1
                var = lit if lit > 0 else -lit
                if seen[var]:
                    break
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            clause_index = self.reason[var]
        learnt[0] = -lit

        if len(learnt) > 2:
            learnt = self._minimize_learnt(learnt)
            if len(learnt) > 2:
                learnt = self._subsume_binary(learnt)

        if len(learnt) == 1:
            backjump_level = 0
            lbd = 1
        else:
            # Move the literal with the highest level (other than the UIP) to slot 1.
            best = max(range(1, len(learnt)), key=lambda i: level[abs(learnt[i])])
            learnt[1], learnt[best] = learnt[best], learnt[1]
            backjump_level = level[abs(learnt[1])]
            levels = self._levels_scratch
            levels.clear()
            for learnt_lit in learnt:
                levels.add(level[abs(learnt_lit)])
            lbd = len(levels)
        for var in to_clear:
            seen[var] = 0
        to_clear.clear()
        return learnt, backjump_level, lbd

    def _minimize_learnt(self, learnt: list[int]) -> list[int]:
        """Recursive clause minimization (MiniSat's redundant-literal test).

        A non-UIP literal is redundant when its reason clause — and,
        recursively, the reasons of that clause's literals — grounds out
        entirely in literals already in the learnt clause (``_seen``) or
        fixed at level 0.  ``_seen`` doubles as the memo: literals proven
        reachable stay marked (their variables are already queued on
        ``_seen_to_clear``, which :meth:`_analyze` clears), failed probes
        unwind their own marks only.

        Bookkeeping invariant (audited — the var/literal split is easy to
        misread): the DFS stack holds (clause position, *literal*) frames
        while ``_seen``/``_seen_to_clear`` record *variables*; a frame's own
        variable never re-expands because the scan skips it explicitly.
        Marks are written post-order — ``_SEEN_REMOVABLE`` only once a
        variable's entire reason subtree verified — so they are sound
        memoized verdicts even when the enclosing probe later fails, and
        nothing is ever unwound.  A failure marks the active chain
        ``_SEEN_FAILED`` (each ancestor needed the failing literal to
        ground), which later probes reject in O(1).  Dropping a literal from
        the learnt clause leaves its ``_SEEN_SOURCE`` mark in place: a
        literal proven to ground out in the clause remains a valid ground
        for others.  ``tests/smt/test_hotpath.py`` pins all of this with
        crafted and randomized entailment checks.
        """
        level = self.level
        reason = self.reason
        clauses = self.clauses
        seen = self._seen
        to_clear = self._seen_to_clear
        stack = self._min_stack
        # MiniSat's abstract level set: a 64-bit signature of the decision
        # levels present in the learnt clause.  The membership test below is
        # a sound early-abort filter — a hash collision merely lets a walk
        # continue, and redundancy is only ever concluded from actual
        # grounding in marked/level-0 literals.
        abstract_levels = 0
        for lit in learnt[1:]:
            abstract_levels |= 1 << (level[abs(lit)] & 63)
        kept = [learnt[0]]
        for lit in learnt[1:]:
            root_var = lit if lit > 0 else -lit
            if reason[root_var] is None:
                kept.append(lit)
                continue
            # Iterative path-DFS over the reason graph (acyclic: a reason's
            # literals were all assigned before the literal it implies).  A
            # variable is marked _SEEN_REMOVABLE only *after* its whole
            # subtree verified (post-order), so marks are sound even when
            # the probe as a whole later fails and nothing is ever unwound;
            # a failure marks the current chain _SEEN_FAILED so later probes
            # reject it in O(1) instead of re-walking it.
            stack.clear()
            current = lit
            current_var = root_var
            clause = clauses[reason[root_var]]
            position = 0
            redundant = True
            while True:
                if position < len(clause):
                    other = clause[position]
                    position += 1
                    var = other if other > 0 else -other
                    if var == current_var or level[var] == 0:
                        continue
                    state = seen[var]
                    if state == _SEEN_SOURCE or state == _SEEN_REMOVABLE:
                        continue
                    if (
                        state == _SEEN_FAILED
                        or reason[var] is None
                        or not (abstract_levels >> (level[var] & 63)) & 1
                    ):
                        # Grounds in a decision/assumption, leaves the
                        # clause's levels, or is already known to fail.
                        redundant = False
                        break
                    # Descend into the unverified literal.
                    stack.append(position)
                    stack.append(current)
                    current = other
                    current_var = var
                    clause = clauses[reason[var]]
                    position = 0
                else:
                    # Every literal of current's reason grounds out.
                    if not seen[current_var]:
                        seen[current_var] = _SEEN_REMOVABLE
                        to_clear.append(current_var)
                    if not stack:
                        break
                    current = stack.pop()
                    position = stack.pop()
                    current_var = current if current > 0 else -current
                    clause = clauses[reason[current_var]]
            if redundant:
                continue
            # The whole chain from the probe root down to the failure point
            # is non-redundant: each ancestor needed the failing literal to
            # ground.  Memoize that verdict (source marks stay source).
            if not seen[current_var]:
                seen[current_var] = _SEEN_FAILED
                to_clear.append(current_var)
            while stack:
                current = stack.pop()
                stack.pop()
                current_var = current if current > 0 else -current
                if not seen[current_var]:
                    seen[current_var] = _SEEN_FAILED
                    to_clear.append(current_var)
            kept.append(lit)
        self.minimized_literals += len(learnt) - len(kept)
        return kept

    #: LBD bound above which binary self-subsumption is skipped (glucose's
    #: ``lbLBDMinimizingClause``): high-LBD clauses are poor keepers and
    #: their UIP literals tend to carry the longest binary watcher lists.
    BINARY_SUBSUME_MAX_LBD = 6

    def _subsume_binary(self, learnt: list[int]) -> list[int]:
        """Glucose-style binary self-subsumption of a fresh learnt clause.

        The minimized clause is ``(a | rest)`` with ``a`` the asserting
        literal.  Every *binary* clause containing ``a`` sits in ``a``'s
        dedicated binary watcher slot as an ``(index, other)`` pair, so the
        scan below resolves against the whole binary occurrence list without
        fetching a single clause: a database clause ``(a | b)`` self-subsumes
        ``-b`` out of ``(a | -b | rest)``, leaving the strictly stronger
        ``(a | rest)``.  Removed literals are counted in ``binary_subsumed``.
        Like glucose, the pass is gated on the clause's LBD — junk clauses
        are not worth the watcher-list walk.
        """
        level = self.level
        levels = self._levels_scratch
        levels.clear()
        for lit in learnt:
            levels.add(level[lit if lit > 0 else -lit])
        if len(levels) > self.BINARY_SUBSUME_MAX_LBD:
            return learnt
        asserting = learnt[0]
        binary_list = self._binary_watchers[
            (asserting << 1) + 1 if asserting > 0 else -(asserting << 1)
        ]
        if not binary_list:
            return learnt
        # The scratch holds, for each candidate literal ``-b`` of the learnt
        # clause, the resolving literal ``b`` to look for among the binary
        # watchers; a hit deletes it, so what survives marks the keepers.
        scratch = self._bin_subsume_scratch
        scratch.clear()
        for lit in learnt[1:]:
            scratch.add(-lit)
        removed = 0
        pairs = iter(binary_list)
        for _, other in zip(pairs, pairs):
            if other in scratch:
                scratch.discard(other)
                removed += 1
        if not removed:
            scratch.clear()
            return learnt
        self.binary_subsumed += removed
        kept = [asserting]
        for lit in learnt[1:]:
            if -lit in scratch:
                kept.append(lit)
        scratch.clear()
        return kept

    # ------------------------------------------------------------------
    # Activity ordering (EVSIDS) and the decision heap
    # ------------------------------------------------------------------
    def _bump_activity(self, var: int) -> None:
        activity = self.activity
        activity[var] += self._activity_increment
        if activity[var] > 1e100:
            self._rescale_activities()
        elif self._use_heap and self._heap_index[var] >= 0:
            self._heap_sift_up(self._heap_index[var])

    def _rescale_activities(self) -> None:
        """Scale every activity (and the increment) down by 1e-100.

        A uniform rescale preserves ordering, but the heap is rebuilt in
        place anyway: it is rare, cheap, and immune to float rounding
        collapsing distinct activities into ties.
        """
        activity = self.activity
        for index in range(1, self.num_vars + 1):
            activity[index] *= 1e-100
        self._activity_increment *= 1e-100
        if self._use_heap:
            self._heap_rebuild()

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay

    def _heap_insert(self, var: int) -> None:
        if self._heap_index[var] >= 0:
            return
        heap = self._heap
        heap.append(var)
        position = len(heap) - 1
        self._heap_index[var] = position
        self._heap_sift_up(position)

    def _heap_sift_up(self, position: int) -> None:
        heap = self._heap
        index = self._heap_index
        activity = self.activity
        var = heap[position]
        var_activity = activity[var]
        while position > 0:
            parent_position = (position - 1) >> 1
            parent = heap[parent_position]
            parent_activity = activity[parent]
            if parent_activity > var_activity or (
                parent_activity == var_activity and parent < var
            ):
                break
            heap[position] = parent
            index[parent] = position
            position = parent_position
        heap[position] = var
        index[var] = position

    def _heap_sift_down(self, position: int) -> None:
        heap = self._heap
        index = self._heap_index
        activity = self.activity
        size = len(heap)
        var = heap[position]
        var_activity = activity[var]
        while True:
            child_position = (position << 1) + 1
            if child_position >= size:
                break
            child = heap[child_position]
            child_activity = activity[child]
            right_position = child_position + 1
            if right_position < size:
                right = heap[right_position]
                right_activity = activity[right]
                if right_activity > child_activity or (
                    right_activity == child_activity and right < child
                ):
                    child_position = right_position
                    child = right
                    child_activity = right_activity
            if var_activity > child_activity or (
                var_activity == child_activity and var < child
            ):
                break
            heap[position] = child
            index[child] = position
            position = child_position
        heap[position] = var
        index[var] = position

    def _heap_rebuild(self) -> None:
        """Restore the heap invariant in place after a bulk activity change."""
        for position in range((len(self._heap) >> 1) - 1, -1, -1):
            self._heap_sift_down(position)

    def _heap_purge_assigned(self) -> None:
        """Drop assigned variables from the heap in one O(n) pass.

        Called once per solve call after root/assumption propagation, which
        typically assigns a large fraction of the variables: purging them
        here replaces hundreds of lazy discard-pops (each an O(log n)
        sift-down) with a single filter + heapify.  Lazy deletion still
        handles variables assigned during the search itself.
        """
        heap = self._heap
        index = self._heap_index
        values = self._lit_values
        kept: list[int] = []
        for var in heap:
            if values[var] == _UNASSIGNED:
                index[var] = len(kept)
                kept.append(var)
            else:
                index[var] = -1
        removed = len(heap) - len(kept)
        if not removed:
            return
        self.heap_discards += removed
        self._heap = kept
        self._heap_rebuild()

    def _heap_refill(self) -> None:
        """Insert every unassigned variable missing from the heap.

        The counterpart of the deferred end-of-solve backtrack: rather than
        reinserting hundreds of variables that the next call's root
        propagation re-assigns straight away (each then costing a lazy
        discard-pop), the heap is topped up here — after assumptions have
        propagated — with only the variables that are actually available
        for decisions."""
        values = self._lit_values
        heap_index = self._heap_index
        for var in range(1, self.num_vars + 1):
            if values[var] == _UNASSIGNED and heap_index[var] < 0:
                self._heap_insert(var)
        self._heap_stale = False

    def _exit_backtrack(self) -> None:
        """Backtrack to level 0 on a solve-call exit, deferring heap
        reinsertion to the next call's :meth:`_heap_refill`."""
        if self._use_heap:
            self._heap_stale = True
            self._defer_reinsert = True
            try:
                self._cancel_until(0)
            finally:
                self._defer_reinsert = False
        else:
            self._cancel_until(0)

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        limit = self.trail_limits[target_level]
        values = self._lit_values
        reason = self.reason
        trail = self.trail
        use_heap = self._use_heap and not self._defer_reinsert
        heap_index = self._heap_index
        polarity = self.polarity
        missing: list[int] = []
        for position in range(len(trail) - 1, limit - 1, -1):
            lit = trail[position]
            values[lit] = _UNASSIGNED
            values[-lit] = _UNASSIGNED
            var = lit if lit > 0 else -lit
            # Phase saving happens at UNASSIGN time (MiniSat-style): a
            # variable's phase is only ever consulted while it is
            # unassigned, so saving the last sign here is observably
            # identical to saving on every propagation-time assignment —
            # and propagation assigns far more often than backtracking
            # unassigns at level 0.
            polarity[var] = lit > 0
            reason[var] = None
            # Reinsert into the decision heap: every unassigned variable must
            # be present (lazy deletion only ever removes assigned ones).
            if use_heap and heap_index[var] < 0:
                missing.append(var)
        del trail[limit:]
        del self.trail_limits[target_level:]
        self.queue_head = len(trail)
        for var in missing:
            # Per-variable sift-up is amortized O(1) here: most reinserted
            # variables land near the leaves, so this beats re-heapifying
            # the whole heap even for end-of-solve backtracks.
            self._heap_insert(var)

    # ------------------------------------------------------------------
    # Decision heuristic
    # ------------------------------------------------------------------
    def _pick_branch_variable(self) -> int | None:
        """The unassigned variable with maximum (activity, -index), or None.

        Heap policy: pop until an unassigned variable surfaces, lazily
        discarding variables that were assigned while queued.  The tie-break
        toward smaller variable indices makes the result identical to the
        linear fallback's scan under any activity state.
        """
        if not self._use_heap:
            return self._pick_branch_variable_linear()
        heap = self._heap
        index = self._heap_index
        values = self._lit_values
        while heap:
            var = heap[0]
            index[var] = -1
            last = heap.pop()
            if heap:
                heap[0] = last
                index[last] = 0
                self._heap_sift_down(0)
            if values[var] == _UNASSIGNED:
                return var
            self.heap_discards += 1
        return None

    def _pick_branch_variable_linear(self) -> int | None:
        """The historical O(num_vars) activity scan (benchmark fallback)."""
        best_var = None
        best_activity = -1.0
        activity = self.activity
        values = self._lit_values
        for var in range(1, self.num_vars + 1):
            if values[var] == _UNASSIGNED and activity[var] > best_activity:
                best_var = var
                best_activity = activity[var]
        return best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, assumptions=(), control: SolveControl | None = None) -> SolverResult:
        """Decide satisfiability under the given assumption literals.

        May be called repeatedly; learnt clauses and heuristic state persist
        between calls.  The returned statistics are per-call deltas — the
        cumulative counters stay available as ``solver.conflicts`` etc.

        ``control`` bounds the call: the solver polls it on a conflict- and
        decision-count cadence (see :class:`SolveControl`) and raises
        :class:`SolverInterrupted` when it fires, after backtracking to level
        0 so the instance stays reusable.
        """
        self.num_solves += 1
        start = (
            self.conflicts,
            self.decisions,
            self.propagations,
            self.blocker_hits,
            self.heap_discards,
            self.binary_subsumed,
            self.learnt_deleted,
        )
        if control is not None:
            reason = control.interrupted(0)
            if reason is not None:
                raise SolverInterrupted(reason)

        def _result(satisfiable: bool, model=None) -> SolverResult:
            return SolverResult(
                satisfiable,
                model,
                self.conflicts - start[0],
                self.decisions - start[1],
                self.propagations - start[2],
                self.blocker_hits - start[3],
                self.heap_discards - start[4],
                self.binary_subsumed - start[5],
                self.learnt_deleted - start[6],
            )

        if self._contradiction:
            return _result(False)

        conflict = self._propagate()
        if conflict is not None:
            # A conflict while propagating the root trail is independent of
            # any assumptions: the formula itself is unsatisfiable.  Latch it,
            # because propagation cannot rediscover a consumed conflict.
            self._contradiction = True
            return _result(False)

        root_level = 0
        for lit in assumptions:
            if self._value(lit) == _FALSE:
                self._exit_backtrack()
                return _result(False)
            if self._value(lit) == _UNASSIGNED:
                self.trail_limits.append(len(self.trail))
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    self._exit_backtrack()
                    return _result(False)
        root_level = self._decision_level()
        if self._use_heap:
            if self._heap_stale:
                # The previous call's exit deferred reinsertion; now that
                # the root trail and assumptions have propagated, top up the
                # heap with only the variables still available for
                # decisions (the re-assigned majority never round-trips).
                self._heap_refill()
            elif 2 * len(self.trail) >= len(self._heap):
                # Purge assigned variables only when they are a large
                # fraction of the heap: the O(heap) filter + heapify beats
                # lazy discard-pops then, but on a shared session whose
                # encoding spans many task formulas the active subproblem
                # is a sliver of the variable range and the purge would
                # cost more than the discards it avoids.
                self._heap_purge_assigned()

        conflicts_until_restart = 100 * _luby(self._restart_count + 1)
        conflicts_since_restart = 0
        max_learnt = self.max_learnt
        if max_learnt is None:
            max_learnt = max(1000, len(self.clauses) // 3)
        # Control polling is amortised: conflicts weigh 8 search events,
        # decisions 1, and the control is consulted every check_interval
        # events — cheap enough for the hot loop, tight enough that a cancel
        # or deadline lands within one slice.
        events_since_check = 0
        check_interval = control.check_interval if control is not None else 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if (
                    self.max_conflicts is not None
                    and self.conflicts - start[0] > self.max_conflicts
                ):
                    self._exit_backtrack()
                    raise RuntimeError("conflict budget exhausted")
                if control is not None:
                    events_since_check += 8
                    if events_since_check >= check_interval:
                        events_since_check = 0
                        reason = control.interrupted(self.conflicts - start[0])
                        if reason is not None:
                            self._exit_backtrack()
                            raise SolverInterrupted(reason)
                if self._decision_level() <= root_level:
                    if root_level == 0:
                        # Conflict below any assumption: permanently UNSAT.
                        self._contradiction = True
                    self._exit_backtrack()
                    return _result(False)
                learnt, backjump_level, lbd = self._analyze(conflict)
                self._cancel_until(max(backjump_level, root_level))
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    index = self._attach_clause(learnt, learnt=True, lbd=lbd)
                    self._enqueue(learnt[0], index)
                self._decay_activities()
            else:
                if conflicts_since_restart >= conflicts_until_restart:
                    conflicts_since_restart = 0
                    self._restart_count += 1
                    conflicts_until_restart = 100 * _luby(self._restart_count + 1)
                    self._cancel_until(root_level)
                    continue
                if self.num_learnt > max_learnt:
                    self._reduce_learnt()
                    max_learnt = int(max_learnt * 1.1)
                if control is not None:
                    events_since_check += 1
                    if events_since_check >= check_interval:
                        events_since_check = 0
                        reason = control.interrupted(self.conflicts - start[0])
                        if reason is not None:
                            self._exit_backtrack()
                            raise SolverInterrupted(reason)
                variable = self._pick_branch_variable()
                if variable is None:
                    values = self._lit_values
                    model = {
                        var: values[var] == _TRUE
                        for var in range(1, self.num_vars + 1)
                    }
                    self._exit_backtrack()
                    return _result(True, model)
                self.decisions += 1
                self.trail_limits.append(len(self.trail))
                preferred = variable if self.polarity[variable] else -variable
                self._enqueue(preferred, None)
