"""High-level check-sat / check-valid interface over the encoder and solver.

This mirrors the role Z3's Python API plays in the original Veri-QEC: the
verifier builds a classical formula, asks whether it is satisfiable (bug
hunting) or valid (verification), and reads back a model (counterexample)
when one exists.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.classical.expr import BoolExpr, Not
from repro.smt.encoder import FormulaEncoder
from repro.smt.solver import SATSolver

__all__ = ["SMTCheck", "check_formula", "check_valid"]


@dataclass
class SMTCheck:
    """Result of a satisfiability or validity check."""

    status: str  # "sat" or "unsat"
    model: dict[str, bool] | None = None
    elapsed_seconds: float = 0.0
    num_variables: int = 0
    num_clauses: int = 0
    conflicts: int = 0
    decisions: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


def _extract_model(encoder: FormulaEncoder, raw_model: dict[int, bool]) -> dict[str, bool]:
    named = {}
    for name, var in encoder.named_literals().items():
        named[name] = bool(raw_model.get(var, False))
    return named


def check_formula(
    formula: BoolExpr,
    assumptions: dict[str, bool] | None = None,
    encoder: FormulaEncoder | None = None,
) -> SMTCheck:
    """Decide satisfiability of ``formula``; a model names program variables.

    ``assumptions`` fixes the value of named boolean variables, which is how
    the parallel driver and the "fixed error pattern" functionality pin down
    selected error indicators.
    """
    start = time.perf_counter()
    enc = encoder or FormulaEncoder()
    enc.assert_formula(formula)
    assumption_literals = []
    for name, value in (assumptions or {}).items():
        literal = enc.variable(name)
        assumption_literals.append(literal if value else -literal)
    solver = SATSolver(enc.cnf)
    result = solver.solve(assumptions=assumption_literals)
    elapsed = time.perf_counter() - start
    return SMTCheck(
        status="sat" if result.satisfiable else "unsat",
        model=_extract_model(enc, result.model) if result.satisfiable else None,
        elapsed_seconds=elapsed,
        num_variables=enc.cnf.num_vars,
        num_clauses=enc.cnf.num_clauses,
        conflicts=result.conflicts,
        decisions=result.decisions,
    )


def check_valid(formula: BoolExpr, assumptions: dict[str, bool] | None = None) -> SMTCheck:
    """Decide validity of ``formula`` by refuting its negation.

    ``status == "unsat"`` means the formula is valid (the property verifies);
    a ``sat`` result carries a counterexample model.
    """
    return check_formula(Not(formula), assumptions=assumptions)
