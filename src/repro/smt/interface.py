"""High-level check-sat / check-valid interface over the encoder and solver.

This mirrors the role Z3's Python API plays in the original Veri-QEC: the
verifier builds a classical formula, asks whether it is satisfiable (bug
hunting) or valid (verification), and reads back a model (counterexample)
when one exists.

:class:`SolveSession` is the persistent, incremental variant: one encoder and
one live CDCL solver shared across many closely related queries.  Clauses
added between checks are attached to the running solver (never re-encoded or
re-propagated from scratch), learnt clauses and heuristic state survive, and
selector-guarded constraints allow one base encoding to serve many
weight/distance thresholds.  Every layer above — the parallel enumeration
driver, the engine's trial-distance walk, the batch sweeps — routes its
queries through a session.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro import sanitize
from repro.classical.expr import BoolExpr, IntConst, IntExpr, Not
from repro.smt.encoder import FormulaEncoder
from repro.smt.solver import SATSolver, SolveControl

__all__ = ["SMTCheck", "SolveControl", "SolveSession", "check_formula", "check_valid"]


@dataclass
class SMTCheck:
    """Result of a satisfiability or validity check.

    Solver statistics (``conflicts``, ``decisions``, ``propagations``) are
    per-check deltas; a session's running totals live in
    :meth:`SolveSession.stats` and are mirrored into ``metadata`` under
    ``"session"`` by :meth:`SolveSession.check`.
    """

    status: str  # "sat" or "unsat"
    model: dict[str, bool] | None = None
    elapsed_seconds: float = 0.0
    num_variables: int = 0
    num_clauses: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    #: Watcher visits resolved by the cached blocker literal alone and
    #: decision-heap pops that lazily discarded an assigned variable —
    #: per-check deltas like the counters above (0 on pre-overhaul paths
    #: that do not report them).
    blocker_hits: int = 0
    heap_discards: int = 0
    #: Learnt-clause literals removed by binary self-subsumption during
    #: conflict analysis (glucose-style resolution against the dedicated
    #: binary watcher arrays); a per-check delta like the counters above.
    binary_subsumed: int = 0
    #: Learnt clauses deleted by clause-database reduction during this check —
    #: surfaced so eviction is observable instead of happening silently inside
    #: the solver; a per-check delta like the counters above.
    learnt_evicted: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


def _extract_model(encoder: FormulaEncoder, raw_model: dict[int, bool]) -> dict[str, bool]:
    named = {}
    for name, var in encoder.named_literals().items():
        named[name] = bool(raw_model.get(var, False))
    return named


class SolveSession:
    """A persistent incremental solving session over one growing encoding.

    The session owns a :class:`FormulaEncoder` and lazily constructs one
    :class:`SATSolver` at the first :meth:`check`.  Formulas asserted (or
    guard constraints added) after that point are synchronised into the live
    solver clause-by-clause, so the solver keeps its learnt clauses, variable
    activities and saved phases across the whole lifetime of the session.

    Assumptions come in two named forms: ``assumptions`` fixes program
    variables (the enumeration subtasks of Appendix D.4), ``select``
    activates selector guards added with :meth:`add_guard` /
    :meth:`add_weight_guard` (the trial-distance mechanism).
    """

    def __init__(self, formula: BoolExpr | None = None, encoder: FormulaEncoder | None = None,
                 max_conflicts: int | None = None):
        self.encoder = encoder or FormulaEncoder()
        self.max_conflicts = max_conflicts
        # Armed only under REPRO_SANITIZE: detects two threads driving this
        # session at once (the race lane affinity must rule out).
        self._entry_guard = sanitize.new_entry_guard("SolveSession")
        self._solver: SATSolver | None = None
        self._synced_clauses = 0
        self._synced_vars = 0
        self.num_checks = 0
        self.elapsed_seconds = 0.0
        if formula is not None:
            self.assert_formula(formula)

    # ------------------------------------------------------------------
    # Building up the encoding
    # ------------------------------------------------------------------
    def assert_formula(self, formula: BoolExpr) -> None:
        """Unconditionally constrain the session's formula."""
        self.encoder.assert_formula(formula)

    def add_guard(self, name: str, formula: BoolExpr) -> str:
        """Add ``formula`` guarded by selector ``name``; activate via ``select``."""
        self.encoder.assert_formula_if(name, formula)
        return name

    def add_weight_guard(self, name: str, weight: IntExpr, bound: int) -> str:
        """Add the cardinality constraint ``weight <= bound`` under selector ``name``.

        Repeated guards over the same ``weight`` expression share one unary
        counter, which is what lets a single base encoding serve every trial
        distance of a distance walk.
        """
        self.encoder.assert_le_if(name, weight, IntConst(bound))
        return name

    def add_weight_lower_guard(self, name: str, weight: IntExpr, bound: int) -> str:
        """Add ``weight >= bound`` under selector ``name`` (binary-search distance).

        Shares the same unary counter as the upper-bound guards over the same
        ``weight`` expression, so narrowing a query to ``lo <= weight <= mid``
        costs two selector clauses, not a re-encoding.
        """
        self.encoder.assert_ge_if(name, weight, IntConst(bound))
        return name

    def retire_guard(self, name: str) -> int:
        """Permanently deactivate selector ``name`` and erase its clauses.

        The selector's negation is asserted at the root, so every constraint
        guarded by it is permanently satisfied; the live solver then erases
        those clauses (and strips other root-falsified literals), which is
        what keeps long-lived shared sessions from accumulating stale guards.
        A retired selector must never be selected again — callers allocate a
        fresh name if the same constraint is re-asserted later.  Returns the
        number of clauses the solver erased (0 when no solver is live yet).
        """
        literal = self.encoder.selector(name)
        self.encoder.cnf.add_clause([-literal])
        if self._solver is None:
            return 0
        self._sync_solver()
        return self._solver.erase_satisfied()

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _sync_solver(self) -> SATSolver:
        cnf = self.encoder.cnf
        if self._solver is None:
            self._solver = SATSolver(cnf, max_conflicts=self.max_conflicts)
            self._synced_vars = cnf.num_vars
            self._synced_clauses = cnf.num_clauses
            return self._solver
        if cnf.num_vars > self._synced_vars:
            self._solver.grow_variables(cnf.num_vars)
            self._synced_vars = cnf.num_vars
        while self._synced_clauses < cnf.num_clauses:
            self._solver.add_clause(cnf.clauses[self._synced_clauses])
            self._synced_clauses += 1
        return self._solver

    @sanitize.entry_guarded
    def check(
        self,
        assumptions: dict[str, bool] | None = None,
        select: tuple[str, ...] | list[str] = (),
        control: SolveControl | None = None,
    ) -> SMTCheck:
        """Decide satisfiability under the given assumptions and selectors.

        ``control`` bounds the underlying solve call (deadline / cancellation
        / conflict budget); an interrupted call raises
        :class:`~repro.smt.solver.SolverInterrupted` and leaves the session
        fully reusable.
        """
        start = time.perf_counter()
        literals = []
        for name, value in (assumptions or {}).items():
            literal = self.encoder.variable(name)
            literals.append(literal if value else -literal)
        for name in select:
            literals.append(self.encoder.selector(name))
        solver = self._sync_solver()
        result = solver.solve(assumptions=literals, control=control)
        elapsed = time.perf_counter() - start
        self.num_checks += 1
        self.elapsed_seconds += elapsed
        return SMTCheck(
            status="sat" if result.satisfiable else "unsat",
            model=_extract_model(self.encoder, result.model) if result.satisfiable else None,
            elapsed_seconds=elapsed,
            num_variables=self.encoder.cnf.num_vars,
            num_clauses=self.encoder.cnf.num_clauses,
            conflicts=result.conflicts,
            decisions=result.decisions,
            propagations=result.propagations,
            blocker_hits=result.blocker_hits,
            heap_discards=result.heap_discards,
            binary_subsumed=result.binary_subsumed,
            learnt_evicted=result.learnt_evicted,
            metadata={"session": self.stats()},
        )

    # ------------------------------------------------------------------
    # Warm-cache support: fingerprinting + learnt-clause round-tripping
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the session's current CNF (variables + clauses).

        Two sessions whose encodings were built identically (same formulas,
        same order) share a fingerprint, which is the safety condition for
        re-absorbing serialized learnt clauses: a learnt clause is only a
        consequence of *this exact* clause database.
        """
        cnf = self.encoder.cnf
        digest = hashlib.sha256()
        digest.update(f"v{cnf.num_vars}".encode())
        for clause in cnf.clauses:
            digest.update(",".join(map(str, clause)).encode())
            digest.update(b";")
        return digest.hexdigest()

    def learnt_clauses(self, max_var: int | None = None) -> list[list[int]]:
        """Learnt clauses of the live solver (empty before the first check)."""
        if self._solver is None:
            return []
        return self._solver.learnt_clauses(max_var)

    def learnt_clauses_meta(self, max_var: int | None = None) -> list[tuple[list[int], int]]:
        """Learnt clauses paired with their LBD (empty before the first check).

        The clause store keeps the LBD so eviction can rank entries by
        usefulness; plain JSON warm caches use :meth:`learnt_clauses`.
        """
        if self._solver is None:
            return []
        return self._solver.learnt_clauses_meta(max_var)

    @sanitize.entry_guarded
    def absorb_learnt(self, clauses) -> int:
        """Re-attach serialized learnt clauses; returns how many were kept.

        Only sound when the session's CNF matches the one the clauses were
        learnt against — callers gate this on :meth:`fingerprint`.
        """
        solver = self._sync_solver()
        absorbed = 0
        for clause in clauses:
            if solver.absorb_learnt(clause):
                absorbed += 1
        return absorbed

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative statistics over every check run through this session."""
        solver = self._solver
        stats = {
            "checks": self.num_checks,
            "conflicts": solver.conflicts if solver else 0,
            "decisions": solver.decisions if solver else 0,
            "propagations": solver.propagations if solver else 0,
            "learnt_kept": solver.num_learnt if solver else 0,
            "learnt_deleted": solver.learnt_deleted if solver else 0,
            "reductions": solver.reductions if solver else 0,
            "minimized_literals": solver.minimized_literals if solver else 0,
            "elapsed_seconds": self.elapsed_seconds,
        }
        # New counters follow the only-when-nonzero rule: a key appears
        # once the underlying behaviour has actually happened, so sessions
        # that never erase a clause (or, with the linear decision fallback,
        # never touch the heap) keep their historical schema.
        if solver is not None and solver.erased_clauses:
            stats["erased_clauses"] = solver.erased_clauses
        if solver is not None and solver.blocker_hits:
            stats["blocker_hits"] = solver.blocker_hits
        if solver is not None and solver.heap_discards:
            stats["heap_discards"] = solver.heap_discards
        if solver is not None and solver.binary_subsumed:
            stats["binary_subsumed"] = solver.binary_subsumed
        if solver is not None and solver.learnt_deleted:
            # Alias of ``learnt_deleted`` under the name the eviction
            # observability chain uses (SolverStats events, GET /stats);
            # only-when-nonzero so quiet sessions keep their schema.
            stats["learnt_evicted"] = solver.learnt_deleted
        return stats


def check_formula(
    formula: BoolExpr,
    assumptions: dict[str, bool] | None = None,
    encoder: FormulaEncoder | None = None,
) -> SMTCheck:
    """Decide satisfiability of ``formula``; a model names program variables.

    ``assumptions`` fixes the value of named boolean variables, which is how
    the parallel driver and the "fixed error pattern" functionality pin down
    selected error indicators.  One-shot convenience over a throwaway
    :class:`SolveSession`.
    """
    session = SolveSession(formula, encoder=encoder)
    return session.check(assumptions)


def check_valid(formula: BoolExpr, assumptions: dict[str, bool] | None = None) -> SMTCheck:
    """Decide validity of ``formula`` by refuting its negation.

    ``status == "unsat"`` means the formula is valid (the property verifies);
    a ``sat`` result carries a counterexample model.
    """
    return check_formula(Not(formula), assumptions=assumptions)
