"""Encoding classical expressions into CNF.

The verification conditions produced by the VC generator are boolean
combinations of

* boolean program variables (error indicators, syndromes, corrections),
* parities (XOR chains) coming from phase bookkeeping,
* cardinality constraints ``sum of indicators <= bound`` and comparisons
  between two sums (the decoder condition P_f), and
* uninterpreted decoder outputs ``f_z,i(s)``.

Everything is reduced to CNF with a Tseitin transformation; sums are encoded
with a bidirectional sequential counter producing unary "at least j" bits so
that comparisons remain correct in any boolean context (negated, nested under
implications, ...).
"""

from __future__ import annotations

from repro.classical.expr import (
    Add,
    And,
    BoolConst,
    BoolExpr,
    BoolToInt,
    BoolVar,
    Expr,
    Iff,
    Implies,
    IntConst,
    IntEq,
    IntExpr,
    IntLe,
    IntVar,
    Not,
    Or,
    UFBool,
    Xor,
)
from repro.smt.cnf import CNF

__all__ = ["FormulaEncoder"]


class FormulaEncoder:
    """Stateful encoder mapping :class:`BoolExpr` trees onto a CNF."""

    def __init__(self) -> None:
        self.cnf = CNF()
        self._cache: dict[Expr, int] = {}
        self._counter_cache: dict[tuple[int, ...], list[int]] = {}
        self._constant_true: int | None = None

    # ------------------------------------------------------------------
    # Variables and constants
    # ------------------------------------------------------------------
    def variable(self, name: str) -> int:
        """The CNF literal of a named boolean program variable."""
        return self.cnf.var_for(("var", name))

    def named_literals(self) -> dict[str, int]:
        """Mapping from program variable names to CNF variables."""
        result = {}
        for key, var in self.cnf.named_variables().items():
            if isinstance(key, tuple) and key and key[0] == "var":
                result[key[1]] = var
        return result

    def selector(self, name: str) -> int:
        """The CNF literal of a named selector (assumption guard).

        Selectors live in their own namespace so they never show up in
        :meth:`named_literals` (and therefore never pollute extracted models).
        Asserting a selector literal as an assumption activates every
        constraint guarded by it; leaving it free deactivates them, because
        the solver may simply set the selector false.
        """
        return self.cnf.var_for(("sel", name))

    def assert_formula_if(self, name: str, expr: BoolExpr) -> int:
        """Constrain ``selector(name) -> expr`` and return the selector literal."""
        guard = self.selector(name)
        self.cnf.add_clause([-guard, self.encode(expr)])
        return guard

    def assert_le_if(self, name: str, left: IntExpr, right: IntExpr) -> int:
        """Constrain ``selector(name) -> (left <= right)``; return the selector.

        The comparison reuses the shared unary counters, so emitting guards
        for many thresholds over the same sum (one per trial distance, say)
        costs one counter construction plus one clause per guard.
        """
        guard = self.selector(name)
        self.cnf.add_clause([-guard, self.encode(IntLe(left, right))])
        return guard

    def assert_ge_if(self, name: str, left: IntExpr, right: IntExpr) -> int:
        """Constrain ``selector(name) -> (left >= right)``; return the selector.

        The guarded *lower* bound is what lets distance discovery binary-search
        the trial distance: once every weight up to ``lo - 1`` is refuted, a
        query may be narrowed to ``lo <= weight <= mid`` without giving up the
        shared counter encoding (``left >= right`` is ``right <= left``, so
        the same unary counter bits serve both directions).
        """
        guard = self.selector(name)
        self.cnf.add_clause([-guard, self.encode(IntLe(right, left))])
        return guard

    def true_literal(self) -> int:
        if self._constant_true is None:
            self._constant_true = self.cnf.new_var(("const", True))
            self.cnf.add_clause([self._constant_true])
        return self._constant_true

    def false_literal(self) -> int:
        return -self.true_literal()

    # ------------------------------------------------------------------
    # Gate helpers (all bidirectional)
    # ------------------------------------------------------------------
    def _mk_and(self, literals: list[int]) -> int:
        literals = [lit for lit in literals if lit != self.true_literal()]
        if any(lit == self.false_literal() for lit in literals):
            return self.false_literal()
        if not literals:
            return self.true_literal()
        if len(literals) == 1:
            return literals[0]
        output = self.cnf.new_var()
        for lit in literals:
            self.cnf.add_clause([-output, lit])
        self.cnf.add_clause([output] + [-lit for lit in literals])
        return output

    def _mk_or(self, literals: list[int]) -> int:
        literals = [lit for lit in literals if lit != self.false_literal()]
        if any(lit == self.true_literal() for lit in literals):
            return self.true_literal()
        if not literals:
            return self.false_literal()
        if len(literals) == 1:
            return literals[0]
        output = self.cnf.new_var()
        for lit in literals:
            self.cnf.add_clause([-lit, output])
        self.cnf.add_clause([-output] + list(literals))
        return output

    def _mk_xor2(self, a: int, b: int) -> int:
        output = self.cnf.new_var()
        self.cnf.add_clause([-output, a, b])
        self.cnf.add_clause([-output, -a, -b])
        self.cnf.add_clause([output, -a, b])
        self.cnf.add_clause([output, a, -b])
        return output

    def _mk_xor(self, literals: list[int]) -> int:
        if not literals:
            return self.false_literal()
        accumulator = literals[0]
        for lit in literals[1:]:
            accumulator = self._mk_xor2(accumulator, lit)
        return accumulator

    # ------------------------------------------------------------------
    # Boolean expression encoding
    # ------------------------------------------------------------------
    def encode(self, expr: BoolExpr) -> int:
        """Return a CNF literal equivalent to ``expr``."""
        if expr in self._cache:
            return self._cache[expr]
        literal = self._encode_uncached(expr)
        self._cache[expr] = literal
        return literal

    def _encode_uncached(self, expr: BoolExpr) -> int:
        if isinstance(expr, BoolConst):
            return self.true_literal() if expr.value else self.false_literal()
        if isinstance(expr, BoolVar):
            return self.variable(expr.name)
        if isinstance(expr, UFBool):
            arg_literals = tuple(self.encode(arg) for arg in expr.args)
            return self.cnf.var_for(("uf", expr.name, arg_literals))
        if isinstance(expr, Not):
            return -self.encode(expr.operand)
        if isinstance(expr, And):
            return self._mk_and([self.encode(op) for op in expr.operands])
        if isinstance(expr, Or):
            return self._mk_or([self.encode(op) for op in expr.operands])
        if isinstance(expr, Xor):
            return self._mk_xor([self.encode(op) for op in expr.operands])
        if isinstance(expr, Implies):
            return self._mk_or([-self.encode(expr.antecedent), self.encode(expr.consequent)])
        if isinstance(expr, Iff):
            return -self._mk_xor2(self.encode(expr.left), self.encode(expr.right))
        if isinstance(expr, IntLe):
            return self._encode_le(expr.left, expr.right)
        if isinstance(expr, IntEq):
            first = self._encode_le(expr.left, expr.right)
            second = self._encode_le(expr.right, expr.left)
            return self._mk_and([first, second])
        raise TypeError(f"cannot encode expression of type {type(expr).__name__}")

    def assert_formula(self, expr: BoolExpr) -> None:
        """Constrain the CNF so that ``expr`` must hold."""
        self.cnf.add_clause([self.encode(expr)])

    # ------------------------------------------------------------------
    # Integer sums and comparisons
    # ------------------------------------------------------------------
    def _flatten_sum(self, expr: IntExpr) -> tuple[list[int], int]:
        """Flatten an integer expression into (boolean literals, constant offset)."""
        if isinstance(expr, IntConst):
            return [], expr.value
        if isinstance(expr, BoolToInt):
            return [self.encode(expr.operand)], 0
        if isinstance(expr, Add):
            literals: list[int] = []
            constant = 0
            for term in expr.terms:
                term_literals, term_constant = self._flatten_sum(term)
                literals.extend(term_literals)
                constant += term_constant
            return literals, constant
        if isinstance(expr, IntVar):
            raise TypeError(
                f"free integer variable {expr.name!r} cannot be encoded; "
                "QEC verification conditions only contain sums of 0/1 indicators"
            )
        raise TypeError(f"cannot flatten integer expression of type {type(expr).__name__}")

    def _counter_at_least(self, literals: list[int], max_threshold: int) -> list[int]:
        """Unary counter bits ``ge[j]`` (1-indexed) with ``ge[j] <-> sum >= j``.

        The construction is the classic sequential counter, built out of the
        bidirectional AND/OR gates above so the bits can be used under any
        polarity.
        """
        key = tuple(literals)
        cached = self._counter_cache.get(key, [])
        threshold = min(max_threshold, len(literals))
        if len(cached) >= threshold:
            return cached[:threshold]
        # (Re)build the full counter; reuse is common enough that building all
        # thresholds once is cheaper than incremental extension.
        previous: list[int] = []
        for index, lit in enumerate(literals):
            width = min(index + 1, len(literals))
            current: list[int] = []
            for j in range(1, width + 1):
                at_least_without = previous[j - 1] if j - 1 < len(previous) else None
                needs_previous = previous[j - 2] if j >= 2 else None
                if j == 1:
                    with_this = lit
                else:
                    if needs_previous is None:
                        with_this = self.false_literal()
                    else:
                        with_this = self._mk_and([lit, needs_previous])
                if at_least_without is None:
                    current.append(with_this)
                else:
                    current.append(self._mk_or([at_least_without, with_this]))
            previous = current
        self._counter_cache[key] = previous
        return previous[:threshold]

    def _threshold_literal(self, counter: list[int], threshold: int) -> int:
        """Literal for ``sum >= threshold`` given the counter bits."""
        if threshold <= 0:
            return self.true_literal()
        if threshold > len(counter):
            return self.false_literal()
        return counter[threshold - 1]

    def _encode_le(self, left: IntExpr, right: IntExpr) -> int:
        left_literals, left_constant = self._flatten_sum(left)
        right_literals, right_constant = self._flatten_sum(right)
        delta = right_constant - left_constant
        # sum(L) <= sum(R) + delta  <=>  for all j: sum(L) >= j  ->  sum(R) >= j - delta
        left_counter = self._counter_at_least(left_literals, len(left_literals))
        right_counter = self._counter_at_least(right_literals, len(right_literals))
        # The constraint must hold for j = 0 as well (sum(L) >= 0 is always
        # true), which carries the purely-constant part of the comparison.
        conjuncts: list[int] = [self._threshold_literal(right_counter, -delta)]
        for j in range(1, len(left_literals) + 1):
            antecedent = self._threshold_literal(left_counter, j)
            consequent = self._threshold_literal(right_counter, j - delta)
            conjuncts.append(self._mk_or([-antecedent, consequent]))
        return self._mk_and(conjuncts)
