"""Parallel SMT checking by enumeration-based task splitting (Appendix D.4).

The general verification task quantifies over every error configuration; its
SAT encoding can be split into subtasks by *enumerating* the values of a few
selected error indicators and handing the residual formula to the solver.
The termination heuristic for the enumeration is the paper's

    E_T = 2 * d * N(ones) + N(bits) > n

where ``N(bits)`` counts enumerated indicators and ``N(ones)`` counts the
ones among them.  Subtasks run across a process pool; as in the paper the
driver cancels outstanding work as soon as one subtask reports a
counterexample.

Each worker process holds ONE live :class:`~repro.smt.interface.SolveSession`
for the shared base encoding: every subtask is an incremental
``solve(assumptions)`` call on that session, so learnt clauses and heuristic
state accumulate across subtasks instead of being rebuilt per query.
:class:`IncrementalSplitSession` exposes the same machinery as a long-lived
object supporting repeated guarded checks (the engine's trial-distance walk),
with selector-guarded weight bounds broadcast lazily to the workers.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import threading
import time
import weakref
from dataclasses import dataclass, field

from repro import faults
from repro.classical.expr import BoolExpr, IntExpr
from repro.smt.interface import SMTCheck, SolveSession
from repro.smt.solver import SolveControl, SolverInterrupted

__all__ = [
    "SplitTask",
    "ParallelChecker",
    "IncrementalSplitSession",
    "generate_split_assumptions",
]


def _pool_context():
    """The multiprocessing context worker pools are created from.

    The default (fork on Linux) is fastest, but a pool-heavy process
    accumulates helper threads (result handlers, teardown watchdogs, control
    watchers) and forking a worker from such a parent can inherit a lock
    held mid-operation — the child dies or deadlocks before posting a
    result.  ``REPRO_MP_CONTEXT=forkserver`` switches to a clean forkserver
    (immune to parent thread state); it is not the library default because
    forkserver re-imports ``__main__``, which breaks interactive/stdin
    callers.  The benchmark harness — the heaviest pool cycler — opts in.
    The in-pool safety net for the default context is the bounded result
    loop in ``_check_pool_once`` plus the one-shot pool rebuild.
    """
    name = os.environ.get("REPRO_MP_CONTEXT")
    if name:
        try:
            return multiprocessing.get_context(name)
        except ValueError:
            import warnings

            warnings.warn(
                f"REPRO_MP_CONTEXT={name!r} is not a valid multiprocessing "
                "start method; falling back to the platform default",
                RuntimeWarning,
                stacklevel=2,
            )
    return multiprocessing.get_context()


# Every live worker pool is tracked here (weakly, so normal close() paths do
# not need to deregister) and terminated at interpreter exit.  This is what
# keeps a KeyboardInterrupt mid-check from leaking the pool's semaphores and
# worker processes: the exception may unwind past any try/finally, but the
# atexit hook still runs on interpreter shutdown.
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()


def _terminate_pool(pool, timeout: float = 5.0) -> None:
    """Terminate ``pool`` without risking a caller deadlock.

    ``Pool.join`` after ``terminate`` can block forever when an
    ``imap_unordered`` iteration was abandoned mid-flight (its result-handler
    thread waits on a queue nobody drains; the workers are already defunct).
    Joining from a bounded watchdog thread converts that rare deadlock into
    a short delay — the daemon thread and the atexit hook below still reap
    whatever is left at interpreter shutdown.
    """
    try:
        pool.terminate()
    except Exception:
        return
    joiner = threading.Thread(target=pool.join, daemon=True)
    joiner.start()
    joiner.join(timeout)


def _terminate_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        _terminate_pool(pool, timeout=1.0)


atexit.register(_terminate_live_pools)


class _PoolDiedError(Exception):
    """Every worker of a pool exited without posting results (fork hazard)."""


@dataclass
class SplitTask:
    """One subtask: the shared formula under fixed values for some variables."""

    assumptions: dict[str, bool]
    index: int = 0


class IncrementalSplitSession:
    """Persistent enumeration session over one base formula.

    With ``num_workers <= 1`` the subtasks run sequentially on a single
    in-process :class:`SolveSession`; otherwise a process pool is created
    whose workers each hold a live session for the base encoding.  Either
    way, :meth:`check` may be called repeatedly — with selector-guarded
    weight bounds added between calls — and the solvers retain their learnt
    clauses throughout.  Guards are broadcast to pool workers lazily (each
    payload carries the guard specs; a worker applies the ones it has not
    seen), so no explicit synchronisation round is needed.

    After a ``sat`` verdict from the pool path the outstanding subtasks are
    cancelled and the pool is discarded; a later :meth:`check` transparently
    starts a fresh pool (the usual driver stops at the first counterexample
    anyway, so this path is rare).
    """

    def __init__(
        self,
        formula: BoolExpr,
        split_variables: list[str] | tuple[str, ...] = (),
        heuristic_weight: int = 2,
        threshold: int | None = None,
        num_workers: int = 1,
        max_subtasks: int = 1024,
        session: SolveSession | None = None,
        warm_dir: str | None = None,
    ):
        self.formula = formula
        self.num_workers = num_workers
        if threshold is None:
            threshold = max(len(split_variables), 1)
        self.assumption_sets = generate_split_assumptions(
            list(split_variables), heuristic_weight, threshold, max_subtasks=max_subtasks
        )
        self._guards: list[tuple[str, str, object, object]] = []
        self._guard_names: set[str] = set()
        self._pool = None
        self._cancel_event = None
        self._fault = faults.hook("pool")
        # Warm cache: pool workers absorb serialized learnt clauses in their
        # init payload; the sequential path warm-starts its own session the
        # same way the per-code contexts do.
        self.warm_dir = warm_dir
        self.warm_absorbed = 0
        self._local: SolveSession | None = None
        self._local_base_vars = 0
        self._local_fingerprint = ""
        if num_workers <= 1 or len(self.assumption_sets) <= 1:
            owns_local = session is None
            self._local = session if session is not None else SolveSession(formula)
            if warm_dir is not None and owns_local:
                self._local_base_vars = self._local.encoder.cnf.num_vars
                self._local_fingerprint = self._local.fingerprint()
                learnt = _load_warm(warm_dir, self._local_fingerprint)
                if learnt:
                    self.warm_absorbed = self._local.absorb_learnt(learnt)
        # Cumulative statistics aggregated across every subtask and worker.
        self.total_conflicts = 0
        self.total_decisions = 0
        self.total_propagations = 0
        self.total_blocker_hits = 0
        self.total_heap_discards = 0
        self.total_binary_subsumed = 0
        self.num_checks = 0
        self.elapsed_seconds = 0.0

    # ------------------------------------------------------------------
    # Guards are idempotent by name so long-lived sessions (the engine's pool
    # manager keeps them across runs) can re-request a bound without growing
    # the broadcast list.
    def add_guard(self, name: str, formula: BoolExpr) -> str:
        if name in self._guard_names:
            return name
        self._guard_names.add(name)
        self._guards.append(("formula", name, formula, None))
        if self._local is not None:
            self._local.add_guard(name, formula)
        return name

    def add_weight_guard(self, name: str, weight: IntExpr, bound: int) -> str:
        if name in self._guard_names:
            return name
        self._guard_names.add(name)
        self._guards.append(("weight", name, weight, bound))
        if self._local is not None:
            self._local.add_weight_guard(name, weight, bound)
        return name

    def add_weight_lower_guard(self, name: str, weight: IntExpr, bound: int) -> str:
        if name in self._guard_names:
            return name
        self._guard_names.add(name)
        self._guards.append(("weight_ge", name, weight, bound))
        if self._local is not None:
            self._local.add_weight_lower_guard(name, weight, bound)
        return name

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            context = _pool_context()
            if self._cancel_event is None:
                self._cancel_event = context.Event()
            # Environment knobs ship explicitly in the init payload: under
            # forkserver the workers fork from a server whose environment
            # was frozen at server start, so inherited-env assumptions
            # (e.g. the benchmark flipping REPRO_DECISION_POLICY between
            # runs) would silently not reach them.
            worker_env = {
                key: value
                for key in ("REPRO_DECISION_POLICY",)
                if (value := os.environ.get(key)) is not None
            }
            self._pool = context.Pool(
                processes=self.num_workers,
                initializer=_worker_init,
                initargs=(self.formula, self.warm_dir, self._cancel_event,
                          worker_env),
            )
            _LIVE_POOLS.add(self._pool)
        return self._pool

    def check(
        self,
        select: tuple[str, ...] | list[str] = (),
        control: SolveControl | None = None,
    ) -> SMTCheck:
        """Decide the (guard-selected) formula across all enumeration subtasks.

        ``control`` bounds the whole check: on the sequential path it is
        handed to every subtask solve; on the pool path the deadline ships
        inside the worker payloads and cancellation is broadcast through a
        shared event the workers poll mid-solve, so a cancel lands within one
        solve-budget slice on every worker.  An interrupted check raises
        :class:`~repro.smt.solver.SolverInterrupted`; the pool and its live
        worker sessions survive and serve the next check.
        """
        start = time.perf_counter()
        self.num_checks += 1
        try:
            if self._local is not None:
                result = self._check_sequential(select, control)
            else:
                result = self._check_pool(select, control)
        finally:
            self.elapsed_seconds += time.perf_counter() - start
        result.elapsed_seconds = time.perf_counter() - start
        result.metadata["session"] = self.stats()
        return result

    def _finish(
        self,
        check: SMTCheck,
        num_variables: int,
        num_clauses: int,
        conflicts: int,
        decisions: int,
        propagations: int,
        blocker_hits: int = 0,
        heap_discards: int = 0,
        binary_subsumed: int = 0,
    ) -> SMTCheck:
        """Record a check's aggregated per-call statistics (deltas, like
        :class:`SMTCheck` everywhere else; cumulative totals are in
        :meth:`stats` and the ``"session"`` metadata entry)."""
        self.total_conflicts += conflicts
        self.total_decisions += decisions
        self.total_propagations += propagations
        self.total_blocker_hits += blocker_hits
        self.total_heap_discards += heap_discards
        self.total_binary_subsumed += binary_subsumed
        check.num_variables = num_variables
        check.num_clauses = num_clauses
        check.conflicts = conflicts
        check.decisions = decisions
        check.propagations = propagations
        check.blocker_hits = blocker_hits
        check.heap_discards = heap_discards
        check.binary_subsumed = binary_subsumed
        check.metadata["num_subtasks"] = len(self.assumption_sets)
        check.metadata["num_workers"] = self.num_workers
        return check

    def _check_sequential(self, select, control=None) -> SMTCheck:
        session = self._local
        conflicts = decisions = propagations = 0
        blocker_hits = heap_discards = binary_subsumed = 0
        last: SMTCheck | None = None
        for assumptions in self.assumption_sets:
            last = session.check(assumptions, select=select, control=control)
            conflicts += last.conflicts
            decisions += last.decisions
            propagations += last.propagations
            blocker_hits += last.blocker_hits
            heap_discards += last.heap_discards
            binary_subsumed += last.binary_subsumed
            if last.is_sat:
                break
        result = SMTCheck(status=last.status, model=last.model)
        return self._finish(
            result, last.num_variables, last.num_clauses, conflicts, decisions,
            propagations, blocker_hits, heap_discards, binary_subsumed,
        )

    def _check_pool(self, select, control=None) -> SMTCheck:
        warm_absorbed = self.warm_absorbed
        try:
            return self._check_pool_once(select, control)
        except _PoolDiedError:
            self.warm_absorbed = warm_absorbed
            # Rare fork hazard: every worker exited without posting results
            # (observed as instantly-defunct children when a pool is forked
            # from a process whose earlier pools left helper threads mid
            # teardown).  The work is deterministic and nothing was
            # consumed, so rebuild the pool once and re-dispatch.
            self.close()
            try:
                return self._check_pool_once(select, control)
            except _PoolDiedError:
                self.close()
                raise RuntimeError(
                    "worker pool died twice without returning results"
                ) from None

    def _check_pool_once(self, select, control=None) -> SMTCheck:
        pool = self._ensure_pool()
        if self._fault is not None and self._fault.fire("kill") is not None:
            # Parent-side injection: SIGKILL every live worker so the pool
            # dies exactly as an OOM-killed one would (detected below as
            # _PoolDiedError → rebuilt and retried once by _check_pool).
            # Firing counters live in this process, so the rebuilt pool
            # cannot re-trip the same rule the way a worker-side counter —
            # reset by the fork — would.
            for worker in getattr(pool, "_pool", None) or ():
                if worker.is_alive():
                    os.kill(worker.pid, signal.SIGKILL)
        self._cancel_event.clear()
        # Chunk the subtasks so the guard specs (which embed whole weight
        # expressions) are pickled once per chunk, not once per subtask; a
        # worker stops inside its chunk at the first counterexample.
        guards = tuple(self._guards)
        # The deadline and conflict budget ship inside the payloads so each
        # worker enforces them on its own live solver (the budget is
        # per-solve-call, exactly as on the serial path).
        deadline = control.deadline if control is not None else None
        budget = control.conflict_budget if control is not None else None
        chunk_count = max(1, min(len(self.assumption_sets), self.num_workers * 4))
        payloads = [
            (self.assumption_sets[index::chunk_count], tuple(select), guards,
             deadline, budget)
            for index in range(chunk_count)
        ]
        # The parent blocks on worker results, so a cancellation raised in
        # another thread is relayed to the workers by a watcher that flips
        # the shared event; the workers notice within one control slice.
        watcher_done = threading.Event()
        watcher = None
        if control is not None and control.cancelled is not None:
            def _watch() -> None:
                while not watcher_done.wait(0.02):
                    if control.interrupted():
                        self._cancel_event.set()
                        return

            watcher = threading.Thread(target=_watch, daemon=True)
            watcher.start()
        num_variables = num_clauses = 0
        conflicts = decisions = propagations = 0
        blocker_hits = heap_discards = binary_subsumed = 0
        sat_model = None
        interrupted: str | None = None
        try:
            # Bounded result consumption: ``IMapIterator.next(timeout)``
            # instead of blind iteration, so a pool whose workers all died
            # without posting results (see _check_pool) surfaces as a
            # detectable error rather than an indefinite hang.
            iterator = pool.imap_unordered(_solve_chunk_in_worker, payloads)
            remaining = len(payloads)
            while remaining:
                try:
                    status, model, stats = iterator.next(5.0)
                except multiprocessing.TimeoutError:
                    workers = getattr(pool, "_pool", None)
                    if workers is not None and not any(
                        worker.is_alive() for worker in workers
                    ):
                        raise _PoolDiedError()
                    continue
                remaining -= 1
                conflicts += stats["conflicts"]
                decisions += stats["decisions"]
                propagations += stats["propagations"]
                blocker_hits += stats.get("blocker_hits", 0)
                heap_discards += stats.get("heap_discards", 0)
                binary_subsumed += stats.get("binary_subsumed", 0)
                num_variables = max(num_variables, stats["num_variables"])
                num_clauses = max(num_clauses, stats["num_clauses"])
                self.warm_absorbed += stats.get("warm_absorbed", 0)
                if status == "interrupted":
                    interrupted = model if isinstance(model, str) else "cancelled"
                    continue
                if status == "sat":
                    sat_model = model
                    # Cancel outstanding subtasks; the worker sessions die with
                    # the pool, so drop it and let a later check start fresh.
                    _terminate_pool(pool)
                    self._pool = None
                    break
        finally:
            watcher_done.set()
            if watcher is not None:
                watcher.join()
        if sat_model is None and interrupted is not None:
            # Some worker genuinely abandoned work, so the unsat tally is
            # incomplete and must not be reported as a verdict.  (When every
            # subtask completed, the answer stands even if the control fires
            # a moment later — completed work is never discarded.)  Prefer
            # the parent control's own verdict for the reason: a deadline
            # expiry is relayed to the workers through the shared cancel
            # event, so the worker-reported reason says "cancelled" even
            # when the true cause was the deadline.
            reason = control.interrupted() if control is not None else None
            if reason is None:
                reason = interrupted
            if reason is not None:
                # Outstanding chunks have drained (workers return promptly
                # once the event is set), so the pool and its live sessions
                # stay reusable for the next check.
                self._cancel_event.clear()
                self._finish(
                    SMTCheck(status="unsat"), num_variables, num_clauses,
                    conflicts, decisions, propagations, blocker_hits, heap_discards,
                    binary_subsumed,
                )
                raise SolverInterrupted(reason)
        result = SMTCheck(status="sat" if sat_model is not None else "unsat", model=sat_model)
        return self._finish(
            result, num_variables, num_clauses, conflicts, decisions,
            propagations, blocker_hits, heap_discards, binary_subsumed,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative statistics; same schema as :meth:`SolveSession.stats`.

        Clause-management counters are only observable on the sequential path
        (pool workers hold their solvers in other processes); they are merged
        in when a local session exists.
        """
        stats = {
            "checks": self.num_checks,
            "conflicts": self.total_conflicts,
            "decisions": self.total_decisions,
            "propagations": self.total_propagations,
            "elapsed_seconds": self.elapsed_seconds,
        }
        # Hot-path counters follow the only-when-nonzero schema rule.
        if self.total_blocker_hits:
            stats["blocker_hits"] = self.total_blocker_hits
        if self.total_heap_discards:
            stats["heap_discards"] = self.total_heap_discards
        if self.total_binary_subsumed:
            stats["binary_subsumed"] = self.total_binary_subsumed
        if self._local is not None and hasattr(self._local, "stats"):
            local = self._local.stats()
            for key in ("learnt_kept", "learnt_deleted", "reductions", "minimized_literals"):
                if key in local:
                    stats[key] = local[key]
        if self.warm_absorbed:
            stats["warm_absorbed"] = self.warm_absorbed
        return stats

    def save_warm(self) -> int:
        """Serialize learnt clauses into ``warm_dir``; returns clauses stored.

        On the pool path the save tasks fan out across the pool and each
        worker that picks one up merges its base-encoding learnt clauses
        into the shared cache entry (all workers share one CNF fingerprint,
        so the entries union safely).  Pool scheduling gives no per-worker
        affinity, so this is best-effort: a busy worker's clauses may be
        skipped this round — acceptable for a cache that only ever
        accelerates.  The sequential path stores from the local session.  A
        no-op without a warm directory, and after a sat-terminated pool (the
        worker sessions died with it).
        """
        if self.warm_dir is None:
            return 0
        if self._local is not None and isinstance(self._local, SolveSession):
            if not self._local_base_vars:
                return 0
            learnt = self._local.learnt_clauses(max_var=self._local_base_vars)
            _store_warm(self.warm_dir, self._local_fingerprint, learnt)
            return len(learnt)
        if self._pool is None:
            return 0
        # Over-subscribe the save tasks to raise coverage, then count each
        # responding worker once (a worker may execute several tasks).
        stored = self._pool.map(
            _save_warm_in_worker, range(self.num_workers * 2), chunksize=1
        )
        return sum(dict(stored).values())

    def close(self) -> None:
        if self._pool is not None:
            _terminate_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "IncrementalSplitSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ParallelChecker:
    """Drives parallel (or sequential) checking of one formula.

    Parameters mirror the tool configuration in the paper: the set of
    variables eligible for enumeration (usually the error indicators), the
    heuristic weight ``2 * d`` and the worker count.  One-shot facade over
    :class:`IncrementalSplitSession`; pass ``session`` to reuse a live
    sequential solver across ``run`` calls (the engine's session cache does
    this for repeated tasks).
    """

    formula: BoolExpr
    split_variables: list[str] = field(default_factory=list)
    heuristic_weight: int = 2
    threshold: int | None = None
    num_workers: int = 1
    max_subtasks: int = 1024
    session: SolveSession | None = None

    def run(self, control: SolveControl | None = None) -> SMTCheck:
        start = time.perf_counter()
        split = IncrementalSplitSession(
            self.formula,
            split_variables=self.split_variables,
            heuristic_weight=self.heuristic_weight,
            threshold=self.threshold,
            num_workers=self.num_workers,
            max_subtasks=self.max_subtasks,
            session=self.session,
        )
        try:
            result = split.check(control=control)
        finally:
            split.close()
        result.elapsed_seconds = time.perf_counter() - start
        return result

    def make_tasks(self) -> list[SplitTask]:
        threshold = self.threshold
        if threshold is None:
            threshold = max(len(self.split_variables), 1)
        assumption_sets = generate_split_assumptions(
            self.split_variables, self.heuristic_weight, threshold,
            max_subtasks=self.max_subtasks,
        )
        return [SplitTask(assumptions, index) for index, assumptions in enumerate(assumption_sets)]


# ----------------------------------------------------------------------
# Warm-cache files: the same JSON format as repro.api.resources.SessionCache
# (fingerprint-keyed learnt clauses), read and written here so worker
# processes need no import from the api layer.
def _load_warm(directory: str, fingerprint: str) -> list[list[int]] | None:
    import json
    import os

    if os.path.isfile(os.path.join(directory, "clauses.sqlite")):
        # The directory holds the sqlite clause store (repro.store) rather
        # than JSON warm files; route through its stdlib-only helpers.
        from repro.store import load_clauses

        return load_clauses(directory, fingerprint)
    try:
        with open(os.path.join(directory, f"{fingerprint}.json"), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    learnt = payload.get("learnt")
    if payload.get("fingerprint") != fingerprint or not isinstance(learnt, list):
        return None
    return [[int(lit) for lit in clause] for clause in learnt]


def _store_warm(directory: str, fingerprint: str, learnt: list[list[int]]) -> None:
    """Merge ``learnt`` into the cache entry for ``fingerprint`` (atomic).

    Merging (rather than overwriting) lets every pool worker contribute its
    own learnt clauses to the one shared entry; concurrent writers race
    benignly — the cache is best-effort and each write is internally
    consistent via the tmp-file rename.
    """
    import json
    import os

    if os.path.isfile(os.path.join(directory, "clauses.sqlite")):
        from repro.store import merge_clauses

        merge_clauses(directory, fingerprint, learnt)
        return
    existing = _load_warm(directory, fingerprint) or []
    seen = {tuple(clause) for clause in existing}
    merged = list(existing)
    for clause in learnt:
        key = tuple(int(lit) for lit in clause)
        if key not in seen:
            seen.add(key)
            merged.append(list(key))
    try:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{fingerprint}.json")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"fingerprint": fingerprint, "learnt": merged}, handle)
        os.replace(tmp, path)
    except OSError:
        pass


# Per-worker session, built once by the pool initializer: encoding the shared
# formula (and constructing the solver) is the expensive part; every subtask
# afterwards is an incremental solve under assumptions on the live solver.
_WORKER_SESSION: SolveSession | None = None
_WORKER_GUARDS: set[str] = set()
_WORKER_CANCEL = None
_WORKER_WARM_DIR: str | None = None
_WORKER_FINGERPRINT: str = ""
_WORKER_BASE_VARS: int = 0
_WORKER_WARM_ABSORBED: int = 0
_WORKER_WARM_REPORTED: bool = False


def _worker_init(formula: BoolExpr, warm_dir: str | None = None, cancel_event=None,
                 env: dict | None = None) -> None:
    global _WORKER_SESSION, _WORKER_GUARDS, _WORKER_CANCEL, _WORKER_WARM_DIR
    global _WORKER_FINGERPRINT, _WORKER_BASE_VARS, _WORKER_WARM_ABSORBED
    global _WORKER_WARM_REPORTED
    if env:
        os.environ.update(env)
    _WORKER_SESSION = SolveSession(formula)
    _WORKER_GUARDS = set()
    _WORKER_CANCEL = cancel_event
    _WORKER_WARM_DIR = warm_dir
    _WORKER_FINGERPRINT = ""
    _WORKER_BASE_VARS = 0
    _WORKER_WARM_ABSORBED = 0
    _WORKER_WARM_REPORTED = False
    if warm_dir is not None:
        # The fingerprint/variable watermark are taken against the bare base
        # encoding (before any guards arrive), mirroring CodeContext's
        # "first check" snapshot — the point identical runs can agree on.
        _WORKER_BASE_VARS = _WORKER_SESSION.encoder.cnf.num_vars
        _WORKER_FINGERPRINT = _WORKER_SESSION.fingerprint()
        learnt = _load_warm(warm_dir, _WORKER_FINGERPRINT)
        if learnt:
            _WORKER_WARM_ABSORBED = _WORKER_SESSION.absorb_learnt(learnt)


def _save_warm_in_worker(_index: int) -> tuple[int, int]:
    """Merge this worker's base-encoding learnt clauses into the warm cache.

    Returns ``(pid, count)`` so the parent can de-duplicate when pool
    scheduling hands several save tasks to the same worker.
    """
    import os

    if _WORKER_WARM_DIR is None or not _WORKER_FINGERPRINT:
        return os.getpid(), 0
    learnt = _WORKER_SESSION.learnt_clauses(max_var=_WORKER_BASE_VARS)
    if learnt:
        _store_warm(_WORKER_WARM_DIR, _WORKER_FINGERPRINT, learnt)
    return os.getpid(), len(learnt)


def _solve_chunk_in_worker(payload) -> tuple[str, dict | str | None, dict]:
    """Solve a chunk of enumeration subtasks on this worker's live session.

    Guard specs the worker has not yet seen are applied first (payloads carry
    the full cumulative list so a worker that sat out earlier checks catches
    up).  The chunk stops at its first satisfiable subtask, or — when the
    shared cancel event fires or the payload deadline passes — returns an
    ``("interrupted", reason, stats)`` triple with the session intact.
    """
    global _WORKER_WARM_REPORTED
    assumption_sets, select, guards, deadline, budget = payload
    for kind, name, operand, bound in guards:
        if name in _WORKER_GUARDS:
            continue
        if kind == "weight":
            _WORKER_SESSION.add_weight_guard(name, operand, bound)
        elif kind == "weight_ge":
            _WORKER_SESSION.add_weight_lower_guard(name, operand, bound)
        else:
            _WORKER_SESSION.add_guard(name, operand)
        _WORKER_GUARDS.add(name)
    stats = {
        "conflicts": 0,
        "decisions": 0,
        "propagations": 0,
        "blocker_hits": 0,
        "heap_discards": 0,
        "binary_subsumed": 0,
        "num_variables": 0,
        "num_clauses": 0,
    }
    if not _WORKER_WARM_REPORTED and _WORKER_WARM_ABSORBED:
        # Each worker reports its absorbed count exactly once, on its first
        # chunk, so the parent can aggregate without double counting.
        stats["warm_absorbed"] = _WORKER_WARM_ABSORBED
        _WORKER_WARM_REPORTED = True
    control = None
    if deadline is not None or budget is not None or _WORKER_CANCEL is not None:
        control = SolveControl(
            deadline=deadline,
            cancelled=_WORKER_CANCEL.is_set if _WORKER_CANCEL is not None else None,
            conflict_budget=budget,
        )
    status, model = "unsat", None
    for assumptions in assumption_sets:
        try:
            check = _WORKER_SESSION.check(assumptions, select=select, control=control)
        except SolverInterrupted as exc:
            return "interrupted", exc.reason, stats
        stats["conflicts"] += check.conflicts
        stats["decisions"] += check.decisions
        stats["propagations"] += check.propagations
        stats["blocker_hits"] += check.blocker_hits
        stats["heap_discards"] += check.heap_discards
        stats["binary_subsumed"] += check.binary_subsumed
        stats["num_variables"] = max(stats["num_variables"], check.num_variables)
        stats["num_clauses"] = max(stats["num_clauses"], check.num_clauses)
        if check.is_sat:
            status, model = "sat", check.model
            break
    return status, model, stats


def generate_split_assumptions(
    variables: list[str], heuristic_weight: int, threshold: int, max_subtasks: int = 1024
) -> list[dict[str, bool]]:
    """Enumerate prefixes of ``variables`` until the heuristic fires.

    Starting from the empty assignment, the driver repeatedly fixes the next
    variable to 0 and to 1, stopping a branch once
    ``heuristic_weight * N(ones) + N(bits) > threshold`` (the paper's E_T
    condition) or all variables are enumerated.  The union of the leaves
    covers the full assignment space exactly once.

    ``max_subtasks`` bounds the enumeration on large codes (the paper's
    ``E_T`` with threshold ``n`` explodes combinatorially past a few dozen
    qubits): once the budget is reached, remaining branches are emitted as-is,
    each leaf covering its whole residual subspace — the cover stays exact,
    only coarser.
    """
    if not variables:
        return [{}]
    leaves: list[dict[str, bool]] = []

    def expand(index: int, assignment: dict[str, bool], ones: int) -> None:
        bits = len(assignment)
        if (
            index >= len(variables)
            or heuristic_weight * ones + bits > threshold
            or len(leaves) >= max_subtasks
        ):
            leaves.append(dict(assignment))
            return
        name = variables[index]
        assignment[name] = False
        expand(index + 1, assignment, ones)
        assignment[name] = True
        expand(index + 1, assignment, ones + 1)
        del assignment[name]

    expand(0, {}, 0)
    return leaves
