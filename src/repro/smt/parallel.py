"""Parallel SMT checking by enumeration-based task splitting (Appendix D.4).

The general verification task quantifies over every error configuration; its
SAT encoding can be split into subtasks by *enumerating* the values of a few
selected error indicators and handing the residual formula to the solver.
The termination heuristic for the enumeration is the paper's

    E_T = 2 * d * N(ones) + N(bits) > n

where ``N(bits)`` counts enumerated indicators and ``N(ones)`` counts the
ones among them.  Subtasks run across a process pool; as in the paper the
driver cancels outstanding work as soon as one subtask reports a
counterexample.

Each worker process holds ONE live :class:`~repro.smt.interface.SolveSession`
for the shared base encoding: every subtask is an incremental
``solve(assumptions)`` call on that session, so learnt clauses and heuristic
state accumulate across subtasks instead of being rebuilt per query.
:class:`IncrementalSplitSession` exposes the same machinery as a long-lived
object supporting repeated guarded checks (the engine's trial-distance walk),
with selector-guarded weight bounds broadcast lazily to the workers.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
import weakref
from dataclasses import dataclass, field

from repro.classical.expr import BoolExpr, IntExpr
from repro.smt.interface import SMTCheck, SolveSession

__all__ = [
    "SplitTask",
    "ParallelChecker",
    "IncrementalSplitSession",
    "generate_split_assumptions",
]


# Every live worker pool is tracked here (weakly, so normal close() paths do
# not need to deregister) and terminated at interpreter exit.  This is what
# keeps a KeyboardInterrupt mid-check from leaking the pool's semaphores and
# worker processes: the exception may unwind past any try/finally, but the
# atexit hook still runs on interpreter shutdown.
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()


def _terminate_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.terminate()
            pool.join()
        except Exception:
            pass


atexit.register(_terminate_live_pools)


@dataclass
class SplitTask:
    """One subtask: the shared formula under fixed values for some variables."""

    assumptions: dict[str, bool]
    index: int = 0


class IncrementalSplitSession:
    """Persistent enumeration session over one base formula.

    With ``num_workers <= 1`` the subtasks run sequentially on a single
    in-process :class:`SolveSession`; otherwise a process pool is created
    whose workers each hold a live session for the base encoding.  Either
    way, :meth:`check` may be called repeatedly — with selector-guarded
    weight bounds added between calls — and the solvers retain their learnt
    clauses throughout.  Guards are broadcast to pool workers lazily (each
    payload carries the guard specs; a worker applies the ones it has not
    seen), so no explicit synchronisation round is needed.

    After a ``sat`` verdict from the pool path the outstanding subtasks are
    cancelled and the pool is discarded; a later :meth:`check` transparently
    starts a fresh pool (the usual driver stops at the first counterexample
    anyway, so this path is rare).
    """

    def __init__(
        self,
        formula: BoolExpr,
        split_variables: list[str] | tuple[str, ...] = (),
        heuristic_weight: int = 2,
        threshold: int | None = None,
        num_workers: int = 1,
        max_subtasks: int = 1024,
        session: SolveSession | None = None,
    ):
        self.formula = formula
        self.num_workers = num_workers
        if threshold is None:
            threshold = max(len(split_variables), 1)
        self.assumption_sets = generate_split_assumptions(
            list(split_variables), heuristic_weight, threshold, max_subtasks=max_subtasks
        )
        self._guards: list[tuple[str, str, object, object]] = []
        self._guard_names: set[str] = set()
        self._pool = None
        self._local: SolveSession | None = None
        if num_workers <= 1 or len(self.assumption_sets) <= 1:
            self._local = session if session is not None else SolveSession(formula)
        # Cumulative statistics aggregated across every subtask and worker.
        self.total_conflicts = 0
        self.total_decisions = 0
        self.total_propagations = 0
        self.num_checks = 0
        self.elapsed_seconds = 0.0

    # ------------------------------------------------------------------
    # Guards are idempotent by name so long-lived sessions (the engine's pool
    # manager keeps them across runs) can re-request a bound without growing
    # the broadcast list.
    def add_guard(self, name: str, formula: BoolExpr) -> str:
        if name in self._guard_names:
            return name
        self._guard_names.add(name)
        self._guards.append(("formula", name, formula, None))
        if self._local is not None:
            self._local.add_guard(name, formula)
        return name

    def add_weight_guard(self, name: str, weight: IntExpr, bound: int) -> str:
        if name in self._guard_names:
            return name
        self._guard_names.add(name)
        self._guards.append(("weight", name, weight, bound))
        if self._local is not None:
            self._local.add_weight_guard(name, weight, bound)
        return name

    def add_weight_lower_guard(self, name: str, weight: IntExpr, bound: int) -> str:
        if name in self._guard_names:
            return name
        self._guard_names.add(name)
        self._guards.append(("weight_ge", name, weight, bound))
        if self._local is not None:
            self._local.add_weight_lower_guard(name, weight, bound)
        return name

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                processes=self.num_workers,
                initializer=_worker_init,
                initargs=(self.formula,),
            )
            _LIVE_POOLS.add(self._pool)
        return self._pool

    def check(self, select: tuple[str, ...] | list[str] = ()) -> SMTCheck:
        """Decide the (guard-selected) formula across all enumeration subtasks."""
        start = time.perf_counter()
        self.num_checks += 1
        if self._local is not None:
            result = self._check_sequential(select)
        else:
            result = self._check_pool(select)
        result.elapsed_seconds = time.perf_counter() - start
        self.elapsed_seconds += result.elapsed_seconds
        result.metadata["session"] = self.stats()
        return result

    def _finish(
        self,
        check: SMTCheck,
        num_variables: int,
        num_clauses: int,
        conflicts: int,
        decisions: int,
        propagations: int,
    ) -> SMTCheck:
        """Record a check's aggregated per-call statistics (deltas, like
        :class:`SMTCheck` everywhere else; cumulative totals are in
        :meth:`stats` and the ``"session"`` metadata entry)."""
        self.total_conflicts += conflicts
        self.total_decisions += decisions
        self.total_propagations += propagations
        check.num_variables = num_variables
        check.num_clauses = num_clauses
        check.conflicts = conflicts
        check.decisions = decisions
        check.propagations = propagations
        check.metadata["num_subtasks"] = len(self.assumption_sets)
        check.metadata["num_workers"] = self.num_workers
        return check

    def _check_sequential(self, select) -> SMTCheck:
        session = self._local
        conflicts = decisions = propagations = 0
        last: SMTCheck | None = None
        for assumptions in self.assumption_sets:
            last = session.check(assumptions, select=select)
            conflicts += last.conflicts
            decisions += last.decisions
            propagations += last.propagations
            if last.is_sat:
                break
        result = SMTCheck(status=last.status, model=last.model)
        return self._finish(
            result, last.num_variables, last.num_clauses, conflicts, decisions, propagations
        )

    def _check_pool(self, select) -> SMTCheck:
        pool = self._ensure_pool()
        # Chunk the subtasks so the guard specs (which embed whole weight
        # expressions) are pickled once per chunk, not once per subtask; a
        # worker stops inside its chunk at the first counterexample.
        guards = tuple(self._guards)
        chunk_count = max(1, min(len(self.assumption_sets), self.num_workers * 4))
        payloads = [
            (self.assumption_sets[index::chunk_count], tuple(select), guards)
            for index in range(chunk_count)
        ]
        num_variables = num_clauses = 0
        conflicts = decisions = propagations = 0
        sat_model = None
        for status, model, stats in pool.imap_unordered(_solve_chunk_in_worker, payloads):
            conflicts += stats["conflicts"]
            decisions += stats["decisions"]
            propagations += stats["propagations"]
            num_variables = max(num_variables, stats["num_variables"])
            num_clauses = max(num_clauses, stats["num_clauses"])
            if status == "sat":
                sat_model = model
                # Cancel outstanding subtasks; the worker sessions die with
                # the pool, so drop it and let a later check start fresh.
                pool.terminate()
                pool.join()
                self._pool = None
                break
        result = SMTCheck(status="sat" if sat_model is not None else "unsat", model=sat_model)
        return self._finish(
            result, num_variables, num_clauses, conflicts, decisions, propagations
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative statistics; same schema as :meth:`SolveSession.stats`.

        Clause-management counters are only observable on the sequential path
        (pool workers hold their solvers in other processes); they are merged
        in when a local session exists.
        """
        stats = {
            "checks": self.num_checks,
            "conflicts": self.total_conflicts,
            "decisions": self.total_decisions,
            "propagations": self.total_propagations,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self._local is not None and hasattr(self._local, "stats"):
            local = self._local.stats()
            for key in ("learnt_kept", "learnt_deleted", "reductions", "minimized_literals"):
                if key in local:
                    stats[key] = local[key]
        return stats

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "IncrementalSplitSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ParallelChecker:
    """Drives parallel (or sequential) checking of one formula.

    Parameters mirror the tool configuration in the paper: the set of
    variables eligible for enumeration (usually the error indicators), the
    heuristic weight ``2 * d`` and the worker count.  One-shot facade over
    :class:`IncrementalSplitSession`; pass ``session`` to reuse a live
    sequential solver across ``run`` calls (the engine's session cache does
    this for repeated tasks).
    """

    formula: BoolExpr
    split_variables: list[str] = field(default_factory=list)
    heuristic_weight: int = 2
    threshold: int | None = None
    num_workers: int = 1
    max_subtasks: int = 1024
    session: SolveSession | None = None

    def run(self) -> SMTCheck:
        start = time.perf_counter()
        split = IncrementalSplitSession(
            self.formula,
            split_variables=self.split_variables,
            heuristic_weight=self.heuristic_weight,
            threshold=self.threshold,
            num_workers=self.num_workers,
            max_subtasks=self.max_subtasks,
            session=self.session,
        )
        try:
            result = split.check()
        finally:
            split.close()
        result.elapsed_seconds = time.perf_counter() - start
        return result

    def make_tasks(self) -> list[SplitTask]:
        threshold = self.threshold
        if threshold is None:
            threshold = max(len(self.split_variables), 1)
        assumption_sets = generate_split_assumptions(
            self.split_variables, self.heuristic_weight, threshold,
            max_subtasks=self.max_subtasks,
        )
        return [SplitTask(assumptions, index) for index, assumptions in enumerate(assumption_sets)]


# Per-worker session, built once by the pool initializer: encoding the shared
# formula (and constructing the solver) is the expensive part; every subtask
# afterwards is an incremental solve under assumptions on the live solver.
_WORKER_SESSION: SolveSession | None = None
_WORKER_GUARDS: set[str] = set()


def _worker_init(formula: BoolExpr) -> None:
    global _WORKER_SESSION, _WORKER_GUARDS
    _WORKER_SESSION = SolveSession(formula)
    _WORKER_GUARDS = set()


def _solve_chunk_in_worker(payload) -> tuple[str, dict | None, dict]:
    """Solve a chunk of enumeration subtasks on this worker's live session.

    Guard specs the worker has not yet seen are applied first (payloads carry
    the full cumulative list so a worker that sat out earlier checks catches
    up).  The chunk stops at its first satisfiable subtask.
    """
    assumption_sets, select, guards = payload
    for kind, name, operand, bound in guards:
        if name in _WORKER_GUARDS:
            continue
        if kind == "weight":
            _WORKER_SESSION.add_weight_guard(name, operand, bound)
        elif kind == "weight_ge":
            _WORKER_SESSION.add_weight_lower_guard(name, operand, bound)
        else:
            _WORKER_SESSION.add_guard(name, operand)
        _WORKER_GUARDS.add(name)
    stats = {
        "conflicts": 0,
        "decisions": 0,
        "propagations": 0,
        "num_variables": 0,
        "num_clauses": 0,
    }
    status, model = "unsat", None
    for assumptions in assumption_sets:
        check = _WORKER_SESSION.check(assumptions, select=select)
        stats["conflicts"] += check.conflicts
        stats["decisions"] += check.decisions
        stats["propagations"] += check.propagations
        stats["num_variables"] = max(stats["num_variables"], check.num_variables)
        stats["num_clauses"] = max(stats["num_clauses"], check.num_clauses)
        if check.is_sat:
            status, model = "sat", check.model
            break
    return status, model, stats


def generate_split_assumptions(
    variables: list[str], heuristic_weight: int, threshold: int, max_subtasks: int = 1024
) -> list[dict[str, bool]]:
    """Enumerate prefixes of ``variables`` until the heuristic fires.

    Starting from the empty assignment, the driver repeatedly fixes the next
    variable to 0 and to 1, stopping a branch once
    ``heuristic_weight * N(ones) + N(bits) > threshold`` (the paper's E_T
    condition) or all variables are enumerated.  The union of the leaves
    covers the full assignment space exactly once.

    ``max_subtasks`` bounds the enumeration on large codes (the paper's
    ``E_T`` with threshold ``n`` explodes combinatorially past a few dozen
    qubits): once the budget is reached, remaining branches are emitted as-is,
    each leaf covering its whole residual subspace — the cover stays exact,
    only coarser.
    """
    if not variables:
        return [{}]
    leaves: list[dict[str, bool]] = []

    def expand(index: int, assignment: dict[str, bool], ones: int) -> None:
        bits = len(assignment)
        if (
            index >= len(variables)
            or heuristic_weight * ones + bits > threshold
            or len(leaves) >= max_subtasks
        ):
            leaves.append(dict(assignment))
            return
        name = variables[index]
        assignment[name] = False
        expand(index + 1, assignment, ones)
        assignment[name] = True
        expand(index + 1, assignment, ones + 1)
        del assignment[name]

    expand(0, {}, 0)
    return leaves
