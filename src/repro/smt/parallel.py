"""Parallel SMT checking by enumeration-based task splitting (Appendix D.4).

The general verification task quantifies over every error configuration; its
SAT encoding can be split into subtasks by *enumerating* the values of a few
selected error indicators and handing the residual formula to the solver.
The termination heuristic for the enumeration is the paper's

    E_T = 2 * d * N(ones) + N(bits) > n

where ``N(bits)`` counts enumerated indicators and ``N(ones)`` counts the
ones among them.  Subtasks run across a process pool; as in the paper the
driver cancels outstanding work as soon as one subtask reports a
counterexample.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from repro.classical.expr import BoolExpr
from repro.smt.encoder import FormulaEncoder
from repro.smt.interface import SMTCheck, _extract_model
from repro.smt.solver import SATSolver

__all__ = ["SplitTask", "ParallelChecker", "generate_split_assumptions"]


@dataclass
class SplitTask:
    """One subtask: the shared formula under fixed values for some variables."""

    assumptions: dict[str, bool]
    index: int = 0


@dataclass
class ParallelChecker:
    """Drives parallel (or sequential) checking of one formula.

    Parameters mirror the tool configuration in the paper: the set of
    variables eligible for enumeration (usually the error indicators), the
    heuristic weight ``2 * d`` and the worker count.
    """

    formula: BoolExpr
    split_variables: list[str] = field(default_factory=list)
    heuristic_weight: int = 2
    threshold: int | None = None
    num_workers: int = 1
    max_subtasks: int = 1024

    def run(self) -> SMTCheck:
        start = time.perf_counter()
        tasks = self.make_tasks()
        if self.num_workers <= 1 or len(tasks) <= 1:
            result = self._run_sequential(tasks)
        else:
            result = self._run_parallel(tasks)
        result.elapsed_seconds = time.perf_counter() - start
        result.metadata["num_subtasks"] = len(tasks)
        result.metadata["num_workers"] = self.num_workers
        return result

    # ------------------------------------------------------------------
    def make_tasks(self) -> list[SplitTask]:
        threshold = self.threshold
        if threshold is None:
            threshold = max(len(self.split_variables), 1)
        assumption_sets = generate_split_assumptions(
            self.split_variables, self.heuristic_weight, threshold,
            max_subtasks=self.max_subtasks,
        )
        return [SplitTask(assumptions, index) for index, assumptions in enumerate(assumption_sets)]

    # ------------------------------------------------------------------
    def _run_sequential(self, tasks: list[SplitTask]) -> SMTCheck:
        total_conflicts = 0
        total_decisions = 0
        encoder = FormulaEncoder()
        encoder.assert_formula(self.formula)
        for task in tasks:
            check = _solve_encoded(encoder, task.assumptions)
            total_conflicts += check.conflicts
            total_decisions += check.decisions
            if check.is_sat:
                check.conflicts = total_conflicts
                check.decisions = total_decisions
                return check
        return SMTCheck(
            status="unsat",
            model=None,
            num_variables=encoder.cnf.num_vars,
            num_clauses=encoder.cnf.num_clauses,
            conflicts=total_conflicts,
            decisions=total_decisions,
        )

    def _run_parallel(self, tasks: list[SplitTask]) -> SMTCheck:
        assumption_sets = [task.assumptions for task in tasks]
        total_conflicts = 0
        with multiprocessing.Pool(
            processes=self.num_workers, initializer=_worker_init, initargs=(self.formula,)
        ) as pool:
            iterator = pool.imap_unordered(_solve_in_worker, assumption_sets)
            for status, model, conflicts in iterator:
                total_conflicts += conflicts
                if status == "sat":
                    pool.terminate()
                    return SMTCheck(status="sat", model=model, conflicts=total_conflicts)
        return SMTCheck(status="unsat", model=None, conflicts=total_conflicts)


def _solve_encoded(encoder: FormulaEncoder, assumptions: dict[str, bool]) -> SMTCheck:
    assumption_literals = []
    for name, value in assumptions.items():
        literal = encoder.variable(name)
        assumption_literals.append(literal if value else -literal)
    solver = SATSolver(encoder.cnf)
    result = solver.solve(assumptions=assumption_literals)
    return SMTCheck(
        status="sat" if result.satisfiable else "unsat",
        model=_extract_model(encoder, result.model) if result.satisfiable else None,
        num_variables=encoder.cnf.num_vars,
        num_clauses=encoder.cnf.num_clauses,
        conflicts=result.conflicts,
        decisions=result.decisions,
    )


# Per-worker encoder, built once by the pool initializer: encoding the shared
# formula is the expensive part, the per-subtask work is just a solve under
# assumptions.
_WORKER_ENCODER: FormulaEncoder | None = None


def _worker_init(formula: BoolExpr) -> None:
    global _WORKER_ENCODER
    encoder = FormulaEncoder()
    encoder.assert_formula(formula)
    _WORKER_ENCODER = encoder


def _solve_in_worker(assumptions: dict[str, bool]) -> tuple[str, dict | None, int]:
    check = _solve_encoded(_WORKER_ENCODER, assumptions)
    return check.status, check.model, check.conflicts


def generate_split_assumptions(
    variables: list[str], heuristic_weight: int, threshold: int, max_subtasks: int = 1024
) -> list[dict[str, bool]]:
    """Enumerate prefixes of ``variables`` until the heuristic fires.

    Starting from the empty assignment, the driver repeatedly fixes the next
    variable to 0 and to 1, stopping a branch once
    ``heuristic_weight * N(ones) + N(bits) > threshold`` (the paper's E_T
    condition) or all variables are enumerated.  The union of the leaves
    covers the full assignment space exactly once.

    ``max_subtasks`` bounds the enumeration on large codes (the paper's
    ``E_T`` with threshold ``n`` explodes combinatorially past a few dozen
    qubits): once the budget is reached, remaining branches are emitted as-is,
    each leaf covering its whole residual subspace — the cover stays exact,
    only coarser.
    """
    if not variables:
        return [{}]
    leaves: list[dict[str, bool]] = []

    def expand(index: int, assignment: dict[str, bool], ones: int) -> None:
        bits = len(assignment)
        if (
            index >= len(variables)
            or heuristic_weight * ones + bits > threshold
            or len(leaves) >= max_subtasks
        ):
            leaves.append(dict(assignment))
            return
        name = variables[index]
        assignment[name] = False
        expand(index + 1, assignment, ones)
        assignment[name] = True
        expand(index + 1, assignment, ones + 1)
        del assignment[name]

    expand(0, {}, 0)
    return leaves
