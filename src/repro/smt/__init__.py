"""A self-contained SMT substrate: CNF, CDCL SAT solving and formula encoding.

The paper discharges classical verification conditions with Z3/CVC5.  Those
solvers are not available offline, so this package provides the equivalent
machinery: a boolean formula encoder (Tseitin transformation, parity chains,
sequential-counter cardinality constraints, bounded integer comparisons) and
an incremental CDCL SAT solver, plus a small front end mirroring the
check-sat / model interface the verifier needs, including persistent solving
sessions (:class:`SolveSession`) and parallel task splitting.
"""

from repro.smt.cnf import CNF
from repro.smt.encoder import FormulaEncoder
from repro.smt.interface import SMTCheck, SolveSession, check_formula, check_valid
from repro.smt.solver import SATSolver, SolverResult

__all__ = [
    "CNF",
    "SATSolver",
    "SolverResult",
    "FormulaEncoder",
    "SMTCheck",
    "SolveSession",
    "check_formula",
    "check_valid",
]
