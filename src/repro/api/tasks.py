"""Verification tasks: frozen, hashable value objects describing one request.

Every verification functionality of the tool (Section 7) is reified as a
task dataclass so that requests can be cached, batched, pickled across a
process pool, and rendered from the CLI:

* :class:`CorrectionTask`   — accurate decoding and correction (Eqn. 14);
* :class:`DetectionTask`    — precise detection below a trial distance (Eqn. 15);
* :class:`DistanceTask`     — code-distance discovery via repeated detection;
* :class:`ConstrainedTask`  — partial verification under user constraints (Fig. 7);
* :class:`FixedErrorTask`   — a single fixed error pattern (the Stim functionality);
* :class:`ProgramTask`      — the program-logic route over a Hoare triple.

Code-carrying tasks reference their code either by registry key (resolved
through :mod:`repro.codes.registry`, the picklable/cacheable form) or by an
in-memory :class:`~repro.codes.base.StabilizerCode` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar

from repro.classical.expr import BoolExpr
from repro.codes.base import StabilizerCode
from repro.codes.registry import build_code
from repro.hoare.triple import HoareTriple
from repro.verifier.encodings import ErrorModel

__all__ = [
    "Task",
    "CodeTask",
    "CorrectionTask",
    "DetectionTask",
    "DistanceTask",
    "ConstrainedTask",
    "FixedErrorTask",
    "ProgramTask",
    "TASK_KINDS",
    "resolve_code",
    "task_from_dict",
]


def resolve_code(code: str | StabilizerCode) -> StabilizerCode:
    """Resolve a task's code reference to a concrete :class:`StabilizerCode`."""
    if isinstance(code, StabilizerCode):
        return code
    if isinstance(code, str):
        return build_code(code)
    raise TypeError(f"expected a registry key or a StabilizerCode, got {code!r}")


@dataclass(frozen=True)
class Task:
    """Base class of all verification tasks."""

    kind: ClassVar[str] = "task"

    @property
    def deterministic(self) -> bool:
        """Whether compiling this task twice yields the same formula.

        Nondeterministic tasks (e.g. locality constraints with an unseeded
        random qubit subset) are never served from the engine's compile cache.
        """
        return True

    def describe(self) -> str:
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{type(self).__name__}({parts})"


@dataclass(frozen=True)
class CodeTask(Task):
    """A task about one stabilizer code (by registry key or instance)."""

    code: str | StabilizerCode = ""

    def __post_init__(self) -> None:
        if isinstance(self.code, str) and not self.code:
            raise ValueError("a code registry key or StabilizerCode is required")

    @property
    def code_name(self) -> str:
        return self.code if isinstance(self.code, str) else self.code.name

    def build(self) -> StabilizerCode:
        return resolve_code(self.code)


@dataclass(frozen=True)
class CorrectionTask(CodeTask):
    """Verify accurate decoding and correction for all errors in scope."""

    kind: ClassVar[str] = "accurate-correction"

    max_errors: int | None = None
    error_model: ErrorModel | str = ErrorModel("any")
    extra_constraints: tuple[BoolExpr, ...] = ()

    def __post_init__(self) -> None:
        CodeTask.__post_init__(self)
        object.__setattr__(self, "error_model", ErrorModel.coerce(self.error_model))
        object.__setattr__(self, "extra_constraints", tuple(self.extra_constraints))
        if self.max_errors is not None and self.max_errors < 0:
            raise ValueError("max_errors must be non-negative")


@dataclass(frozen=True)
class DetectionTask(CodeTask):
    """Verify that every error of weight below the trial distance is detectable."""

    kind: ClassVar[str] = "precise-detection"

    trial_distance: int | None = None
    error_model: ErrorModel | str = ErrorModel("any")

    def __post_init__(self) -> None:
        CodeTask.__post_init__(self)
        object.__setattr__(self, "error_model", ErrorModel.coerce(self.error_model))
        if self.trial_distance is not None and self.trial_distance < 2:
            raise ValueError("trial_distance must be at least 2")


@dataclass(frozen=True)
class DistanceTask(CodeTask):
    """Discover the code distance by pushing the trial distance until a
    minimum-weight undetectable error appears.

    A meta-task: the engine runs a sequence of :class:`DetectionTask` queries
    rather than compiling a single formula.  ``strategy`` selects the probe
    schedule: ``"binary"`` (plain bisection of the weight window),
    ``"galloping"`` (exponential 1, 2, 4, ... lower-bound start, then
    bisection), or ``None``/``"auto"`` to let the engine's probe-cost
    heuristic choose per code.
    """

    kind: ClassVar[str] = "find-distance"

    max_trial: int | None = None
    strategy: str | None = None

    _STRATEGIES: ClassVar[tuple] = (None, "auto", "binary", "binary-search", "galloping")

    def __post_init__(self) -> None:
        CodeTask.__post_init__(self)
        if self.strategy not in self._STRATEGIES:
            raise ValueError(
                f"unknown distance strategy {self.strategy!r}; "
                f"expected one of {[s for s in self._STRATEGIES if s]}"
            )


@dataclass(frozen=True)
class ConstrainedTask(CodeTask):
    """Partial verification of correction under user-provided constraints (Fig. 7)."""

    kind: ClassVar[str] = "constrained-correction"

    locality: bool = False
    discreteness: bool = False
    allowed_qubits: tuple[int, ...] | None = None
    max_errors: int | None = None
    error_model: ErrorModel | str = ErrorModel("any")
    seed: int | None = None

    def __post_init__(self) -> None:
        CodeTask.__post_init__(self)
        object.__setattr__(self, "error_model", ErrorModel.coerce(self.error_model))
        if self.allowed_qubits is not None:
            object.__setattr__(self, "allowed_qubits", tuple(self.allowed_qubits))

    @property
    def deterministic(self) -> bool:
        # An unseeded locality constraint samples a fresh random qubit subset
        # per compilation; caching would silently reuse one sample.
        return not (self.locality and self.seed is None and self.allowed_qubits is None)

    @property
    def constraint_labels(self) -> list[str]:
        labels = []
        if self.locality:
            labels.append("locality")
        if self.discreteness:
            labels.append("discreteness")
        return labels


@dataclass(frozen=True)
class FixedErrorTask(CodeTask):
    """Check one concrete error pattern (the functionality Stim covers).

    ``error_qubits`` maps qubit indices to the injected Pauli (``"X"``,
    ``"Y"`` or ``"Z"``); it is stored as a sorted tuple of pairs so the task
    stays hashable.
    """

    kind: ClassVar[str] = "fixed-error"

    error_qubits: tuple[tuple[int, str], ...] = ()
    max_errors: int | None = None

    def __post_init__(self) -> None:
        CodeTask.__post_init__(self)
        pairs = self.error_qubits
        if isinstance(pairs, dict):
            pairs = pairs.items()
        object.__setattr__(self, "error_qubits", tuple(sorted(pairs)))

    @property
    def error_map(self) -> dict[int, str]:
        return dict(self.error_qubits)


#: JSON-constructible task classes by kind, with short aliases — the wire
#: vocabulary of the service's ``POST /jobs`` body.  :class:`ProgramTask` is
#: deliberately absent: it carries an in-memory Hoare triple and cannot be
#: built from a JSON payload.
TASK_KINDS: dict[str, type["CodeTask"]] = {}


def _register_kinds() -> None:
    aliases = {
        CorrectionTask: ("correction",),
        DetectionTask: ("detection",),
        DistanceTask: ("distance",),
        ConstrainedTask: ("constrained",),
        FixedErrorTask: (),
    }
    for cls, extra in aliases.items():
        TASK_KINDS[cls.kind] = cls
        for alias in extra:
            TASK_KINDS[alias] = cls


_register_kinds()


def task_from_dict(payload: dict) -> Task:
    """Build a task from a JSON-shaped dict: ``{"kind": ..., <task fields>}``.

    The inverse of the wire contract the service accepts on ``POST /jobs``.
    ``kind`` selects the task class (canonical kind or short alias, see
    :data:`TASK_KINDS`); every other key must name a field of that class.
    Unknown kinds, unknown fields, and fields that cannot be expressed in
    JSON (``extra_constraints``) raise :class:`ValueError` so callers can map
    them to a 400 instead of a 500.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"task must be an object, got {type(payload).__name__}")
    spec = dict(payload)
    kind = spec.pop("kind", None)
    if not isinstance(kind, str) or kind not in TASK_KINDS:
        raise ValueError(
            f"unknown task kind {kind!r}; expected one of {sorted(TASK_KINDS)}"
        )
    cls = TASK_KINDS[kind]
    allowed = {f.name for f in fields(cls) if f.init}
    allowed.discard("extra_constraints")  # BoolExpr trees have no JSON form
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ValueError(
            f"unknown field(s) {unknown} for task kind {kind!r}; "
            f"allowed: {sorted(allowed)}"
        )
    code = spec.get("code")
    if "code" in allowed and not isinstance(code, str):
        raise ValueError("task field 'code' must be a registry key string")
    if cls is FixedErrorTask and "error_qubits" in spec:
        raw = spec["error_qubits"]
        if isinstance(raw, dict):
            pairs = [(int(qubit), pauli) for qubit, pauli in raw.items()]
        elif isinstance(raw, (list, tuple)):
            pairs = [(int(qubit), pauli) for qubit, pauli in raw]
        else:
            raise ValueError("error_qubits must be a mapping or a list of pairs")
        spec["error_qubits"] = tuple(pairs)
    if "allowed_qubits" in spec and spec["allowed_qubits"] is not None:
        spec["allowed_qubits"] = tuple(int(q) for q in spec["allowed_qubits"])
    try:
        return cls(**spec)
    except TypeError as exc:
        raise ValueError(f"invalid task spec for kind {kind!r}: {exc}") from exc


@dataclass(frozen=True)
class ProgramTask(Task):
    """Verify a Hoare triple about a QEC program (the program-logic route)."""

    kind: ClassVar[str] = "program-logic"

    triple: HoareTriple = field(default=None)  # type: ignore[assignment]
    decoder_condition: BoolExpr | None = None

    def __post_init__(self) -> None:
        if self.triple is None:
            raise ValueError("a HoareTriple is required")

    @property
    def subject(self) -> str:
        return self.triple.name
