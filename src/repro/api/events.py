"""Typed, versioned execution events — the job API's streaming vocabulary.

Every observable step of a job's life is reified as an event dataclass that
serializes to one JSON object (one NDJSON line) carrying:

* ``event``          — the event type name (the class name);
* ``schema_version`` — the declared :data:`SCHEMA_VERSION`;
* ``job_id`` / ``seq`` — stamped by the owning :class:`~repro.api.jobs.Job`
  when the event is emitted; ``seq`` is contiguous per job, starting at 0.

Exactly one *terminal* event (:class:`JobCompleted`, :class:`JobCancelled`
or :class:`JobFailed`) ends every job's stream.

Stability policy: within one ``schema_version`` the emitted fields of every
event type only ever *gain* optional members; renaming or removing a field,
changing a type, or changing terminal-event semantics bumps the major
version.  Consumers should ignore unknown event types and unknown fields.

The module doubles as the stream validator used in CI::

    python -m repro sweep --stream | python -m repro.api.events

reads NDJSON from stdin and checks every line against the declared schemas
(field presence, types, per-job ``seq`` contiguity, exactly one terminal
event per completed job), exiting non-zero on the first violation class.
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict, dataclass, fields
from typing import ClassVar

__all__ = [
    "SCHEMA_VERSION",
    "TIMING_FIELDS",
    "Event",
    "JobSubmitted",
    "TaskCompiled",
    "SubtaskStarted",
    "DistanceProbe",
    "SolverStats",
    "JobCompleted",
    "JobCancelled",
    "JobFailed",
    "EVENT_TYPES",
    "EVENT_SCHEMAS",
    "event_from_dict",
    "deterministic_view",
    "validate_event",
    "validate_stream",
    "main",
]

SCHEMA_VERSION = "1.0"

#: Fields whose values depend on wall-clock measurement; strip them (via
#: :func:`deterministic_view`) when comparing event streams for determinism.
TIMING_FIELDS = frozenset({"elapsed_seconds", "compile_seconds"})


@dataclass
class Event:
    """Base event: ``job_id``/``seq`` are stamped at emission time."""

    job_id: str = ""
    seq: int = -1

    TYPE: ClassVar[str] = "Event"
    TERMINAL: ClassVar[bool] = False

    def to_dict(self) -> dict:
        payload = {"event": self.TYPE, "schema_version": SCHEMA_VERSION}
        payload.update(asdict(self))
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False, default=str)


@dataclass
class JobSubmitted(Event):
    """The job entered the queue (always ``seq`` 0)."""

    task_kind: str = ""
    subject: str = ""
    priority: int = 0
    deadline: float | None = None

    TYPE: ClassVar[str] = "JobSubmitted"


@dataclass
class TaskCompiled(Event):
    """The task was lowered to its refutation formula (or compile-cache hit)."""

    task_kind: str = ""
    subject: str = ""
    cached: bool = False
    compile_seconds: float = 0.0

    TYPE: ClassVar[str] = "TaskCompiled"


@dataclass
class SubtaskStarted(Event):
    """One solver-facing unit of work is about to run (a probe, a solve)."""

    index: int = 0
    description: str = ""

    TYPE: ClassVar[str] = "SubtaskStarted"


@dataclass
class DistanceProbe(Event):
    """One window of a distance walk was decided.

    ``window`` is the ``[lo, hi]`` weight bracket still open when the probe
    was issued, ``bound`` the upper bound actually activated; on sat the
    witness's weight (``witness_weight``) clamps the next bracket.

    ``resumed_from`` is an *optional* member added by the clause store:
    when a walk picks up a checkpointed bracket instead of starting cold,
    the first probe carries ``{"lo", "hi", "probes"}`` describing the
    restored state; serialized only in that case, so streams from
    non-resumed walks keep the historical payload.
    """

    bound: int = 0
    window: list[int] | None = None
    sat: bool = False
    witness_weight: int | None = None
    conflicts: int = 0
    decisions: int = 0
    elapsed_seconds: float = 0.0
    resumed_from: dict | None = None

    TYPE: ClassVar[str] = "DistanceProbe"

    def to_dict(self) -> dict:
        payload = super().to_dict()
        if payload.get("resumed_from") is None:
            payload.pop("resumed_from", None)
        return payload


@dataclass
class SolverStats(Event):
    """Aggregate solver statistics for the job's solving phase.

    ``blocker_hits`` (watcher visits resolved by the cached blocker literal)
    and ``heap_discards`` (lazily deleted decision-heap entries) are
    *optional* members added by the solver hot-path overhaul, and
    ``binary_subsumed`` (learnt-clause literals removed by glucose-style
    binary self-subsumption) by the service PR: following the
    only-when-nonzero rule, they are serialized only when the solve actually
    produced them, so pre-overhaul consumers (and streams from the linear
    fallback policy) see the historical payload unchanged.

    The sharded dispatcher adds two more optional members under the same
    rule: ``lane`` (which worker lane ran the job; serialized only for jobs
    dispatched through the sharded executor, never for blocking runs) and
    ``family_absorbed`` (learnt clauses absorbed from smaller same-family
    codes before this solve; serialized only when absorption happened).

    The clause store adds ``store_absorbed`` (clauses absorbed from the
    persistent store's family index) and ``learnt_evicted`` (learnt clauses
    the solver's database reduction deleted during this job — eviction was
    previously silent), both under the only-when-nonzero rule.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    num_variables: int = 0
    num_clauses: int = 0
    blocker_hits: int = 0
    heap_discards: int = 0
    binary_subsumed: int = 0
    family_absorbed: int = 0
    store_absorbed: int = 0
    learnt_evicted: int = 0
    lane: int = -1

    TYPE: ClassVar[str] = "SolverStats"

    _OPTIONAL_WHEN_ZERO: ClassVar[tuple[str, ...]] = (
        "blocker_hits", "heap_discards", "binary_subsumed", "family_absorbed",
        "store_absorbed", "learnt_evicted",
    )

    def to_dict(self) -> dict:
        payload = super().to_dict()
        for name in self._OPTIONAL_WHEN_ZERO:
            if not payload.get(name):
                payload.pop(name, None)
        if payload.get("lane", -1) < 0:
            payload.pop("lane", None)
        return payload


@dataclass
class JobCompleted(Event):
    """Terminal: the task was decided; the full Result is on the job handle.

    ``resumed_from`` is an *optional* member mirroring the first
    :class:`DistanceProbe`'s resume marker (the checkpointed ``lo``/``hi``
    bracket and prior probe count a killed walk restarted from); serialized
    only for jobs that actually resumed.
    """

    verified: bool = False
    elapsed_seconds: float = 0.0
    resumed_from: dict | None = None

    TYPE: ClassVar[str] = "JobCompleted"
    TERMINAL: ClassVar[bool] = True

    def to_dict(self) -> dict:
        payload = super().to_dict()
        if payload.get("resumed_from") is None:
            payload.pop("resumed_from", None)
        return payload


@dataclass
class JobCancelled(Event):
    """Terminal: the job was cancelled (``reason``: cancelled / deadline /
    budget / shutdown) before producing a result."""

    reason: str = "cancelled"

    TYPE: ClassVar[str] = "JobCancelled"
    TERMINAL: ClassVar[bool] = True


@dataclass
class JobFailed(Event):
    """Terminal: the job raised; ``error`` is the stringified exception.

    ``reason`` classifies infrastructure failures — ``"lane_crash"`` when
    the lane supervisor failed the job because its dispatcher thread died
    (the task itself may be fine; clients may retry it under a fresh
    idempotency key).  Empty for ordinary execution errors, and omitted
    from the serialized form so pre-existing streams are byte-identical.
    """

    error: str = ""
    reason: str = ""

    TYPE: ClassVar[str] = "JobFailed"
    TERMINAL: ClassVar[bool] = True

    def to_dict(self) -> dict:
        payload = super().to_dict()
        if not payload.get("reason"):
            payload.pop("reason", None)
        return payload


EVENT_TYPES: dict[str, type[Event]] = {
    cls.TYPE: cls
    for cls in (
        JobSubmitted,
        TaskCompiled,
        SubtaskStarted,
        DistanceProbe,
        SolverStats,
        JobCompleted,
        JobCancelled,
        JobFailed,
    )
}

_NUMBER = (int, float)

#: Declarative per-type field schemas: name -> (allowed types, required).
#: The base fields (event, schema_version, job_id, seq) apply to every type.
EVENT_SCHEMAS: dict[str, dict[str, tuple[tuple[type, ...], bool]]] = {
    "JobSubmitted": {
        "task_kind": ((str,), True),
        "subject": ((str,), True),
        "priority": ((int,), True),
        "deadline": (_NUMBER + (type(None),), True),
    },
    "TaskCompiled": {
        "task_kind": ((str,), True),
        "subject": ((str,), True),
        "cached": ((bool,), True),
        "compile_seconds": (_NUMBER, True),
    },
    "SubtaskStarted": {
        "index": ((int,), True),
        "description": ((str,), True),
    },
    "DistanceProbe": {
        "bound": ((int,), True),
        "window": ((list, type(None)), True),
        "sat": ((bool,), True),
        "witness_weight": ((int, type(None)), True),
        "conflicts": ((int,), True),
        "decisions": ((int,), True),
        "elapsed_seconds": (_NUMBER, True),
        "resumed_from": ((dict,), False),
    },
    "SolverStats": {
        "conflicts": ((int,), True),
        "decisions": ((int,), True),
        "propagations": ((int,), True),
        "num_variables": ((int,), True),
        "num_clauses": ((int,), True),
        "blocker_hits": ((int,), False),
        "heap_discards": ((int,), False),
        "binary_subsumed": ((int,), False),
        "family_absorbed": ((int,), False),
        "store_absorbed": ((int,), False),
        "learnt_evicted": ((int,), False),
        "lane": ((int,), False),
    },
    "JobCompleted": {
        "verified": ((bool,), True),
        "elapsed_seconds": (_NUMBER, True),
        "resumed_from": ((dict,), False),
    },
    "JobCancelled": {
        "reason": ((str,), True),
    },
    "JobFailed": {
        "error": ((str,), True),
        "reason": ((str,), False),
    },
}


def event_from_dict(payload: dict) -> Event:
    """Reconstruct a typed event from its serialized form."""
    name = payload.get("event")
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown event type {name!r}")
    known = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in known})


def deterministic_view(payload: dict) -> dict:
    """The event dict minus wall-clock fields, for stream-equality checks."""
    return {key: value for key, value in payload.items() if key not in TIMING_FIELDS}


def validate_event(payload) -> list[str]:
    """Schema-validate one deserialized event; returns a list of errors."""
    if not isinstance(payload, dict):
        return [f"event is not an object: {type(payload).__name__}"]
    errors: list[str] = []
    name = payload.get("event")
    schema = EVENT_SCHEMAS.get(name)
    if schema is None:
        return [f"unknown event type {name!r}"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"{name}: schema_version {payload.get('schema_version')!r} != {SCHEMA_VERSION!r}"
        )
    if not isinstance(payload.get("job_id"), str) or not payload.get("job_id"):
        errors.append(f"{name}: job_id must be a non-empty string")
    if not isinstance(payload.get("seq"), int) or isinstance(payload.get("seq"), bool) \
            or payload.get("seq", -1) < 0:
        errors.append(f"{name}: seq must be a non-negative integer")
    base = {"event", "schema_version", "job_id", "seq"}
    for field_name, (types, required) in schema.items():
        if field_name not in payload:
            if required:
                errors.append(f"{name}: missing field {field_name!r}")
            continue
        value = payload[field_name]
        if bool not in types and isinstance(value, bool):
            errors.append(f"{name}: field {field_name!r} has bool value {value!r}")
        elif not isinstance(value, tuple(types)):
            errors.append(
                f"{name}: field {field_name!r} has type {type(value).__name__}"
            )
    for key in payload:
        if key not in base and key not in schema:
            errors.append(f"{name}: unexpected field {key!r}")
    return errors


def validate_stream(lines) -> tuple[int, dict[str, int], list[str]]:
    """Validate an iterable of NDJSON lines.

    Returns ``(num_events, per_type_counts, errors)``.  Beyond per-event
    schema checks this enforces the stream-level contract: per-job ``seq``
    values are contiguous from 0, nothing follows a job's terminal event,
    and every job that emitted any event ends with exactly one terminal.
    """
    counts: dict[str, int] = {}
    errors: list[str] = []
    next_seq: dict[str, int] = {}
    terminated: set[str] = set()
    num_events = 0
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {line_number}: not valid JSON ({exc})")
            continue
        num_events += 1
        event_errors = validate_event(payload)
        errors.extend(f"line {line_number}: {error}" for error in event_errors)
        if event_errors:
            continue
        name = payload["event"]
        counts[name] = counts.get(name, 0) + 1
        job_id = payload["job_id"]
        if job_id in terminated:
            errors.append(f"line {line_number}: {job_id} emitted {name} after its terminal event")
        expected = next_seq.get(job_id, 0)
        if payload["seq"] != expected:
            errors.append(
                f"line {line_number}: {job_id} seq {payload['seq']} != expected {expected}"
            )
        next_seq[job_id] = payload["seq"] + 1
        if EVENT_TYPES[name].TERMINAL:
            terminated.add(job_id)
    for job_id in next_seq:
        if job_id not in terminated:
            errors.append(f"{job_id}: stream ended without a terminal event")
    return num_events, counts, errors


def main(argv=None) -> int:
    """Validate NDJSON events from stdin (or the files given as arguments)."""
    paths = list(argv if argv is not None else sys.argv[1:])
    if paths:
        lines: list[str] = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                lines.extend(handle.readlines())
        source = lines
    else:
        source = sys.stdin
    num_events, counts, errors = validate_stream(source)
    for error in errors:
        print(f"invalid: {error}", file=sys.stderr)
    if num_events == 0:
        print("invalid: no events on input", file=sys.stderr)
        return 1
    summary = ", ".join(f"{name}={count}" for name, count in sorted(counts.items()))
    print(f"validated {num_events} events ({summary})")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
