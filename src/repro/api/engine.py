"""The verification engine: compile tasks once, decide them on any backend.

``Engine`` is the single entry point behind the legacy ``VeriQEC`` facade,
the ``verify_triple`` pipeline and the ``python -m repro`` CLI:

* :meth:`Engine.compile_task` lowers a task to its refutation formula (one
  place for every encoding decision), memoised in an LRU cache keyed on the
  task value;
* :meth:`Engine.run` decides one task on a pluggable backend and returns the
  unified :class:`~repro.api.result.Result`;
* :meth:`Engine.run_many` executes a batch of tasks — optionally across a
  process pool — with per-task timing, which is how whole registry sweeps
  (Table 3 / Table 4 style) are driven.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from repro import faults, sanitize
from repro.api.backends import Backend, ParallelBackend, SerialBackend, coerce_backend
from repro.api.events import DistanceProbe, SolverStats, SubtaskStarted, TaskCompiled
from repro.api.jobs import Job, ShardedJobExecutor
from repro.api.resources import ResourceManager
from repro.api.result import Result
from repro.api.tasks import (
    ConstrainedTask,
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    FixedErrorTask,
    ProgramTask,
    Task,
)
from repro.classical.expr import BoolExpr, BoolVar, Not
from repro.codes.registry import CODE_REGISTRY, family_of
from repro.smt.interface import SolveSession
from repro.smt.solver import SolveControl, SolverInterrupted
from repro.verifier.constraints import discreteness_constraint, locality_constraint
from repro.verifier.encodings import (
    ErrorModel,
    accurate_correction_formula,
    model_error_weight,
    precise_detection_base,
    precise_detection_formula,
)

__all__ = ["CompiledTask", "Engine", "registry_sweep_tasks"]

# An event sink: called with each typed event as execution progresses.
Emit = Callable[[object], object]


@dataclass
class CompiledTask:
    """A task lowered to its refutation formula plus backend hints."""

    task: Task
    kind: str
    subject: str
    formula: BoolExpr
    split_variables: tuple[str, ...] = ()
    split_weight: int = 2
    split_threshold: int | None = None
    details: dict = field(default_factory=dict)
    compile_seconds: float = 0.0


def _split_hints(code, error_model) -> tuple[tuple[str, ...], int, int]:
    """Enumeration hints for the parallel strategy: the error-indicator
    variables, the paper's heuristic weight ``2 * d`` and the threshold ``n``."""
    if error_model.kind == "any":
        names = tuple(
            name for qubit in range(code.num_qubits) for name in (f"ex_{qubit}", f"ez_{qubit}")
        )
    else:
        names = tuple(f"e_{qubit}" for qubit in range(code.num_qubits))
    return names, 2 * (code.distance or 3), code.num_qubits


def _validate_checkpoint(state: dict | None, limit: int) -> dict | None:
    """Sanitize a distance-walk checkpoint blob loaded from the store.

    The store already checksums payloads against torn writes; this guards
    the *semantics* — every field must be a well-typed value inside the
    walk's own bounds, or the whole checkpoint is ignored and the walk runs
    cold.  A bad checkpoint can therefore never change a reported distance,
    only forfeit the resume shortcut.
    """
    if not isinstance(state, dict) or state.get("version") != 1:
        return None
    if state.get("limit") != limit:
        return None
    lo, hi = state.get("lo"), state.get("hi")
    distance = state.get("distance")
    probes = state.get("probes")
    gallop_bound = state.get("gallop_bound")
    if not all(isinstance(value, int) and not isinstance(value, bool)
               for value in (lo, hi, distance, probes, gallop_bound)):
        return None
    if not (1 <= lo <= limit and 0 <= hi <= limit - 1 and 1 <= distance <= limit):
        return None
    if probes < 1 or gallop_bound < 1 or not isinstance(state.get("galloping"), bool):
        return None
    witness = state.get("witness")
    if witness is not None:
        if not isinstance(witness, dict) or not all(
            isinstance(name, str) and isinstance(value, bool)
            for name, value in witness.items()
        ):
            return None
    return state


class Engine:
    """Compiles verification tasks and dispatches them to a backend."""

    def __init__(
        self,
        backend: Backend | str | None = None,
        cache_size: int = 128,
        session_cache_size: int = 32,
        max_pools: int = 4,
        lanes: int = 4,
        family_warm_start: bool = True,
        clause_store: str | None = None,
        fault_plan=None,
    ):
        # Arm fault injection before any resource (store, executor, pools)
        # is built, so their faults.hook() calls see the installed plan.
        # ``fault_plan`` accepts a FaultPlan, a dict spec, inline JSON or a
        # file path — same formats as the REPRO_FAULT_PLAN environment hook.
        if fault_plan is not None:
            faults.install(fault_plan)
        self.backend: Backend = coerce_backend(backend)
        self.cache_size = cache_size
        self.session_cache_size = session_cache_size
        self.lanes = max(1, int(lanes))
        self._cache: OrderedDict[Task, CompiledTask] = OrderedDict()
        # Engine-owned solver resources: one shared live session per *code*
        # (correction, detection and distance queries on a code share learnt
        # clauses through task-selector guards) and persistent worker pools
        # keyed by base formula, kept alive across run/run_many calls.
        self.resources = ResourceManager(
            max_contexts=session_cache_size,
            max_pools=max_pools,
            family_warm_start=family_warm_start,
        )
        self.resources.configure_shards(self.lanes)
        # The persistent clause store (``repro.store``): durable learnt
        # clauses, family candidates and distance-walk checkpoints shared
        # across every lane, pool worker and process using the directory.
        if clause_store is not None:
            self.resources.enable_clause_store(clause_store)
        self._hits = 0
        self._misses = 0
        self._uncacheable = 0
        # The job layer: created lazily on the first submit().  Concurrency
        # safety is lane affinity: every execution — background jobs AND
        # blocking Engine.run calls — first routes its task to a shard
        # (``ResourceManager.shard_for_task``) and runs under that shard's
        # lane lock, so a SolveSession is only ever touched by one thread
        # at a time even when lanes solve different codes concurrently.
        self._executor: ShardedJobExecutor | None = None
        self._job_counter = 0
        self._lane_locks = [threading.RLock() for _ in range(self.lanes)]
        # Guards the compile cache (shared across lanes) separately from
        # execution, so a lane compiling a new task never blocks another
        # lane's solve.
        self._cache_lock = threading.Lock()
        # Guards submit-time state only (job ids, lazy executor creation);
        # never held across a solve, so submitting stays non-blocking while
        # jobs run under the lane locks.
        self._submit_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile_task(self, task: Task) -> CompiledTask:
        """Lower ``task`` to its formula, memoised on the task value."""
        compiled, _ = self._compile_cached(task)
        return compiled

    def cache_info(self) -> dict:
        return {
            "hits": self._hits,
            "misses": self._misses,
            "uncacheable": self._uncacheable,
            "size": len(self._cache),
            "max_size": self.cache_size,
            "sessions": self.resources.num_contexts(),
        }

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()
        self.resources.clear_contexts()

    def close(self) -> None:
        """Release live solver resources (worker pools, warm-cache flush),
        cancelling any still-queued jobs first."""
        with self._submit_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self.resources.close()

    def coerce(self, backend: Backend | str | None) -> Backend:
        """Resolve a backend argument against this engine's default."""
        return coerce_backend(backend) if backend is not None else self.backend

    def _compile_cached(self, task: Task) -> tuple[CompiledTask, bool]:
        if not task.deterministic:
            with self._cache_lock:
                self._uncacheable += 1
            return self._compile(task), False
        with self._cache_lock:
            try:
                cached = self._cache.get(task)
            except TypeError:  # unhashable payload (e.g. an ad-hoc triple)
                cached = None
                hashable = False
            else:
                hashable = True
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(task)
                return cached, True
            if hashable:
                self._misses += 1
            else:
                self._uncacheable += 1
        # Compile outside the lock: two lanes may compile the same task
        # concurrently (harmless duplicate work), but a slow compile never
        # stalls cache hits on other lanes.
        compiled = self._compile(task)
        if hashable:
            with self._cache_lock:
                self._cache[task] = compiled
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return compiled, False

    def _compile(self, task: Task) -> CompiledTask:
        start = time.perf_counter()
        if isinstance(task, ConstrainedTask):
            compiled = self._compile_constrained(task)
        elif isinstance(task, FixedErrorTask):
            compiled = self._compile_fixed_error(task)
        elif isinstance(task, CorrectionTask):
            compiled = self._compile_correction(task)
        elif isinstance(task, DetectionTask):
            compiled = self._compile_detection(task)
        elif isinstance(task, ProgramTask):
            compiled = self._compile_program(task)
        elif isinstance(task, DistanceTask):
            raise TypeError(
                "DistanceTask is a meta-task driven by Engine.run(); it has no single formula"
            )
        else:
            raise TypeError(f"don't know how to compile {type(task).__name__}")
        compiled.compile_seconds = time.perf_counter() - start
        return compiled

    def _compile_correction(
        self,
        task: CorrectionTask,
        *,
        kind: str | None = None,
        extra_constraints: Sequence[BoolExpr] = (),
        extra_details: dict | None = None,
    ) -> CompiledTask:
        code = task.build()
        max_errors = task.max_errors
        if max_errors is None:
            if code.distance is None:
                raise ValueError("max_errors must be given when the code distance is unknown")
            max_errors = (code.distance - 1) // 2
        constraints = list(task.extra_constraints) + list(extra_constraints)
        formula = accurate_correction_formula(
            code,
            max_errors=max_errors,
            error_model=task.error_model,
            extra_constraints=constraints or None,
        )
        split_variables, weight, threshold = _split_hints(code, task.error_model)
        details = {"max_errors": max_errors, "error_model": task.error_model.kind}
        details.update(extra_details or {})
        return CompiledTask(
            task=task,
            kind=kind or task.kind,
            subject=code.name,
            formula=formula,
            split_variables=split_variables,
            split_weight=weight,
            split_threshold=threshold,
            details=details,
        )

    def _compile_detection(self, task: DetectionTask) -> CompiledTask:
        code = task.build()
        trial_distance = task.trial_distance
        if trial_distance is None:
            # Mirror the registry sweep default: fall back to weight-2
            # detection when the true distance is unknown or below two.
            trial_distance = code.distance if code.distance and code.distance >= 2 else 2
        formula = precise_detection_formula(code, trial_distance, error_model=task.error_model)
        split_variables, weight, threshold = _split_hints(code, task.error_model)
        return CompiledTask(
            task=task,
            kind=task.kind,
            subject=code.name,
            formula=formula,
            split_variables=split_variables,
            split_weight=weight,
            split_threshold=threshold,
            details={"trial_distance": trial_distance, "error_model": task.error_model.kind},
        )

    def _compile_constrained(self, task: ConstrainedTask) -> CompiledTask:
        code = task.build()
        constraints: list[BoolExpr] = []
        if task.locality:
            allowed = list(task.allowed_qubits) if task.allowed_qubits is not None else None
            constraints.append(
                locality_constraint(
                    code, task.error_model, allowed_qubits=allowed, seed=task.seed
                )
            )
        if task.discreteness:
            constraints.append(discreteness_constraint(code, task.error_model))
        base = CorrectionTask(
            code=task.code, max_errors=task.max_errors, error_model=task.error_model
        )
        compiled = self._compile_correction(
            base,
            kind=task.kind,
            extra_constraints=constraints,
            extra_details={"constraints": task.constraint_labels or ["none"]},
        )
        compiled.task = task
        return compiled

    def _compile_fixed_error(self, task: FixedErrorTask) -> CompiledTask:
        code = task.build()
        error_map = task.error_map
        constraints: list[BoolExpr] = []
        for qubit in range(code.num_qubits):
            pauli = error_map.get(qubit)
            for component, prefix in (("X", "ex"), ("Z", "ez")):
                variable = BoolVar(f"{prefix}_{qubit}")
                present = pauli in (component, "Y") if pauli else False
                constraints.append(variable if present else Not(variable))
        max_errors = task.max_errors if task.max_errors is not None else len(error_map)
        base = CorrectionTask(code=task.code, max_errors=max_errors, error_model="any")
        compiled = self._compile_correction(
            base,
            kind=task.kind,
            extra_constraints=constraints,
            extra_details={"error_qubits": error_map},
        )
        compiled.task = task
        return compiled

    def _compile_program(self, task: ProgramTask) -> CompiledTask:
        from repro.vc.pipeline import compile_triple

        formula, details = compile_triple(task.triple, decoder_condition=task.decoder_condition)
        # The pipeline produces a validity formula; the backends decide
        # satisfiability, so refute the negation (unsat = valid = verified).
        return CompiledTask(
            task=task,
            kind=f"{task.kind}:{task.triple.name}",
            subject=task.triple.name,
            formula=Not(formula),
            details=details,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, task: Task, backend: Backend | str | None = None) -> Result:
        """Decide one task, blocking, and return the unified result."""
        return self._execute(task, self.coerce(backend))

    def submit(
        self,
        task: Task,
        *,
        priority: int = 0,
        deadline: float | None = None,
        backend: Backend | str | None = None,
    ) -> Job:
        """Enqueue ``task`` and immediately return its :class:`Job` handle.

        Jobs run on the sharded executor's lane threads — each task routes
        to the lane owning its code's shard, highest ``priority`` first
        (FIFO among equals) within a lane; ``deadline`` bounds wall-clock
        seconds from submission, enforced inside the solver hot path.  The
        handle streams typed events (``job.events()``), blocks for the
        result (``job.result()``) and cancels (``job.cancel()``) — a
        cancelled solve stops within one control slice and the shared
        session stays reusable.  ``Engine.run`` remains the blocking
        one-task wrapper.
        """
        with self._submit_lock:
            self._job_counter += 1
            job_id = f"job-{self._job_counter}"
            if self._executor is None:
                self._executor = ShardedJobExecutor(self, lanes=self.lanes)
                self.resources.attach_executor(self._executor)
            executor = self._executor
        job = Job(
            job_id,
            task,
            priority=priority,
            deadline=deadline,
            backend=backend,
        )
        return executor.submit(job)

    def release_task(self, task: Task) -> bool:
        """Drop a (cancelled) task's guarded formula from the shared solver
        resources; see :meth:`ResourceManager.retire_task`."""
        return self.resources.retire_task(task)

    @staticmethod
    def _check_control(control: SolveControl | None) -> None:
        """Between-step interruption point (probe boundaries, pre-solve)."""
        if control is None:
            return
        reason = control.interrupted()
        if reason is not None:
            raise SolverInterrupted(reason)

    def _execute(
        self,
        task: Task,
        chosen: Backend,
        control: SolveControl | None = None,
        emit: Emit | None = None,
    ) -> Result:
        """The engine core behind both ``run`` and the job executor.

        ``control``/``emit`` are optional instrumentation: with both None
        this is exactly the historical blocking path, byte-for-byte.

        Execution runs under the lane lock of the task's shard — the same
        lock the sharded executor's lane thread holds — so blocking calls
        and background jobs on the *same* code serialize, while different
        shards proceed concurrently.
        """
        shard = self.resources.shard_for_task(task)
        with self._lane_locks[shard % len(self._lane_locks)]:
            try:
                return self._execute_on_lane(task, chosen, control, emit)
            finally:
                # Evicted contexts whose warm state must be persisted are
                # parked per shard; flushing at the job boundary keeps the
                # session access on the owning lane.
                self.resources.flush_retired(shard)

    def _execute_on_lane(
        self,
        task: Task,
        chosen: Backend,
        control: SolveControl | None = None,
        emit: Emit | None = None,
    ) -> Result:
        if sanitize.enabled():
            # The lane lock requirement crosses the _execute/_execute_on_lane
            # boundary, which the static REPRO-LOCK rule cannot see — check
            # it dynamically for any future direct caller.
            shard = self.resources.shard_for_task(task)
            sanitize.assert_lock_held(
                self._lane_locks[shard % len(self._lane_locks)],
                f"lane {shard} session access (_execute_on_lane)",
            )
        if isinstance(task, DistanceTask):
            return self._run_distance(task, chosen, control=control, emit=emit)
        start = time.perf_counter()
        compiled, cached = self._compile_cached(task)
        if emit is not None:
            emit(TaskCompiled(
                task_kind=compiled.kind, subject=compiled.subject,
                cached=cached, compile_seconds=compiled.compile_seconds,
            ))
        session = None
        absorbed = 0
        store_absorbed = 0
        if getattr(chosen, "wants_session", False):
            session = self.resources.session_for(task, compiled)
            if session is not None and hasattr(session, "context"):
                # Family warm start: offer this code's context the learnt
                # clauses of its smaller siblings before the solve, guarded
                # by this task's own selectors.
                absorbed = self.resources.absorb_from_family(
                    getattr(task, "code", None), session.context, session.selectors
                )
                # Clause-store transfer: sibling-fingerprint candidates from
                # past runs / other processes, entailment-proved on attach.
                store_absorbed = self.resources.absorb_from_store(
                    getattr(task, "code", None), session.context, session.selectors
                )
        kwargs = {}
        if control is not None and getattr(chosen, "supports_control", False):
            kwargs["control"] = control
        else:
            self._check_control(control)
        if emit is not None:
            emit(SubtaskStarted(index=0, description=f"solve:{compiled.kind}"))
        if getattr(chosen, "wants_resources", False):
            check = chosen.check(
                compiled, session=session, resources=self.resources, **kwargs
            )
        else:
            check = chosen.check(compiled, session=session, **kwargs)
        elapsed = time.perf_counter() - start
        if emit is not None:
            emit(SolverStats(
                conflicts=check.conflicts, decisions=check.decisions,
                propagations=check.propagations,
                num_variables=check.num_variables, num_clauses=check.num_clauses,
                blocker_hits=getattr(check, "blocker_hits", 0),
                heap_discards=getattr(check, "heap_discards", 0),
                binary_subsumed=getattr(check, "binary_subsumed", 0),
                family_absorbed=absorbed,
                store_absorbed=store_absorbed,
                learnt_evicted=getattr(check, "learnt_evicted", 0),
            ))
        details = dict(compiled.details)
        details.update(check.metadata)
        if absorbed:
            details["family_absorbed"] = absorbed
        if store_absorbed:
            details["store_absorbed"] = store_absorbed
        if session is not None or getattr(chosen, "wants_resources", False):
            details["resources"] = self.resources.stats()
        return Result(
            task=compiled.kind,
            subject=compiled.subject,
            verified=check.is_unsat,
            counterexample=check.model if check.is_sat else None,
            elapsed_seconds=elapsed,
            compile_seconds=compiled.compile_seconds,
            backend=chosen.name,
            cached=cached,
            num_variables=check.num_variables,
            num_clauses=check.num_clauses,
            conflicts=check.conflicts,
            decisions=check.decisions,
            propagations=check.propagations,
            details=details,
        )

    @staticmethod
    def _distance_strategy(task: DistanceTask, code, limit: int) -> str:
        """Choose the search policy for one distance discovery.

        An explicit ``task.strategy`` wins.  Otherwise a probe-cost
        heuristic decides: a probe's cost grows with the upper bound it
        activates (a wider weight window admits more candidate errors and a
        larger live counter), so when the search span is much wider than the
        expected distance, opening with bisection's mid-span probe is the
        most expensive query of the whole walk — galloping from below (1, 2,
        4, ...) reaches the same bracket through exponentially spaced *cheap*
        probes.  For tight spans plain bisection is already optimal.
        """
        requested = getattr(task, "strategy", None)
        if requested in ("binary", "binary-search"):
            return "binary-search"
        if requested == "galloping":
            return "galloping"
        span = limit - 1
        expected = code.distance or max(2, round(code.num_qubits ** 0.5))
        return "galloping" if span >= 4 * expected else "binary-search"

    @staticmethod
    def _distance_checkpoint_key(task: DistanceTask, code, limit: int, model_kind: str) -> str:
        """Semantic identity of one distance walk, for checkpoint keying.

        Hashes what the bracket is a fact *about* — the code (registry key,
        or name/size/stabilizers for ad-hoc codes), the search limit and the
        error model — so a checkpoint can never be loaded by a walk whose
        answer could differ, while a restarted process (or another service
        replica on the same store) maps the identical task to the same key.
        """
        digest = hashlib.sha256()
        if isinstance(task.code, str):
            identity = task.code
        else:
            stabilizers = getattr(code, "stabilizers", None) or ()
            identity = "/".join(
                [getattr(code, "name", type(code).__name__), str(code.num_qubits)]
                + [str(stabilizer) for stabilizer in stabilizers]
            )
        for part in ("distance-walk", identity, str(limit), model_kind):
            digest.update(part.encode())
            digest.update(b"\x1f")
        return digest.hexdigest()

    def _run_distance(
        self,
        task: DistanceTask,
        backend: Backend,
        control: SolveControl | None = None,
        emit: Emit | None = None,
    ) -> Result:
        """Distance discovery: adaptive search on ONE shared solving session.

        The trial-independent detection base (non-trivial, syndrome-free,
        logically acting error) is encoded exactly once — on the code's
        shared :class:`~repro.api.resources.CodeContext` for serial runs, or
        on a persistent worker pool from the :class:`PoolManager` for
        parallel runs.  Instead of walking the trial distance linearly, the
        walk brackets the minimum undetectable-error weight: each probe
        activates selector-guarded bounds ``lo <= weight <= mid`` (the lower
        bound is sound because every weight below ``lo`` has already been
        refuted), a SAT probe clamps the upper end to the witness's actual
        weight, an UNSAT probe raises the lower end past ``mid``.  That
        issues O(log d) solver calls where the linear walk issued O(d),
        while learnt clauses flow between probes on the same live solver.
        The probe schedule is adaptive (:meth:`_distance_strategy`): plain
        bisection, or a galloping lower-bound start (1, 2, 4, ...) that
        switches to bisection at the first satisfiable probe.
        """
        code = task.build()
        limit = task.max_trial or code.num_qubits + 1
        if not isinstance(backend, (SerialBackend, ParallelBackend)):
            # A custom backend decides formulas its own way; honour the
            # Backend protocol by probing one monolithic DetectionTask per
            # trial through backend.check() instead of our session walk.
            return self._run_distance_probes(task, backend, code, limit, control, emit)
        start = time.perf_counter()
        compile_start = time.perf_counter()
        error_model = ErrorModel("any")
        num_workers = getattr(backend, "num_workers", 1)
        used_resources = True
        context = None
        family_absorbed = 0
        store_absorbed = 0
        # On the shared context session the extracted witness also assigns
        # variables of other guarded task formulas; restrict it to the base
        # encoding's own variables.  The pool/fallback sessions hold only the
        # base, so no restriction is needed there.
        base_variables: frozenset[str] | None = None
        if num_workers > 1:
            base, weight = precise_detection_base(code, error_model)
            split_variables, split_weight, split_threshold = _split_hints(code, error_model)
            session = self.resources.pools.split_session(
                base,
                split_variables=split_variables,
                heuristic_weight=backend.heuristic_weight or split_weight,
                threshold=backend.threshold if backend.threshold is not None else split_threshold,
                num_workers=num_workers,
                max_subtasks=backend.max_subtasks,
            )
            base_selectors: tuple[str, ...] = ()
        else:
            if task.deterministic:
                context = self.resources.context_for(task.code)
            if context is not None:
                weight, base_guard, base_variables = context.detection_base(
                    error_model.kind,
                    lambda: precise_detection_base(code, error_model),
                )
                context.maybe_warm_load()
                session = context.session
                base_selectors = (base_guard,)
                family_absorbed = self.resources.absorb_from_family(
                    task.code, context, base_selectors
                )
                store_absorbed = self.resources.absorb_from_store(
                    task.code, context, base_selectors
                )
            else:
                base, weight = precise_detection_base(code, error_model)
                session = SolveSession(base)
                base_selectors = ()
                used_resources = False

        if context is not None:

            def upper(bound: int) -> str:
                return context.weight_upper_guard(error_model.kind, weight, bound)

            def lower(bound: int) -> str:
                return context.weight_lower_guard(error_model.kind, weight, bound)

        else:

            def upper(bound: int) -> str:
                return session.add_weight_guard(f"w:le:{bound}", weight, bound)

            def lower(bound: int) -> str:
                return session.add_weight_lower_guard(f"w:ge:{bound}", weight, bound)

        compile_seconds = time.perf_counter() - compile_start
        strategy = self._distance_strategy(task, code, limit)
        if emit is not None:
            emit(TaskCompiled(
                task_kind=task.kind, subject=code.name,
                cached=False, compile_seconds=compile_seconds,
            ))

        trials: list[dict] = []
        distance = limit
        witness = None
        conflicts = decisions = propagations = 0
        blocker_hits = heap_discards = binary_subsumed = 0
        learnt_evicted = 0
        last = None
        lo, hi = 1, limit - 1
        galloping = strategy == "galloping"
        gallop_bound = 1
        # Checkpoint/resume: with a clause store attached, the walk persists
        # its bracket after every probe under a semantic task key, so a
        # cancelled or deadline-killed job picks the search up from where it
        # stopped instead of re-refuting bounds it already settled.
        store = self.resources.clause_store
        checkpoint_key = None
        resumed_from = None
        prior_probes = 0
        if store is not None and context is not None and task.deterministic:
            checkpoint_key = self._distance_checkpoint_key(task, code, limit, error_model.kind)
            state = _validate_checkpoint(store.checkpoint_load(checkpoint_key), limit)
            if state is not None:
                lo, hi = state["lo"], state["hi"]
                distance = state["distance"]
                witness = state.get("witness")
                prior_probes = state["probes"]
                if state.get("strategy") == strategy:
                    galloping = state["galloping"]
                    gallop_bound = state["gallop_bound"]
                else:
                    # A different strategy still inherits the bracket — the
                    # refuted bounds are facts about the code, not the walk —
                    # but restarts its own probe schedule inside it.
                    galloping = False
                resumed_from = {"lo": lo, "hi": hi, "probes": prior_probes}
        # A pool session must not be evicted (closed) by another lane's
        # split_session() while this walk drives it.
        pool_session = session if num_workers > 1 else None
        if pool_session is not None:
            self.resources.pools.mark_busy(pool_session)
        try:
            while lo <= hi:
                self._check_control(control)
                if galloping:
                    mid = min(gallop_bound, hi)
                    gallop_bound *= 2
                else:
                    mid = (lo + hi) // 2
                selectors = list(base_selectors)
                if lo > 1:
                    selectors.append(lower(lo))
                selectors.append(upper(mid))
                if emit is not None:
                    emit(SubtaskStarted(
                        index=len(trials),
                        description=f"probe {lo} <= weight <= {mid}",
                    ))
                trial_start = time.perf_counter()
                last = session.check(select=tuple(selectors), control=control)
                conflicts += last.conflicts
                decisions += last.decisions
                propagations += last.propagations
                blocker_hits += getattr(last, "blocker_hits", 0)
                heap_discards += getattr(last, "heap_discards", 0)
                binary_subsumed += getattr(last, "binary_subsumed", 0)
                learnt_evicted += getattr(last, "learnt_evicted", 0)
                trial_elapsed = time.perf_counter() - trial_start
                trials.append(
                    {"trial_distance": mid + 1, "bound": mid, "window": [lo, hi],
                     "verified": last.is_unsat,
                     "elapsed_seconds": trial_elapsed,
                     "conflicts": last.conflicts, "decisions": last.decisions}
                )
                found = None
                if last.is_sat:
                    # The witness pins the distance to its own weight; everything
                    # strictly below stays open for the next probe.  A satisfiable
                    # probe also ends any galloping phase: the answer is bracketed
                    # and bisection finishes the narrowed window.
                    model = last.model or {}
                    if base_variables is not None:
                        model = {name: value for name, value in model.items()
                                 if name in base_variables}
                    found = max(1, model_error_weight(model, error_model))
                    distance = found
                    witness = model
                    hi = found - 1
                    galloping = False
                else:
                    lo = mid + 1
                if checkpoint_key is not None:
                    payload = {
                        "version": 1,
                        "strategy": strategy,
                        "limit": limit,
                        "lo": lo,
                        "hi": hi,
                        "distance": distance,
                        "probes": prior_probes + len(trials),
                        "galloping": galloping,
                        "gallop_bound": gallop_bound,
                    }
                    if witness:
                        payload["witness"] = witness
                    store.checkpoint_save(checkpoint_key, payload)
                    # Flush learnt clauses at the probe boundary too, so a
                    # kill between probes loses neither the bracket nor the
                    # clauses that made its probes cheap.
                    context.save_warm()
                if emit is not None:
                    emit(DistanceProbe(
                        bound=mid, window=[trials[-1]["window"][0], trials[-1]["window"][1]],
                        sat=last.is_sat, witness_weight=found,
                        conflicts=last.conflicts, decisions=last.decisions,
                        elapsed_seconds=trial_elapsed,
                        resumed_from=resumed_from if len(trials) == 1 else None,
                    ))
            if checkpoint_key is not None:
                # A finished walk leaves no checkpoint: resume is a benefit
                # reserved for interrupted walks, and a rerun of a completed
                # task must report the same structure as a cold run.
                store.checkpoint_delete(checkpoint_key)
            elapsed = time.perf_counter() - start
            stats = session.stats()
        finally:
            if pool_session is not None:
                self.resources.pools.mark_idle(pool_session)
        if emit is not None:
            emit(SolverStats(
                conflicts=conflicts, decisions=decisions, propagations=propagations,
                num_variables=last.num_variables if last is not None else 0,
                num_clauses=last.num_clauses if last is not None else 0,
                blocker_hits=blocker_hits, heap_discards=heap_discards,
                binary_subsumed=binary_subsumed,
                family_absorbed=family_absorbed,
                store_absorbed=store_absorbed,
                learnt_evicted=learnt_evicted,
            ))
        details = {
            "distance": distance,
            "trials": trials,
            "base_encodings": 1,
            "strategy": strategy,
            "session": stats,
        }
        if family_absorbed:
            details["family_absorbed"] = family_absorbed
        if store_absorbed:
            details["store_absorbed"] = store_absorbed
        if resumed_from is not None:
            details["resumed_from"] = resumed_from
        if used_resources:
            details["resources"] = self.resources.stats()
        if num_workers > 1:
            details["num_workers"] = num_workers
        if witness:
            # The witness is informative (a minimum-weight undetectable
            # error), but `counterexample` is reserved for unverified results.
            details["witness"] = witness
        return Result(
            task=task.kind,
            subject=code.name,
            verified=True,
            elapsed_seconds=elapsed,
            compile_seconds=compile_seconds,
            backend=backend.name,
            num_variables=last.num_variables if last is not None else 0,
            num_clauses=last.num_clauses if last is not None else 0,
            conflicts=conflicts,
            decisions=decisions,
            propagations=propagations,
            details=details,
        )

    def _run_distance_probes(
        self,
        task: DistanceTask,
        backend: Backend,
        code,
        limit: int,
        control: SolveControl | None = None,
        emit: Emit | None = None,
    ) -> Result:
        """Legacy trial walk for third-party backends: one monolithic
        detection probe per trial, each decided by ``backend.check``.

        A job's control is honoured at probe boundaries (and inside the
        solve when the backend declares ``supports_control``)."""
        start = time.perf_counter()
        trials: list[dict] = []
        distance = limit
        last: Result | None = None
        for trial in range(2, limit + 1):
            self._check_control(control)
            if emit is not None:
                emit(SubtaskStarted(
                    index=len(trials), description=f"detection probe, trial {trial}"
                ))
            probe = DetectionTask(code=task.code, trial_distance=trial)
            last = self._execute(probe, backend, control=control)
            trials.append(
                {"trial_distance": trial, "verified": last.verified,
                 "elapsed_seconds": last.elapsed_seconds, "conflicts": last.conflicts,
                 "decisions": last.decisions}
            )
            if emit is not None:
                emit(DistanceProbe(
                    bound=trial - 1, window=[1, limit - 1], sat=not last.verified,
                    witness_weight=None, conflicts=last.conflicts,
                    decisions=last.decisions, elapsed_seconds=last.elapsed_seconds,
                ))
            if not last.verified:
                distance = trial - 1
                break
        details = {"distance": distance, "trials": trials}
        if last is not None and last.counterexample:
            details["witness"] = last.counterexample
        return Result(
            task=task.kind,
            subject=code.name,
            verified=True,
            elapsed_seconds=time.perf_counter() - start,
            backend=backend.name,
            num_variables=last.num_variables if last is not None else 0,
            num_clauses=last.num_clauses if last is not None else 0,
            conflicts=sum(t.get("conflicts", 0) for t in trials),
            decisions=sum(t.get("decisions", 0) for t in trials),
            details=details,
        )

    def find_distance(
        self, code, max_trial: int | None = None, backend: Backend | str | None = None
    ) -> int:
        """Convenience wrapper returning the discovered distance as an int."""
        result = self.run(DistanceTask(code=code, max_trial=max_trial), backend=backend)
        return result.details["distance"]

    # ------------------------------------------------------------------
    def run_many(
        self,
        tasks: Iterable[Task],
        backend: Backend | str | None = None,
        processes: int | None = None,
        schedule: str | None = None,
    ) -> list[Result]:
        """Decide a batch of tasks, preserving order, with per-task timing.

        With ``processes > 1`` the tasks are distributed across a process
        pool; each worker runs its task serially end-to-end (a nested
        :class:`ParallelBackend` pool is forced sequential because pool
        workers are daemonic).  Tasks must be picklable for the pool path,
        which every registry-key task is.

        ``schedule`` controls *execution* order — results always come back
        in input order.  ``"fifo"`` runs tasks as given; ``"reuse"`` orders
        the sweep by (family, family rank, task kind, weight window), so
        smaller family members run before larger ones and consecutive tasks
        maximally hit the shared contexts and the clause store.  The default
        is ``"reuse"`` whenever a clause store is attached (the reordering
        exists to feed it) and ``"fifo"`` otherwise, preserving historical
        behaviour for store-less engines.

        With a clause store attached, multi-task sweeps are additionally
        *checkpointed*: a manifest keyed by the sweep's task list records
        each completed result, so a killed or drained replica's sweep
        resumes on the next call with only the incomplete tasks re-run
        (resumed results carry ``details["sweep_resumed"] = True``).  The
        manifest is deleted once the sweep completes.
        """
        batch = list(tasks)
        chosen = coerce_backend(backend) if backend is not None else self.backend
        store = self.resources.clause_store
        if schedule is None:
            schedule = "reuse" if store is not None else "fifo"
        order = list(range(len(batch)))
        if schedule == "reuse" and len(batch) > 1:
            order.sort(key=lambda index: _reuse_sort_key(batch[index]))
        manifest_key: str | None = None
        completed: dict[int, Result] = {}
        if store is not None and len(batch) > 1:
            manifest_key = _sweep_manifest_key(batch, order)
            completed = _restore_sweep_manifest(
                store.checkpoint_load(manifest_key), len(batch)
            )
        remaining = [index for index in order if index not in completed]
        results: list[Result | None] = [None] * len(batch)
        for index, result in completed.items():
            results[index] = result
        if processes and processes > 1 and len(batch) > 1:
            store_dir = store.directory if store is not None else None
            payloads = [(batch[index], _worker_backend(chosen), store_dir) for index in remaining]
            if payloads:
                with multiprocessing.Pool(processes=processes) as pool:
                    mapped = pool.map(_run_payload, payloads)
                for index, result in zip(remaining, mapped):
                    results[index] = result
            if manifest_key is not None:
                store.checkpoint_delete(manifest_key)
            return results  # type: ignore[return-value]
        for index in remaining:
            results[index] = self.run(batch[index], backend=chosen)
            if manifest_key is not None:
                completed[index] = results[index]
                store.checkpoint_save(
                    manifest_key, _sweep_manifest_payload(len(batch), completed)
                )
        if manifest_key is not None:
            store.checkpoint_delete(manifest_key)
        return results  # type: ignore[return-value]


def _worker_backend(chosen: Backend) -> Backend:
    if isinstance(chosen, ParallelBackend):
        return replace(chosen, num_workers=1)
    return chosen


def _sweep_manifest_key(batch: list, order: list[int]) -> str:
    """The checkpoint key for one sweep: a hash over the *scheduled* task
    sequence, so the same task list under the same schedule resumes and any
    change to either runs cold (task reprs are deterministic dataclasses)."""
    digest = hashlib.sha256()
    for index in order:
        digest.update(repr(batch[index]).encode())
        digest.update(b"\x1f")
    return f"sweep:{digest.hexdigest()}"


def _sweep_manifest_payload(total: int, completed: "dict[int, Result]") -> dict:
    # default=str keeps exotic details values from aborting the sweep with a
    # serialization error: the manifest is a resume hint, not the result of
    # record, so lossy stringification there is acceptable.
    results = {
        str(index): json.loads(result.to_json()) for index, result in completed.items()
    }
    return {"version": 1, "total": total, "results": results}


def _restore_sweep_manifest(state: dict | None, total: int) -> "dict[int, Result]":
    """Completed results from a prior partial sweep, or ``{}``.

    Same discipline as distance-walk checkpoints: the store checksums the
    blob, this validates the semantics — wrong version/total or a malformed
    entry discards the whole manifest, costing only the resume shortcut.
    """
    if not isinstance(state, dict) or state.get("version") != 1:
        return {}
    if state.get("total") != total or not isinstance(state.get("results"), dict):
        return {}
    completed: dict[int, Result] = {}
    for key, payload in state["results"].items():
        try:
            index = int(key)
        except (TypeError, ValueError):
            return {}
        if not 0 <= index < total or not isinstance(payload, dict):
            return {}
        try:
            result = Result.from_dict(payload)
        except TypeError:
            return {}
        if not isinstance(result.details, dict):
            result.details = {}
        result.details["sweep_resumed"] = True
        completed[index] = result
    return completed


# Execution-order key for the reuse-aware sweep schedule: group by family
# (smaller family_rank first, so each code warm-starts its bigger siblings),
# then by task kind cheapest-first, then by how wide the weight window is.
_KIND_ORDER = {
    "precise-detection": 0,
    "accurate-correction": 1,
    "constrained-correction": 2,
    "fixed-error": 3,
    "find-distance": 4,
}


def _reuse_sort_key(task: Task) -> tuple:
    code = getattr(task, "code", None)
    if isinstance(code, str):
        entry = CODE_REGISTRY.get(code)
        family = family_of(code) or f"~{code}"
        rank = entry.family_rank if entry is not None else 0
        code_name = code
    else:
        code_name = getattr(code, "name", type(code).__name__ if code is not None else "")
        family = f"~{code_name}"
        rank = getattr(code, "num_qubits", 0)
    kind = _KIND_ORDER.get(getattr(task, "kind", ""), len(_KIND_ORDER))
    window = (
        getattr(task, "max_errors", None)
        or getattr(task, "trial_distance", None)
        or getattr(task, "max_trial", None)
        or 0
    )
    return (family, rank, code_name, kind, window)


def _run_payload(payload: tuple) -> Result:
    task, backend = payload[0], payload[1]
    store_dir = payload[2] if len(payload) > 2 else None
    engine = Engine(backend=backend, clause_store=store_dir)
    try:
        return engine.run(task)
    finally:
        if store_dir is not None:
            # Pool workers are throwaway engines: without an explicit flush
            # their learnt clauses would die with the process instead of
            # landing in the shared store.
            engine.resources.save_warm()


def registry_sweep_tasks(keys: Sequence[str] | None = None) -> list[Task]:
    """One task per registry code, against its target property (Table 3).

    Correction-target codes get a :class:`CorrectionTask` at their default
    correctable weight; detection-target codes get a :class:`DetectionTask`
    at their recorded distance (or weight-2 detection when unknown).
    """
    selected = list(keys) if keys is not None else sorted(CODE_REGISTRY)
    tasks: list[Task] = []
    for key in selected:
        if key not in CODE_REGISTRY:
            raise KeyError(f"unknown code {key!r}; known codes: {sorted(CODE_REGISTRY)}")
        entry = CODE_REGISTRY[key]
        if entry.target == "correction":
            tasks.append(CorrectionTask(code=key))
        else:
            tasks.append(DetectionTask(code=key))
    return tasks
