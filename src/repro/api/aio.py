"""Asyncio facade over the job API: ``await engine.arun(task)``.

:class:`AsyncEngine` wraps a (possibly shared) synchronous
:class:`~repro.api.engine.Engine` and exposes its job lifecycle to an event
loop without blocking it: submission is non-blocking by construction, results
resolve through done-callbacks bridged with ``loop.call_soon_threadsafe``,
and ``async for event in job.events()`` consumes the same replay-then-live
typed event stream the synchronous :meth:`~repro.api.jobs.Job.events`
iterator yields.  Many jobs multiplex over the engine's persistent solver
resources (per-code shared sessions, worker pools); execution itself is
serialized by the engine's dispatcher, which is what keeps those shared
solvers single-threaded.

    async with AsyncEngine() as engine:
        job = engine.submit(DistanceTask(code="surface-5"), deadline=30.0)
        async for event in job.events():
            ...
        result = await job.result()
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Iterable

from repro.api.engine import Engine
from repro.api.events import Event
from repro.api.jobs import Job, JobStatus
from repro.api.result import Result
from repro.api.tasks import Task

__all__ = ["AsyncEngine", "AsyncJob"]


class AsyncJob:
    """An awaitable view of one :class:`~repro.api.jobs.Job`."""

    def __init__(self, job: Job):
        self.job = job

    @property
    def id(self) -> str:
        return self.job.id

    @property
    def status(self) -> JobStatus:
        return self.job.status

    def cancel(self) -> "AsyncJob":
        self.job.cancel()
        return self

    def request_cancel(self, reason: str = "cancelled") -> bool:
        """Thread-safe cancel request; False when the job is already terminal
        (see :meth:`repro.api.jobs.Job.request_cancel`)."""
        return self.job.request_cancel(reason)

    async def result(self) -> Result:
        """Await the job's result; raises
        :class:`~repro.api.jobs.JobCancelledError` on cancellation and the
        original exception on failure, like the blocking accessor."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Result] = loop.create_future()

        def _resolve(finished: Job) -> None:
            def _set() -> None:
                if future.cancelled():
                    return
                try:
                    future.set_result(finished.result(timeout=0))
                # repro: allow[REPRO-EXC] - relayed verbatim into the future
                except BaseException as error:  # noqa: BLE001
                    future.set_exception(error)

            loop.call_soon_threadsafe(_set)

        self.job.add_done_callback(_resolve)
        return await future

    async def events(self) -> AsyncIterator[Event]:
        """Async-iterate the event stream: full replay, then live events,
        ending with the job's single terminal event."""
        loop = asyncio.get_running_loop()
        feed: asyncio.Queue[Event] = asyncio.Queue()

        def _push(event: Event) -> None:
            loop.call_soon_threadsafe(feed.put_nowait, event)

        self.job.subscribe(_push)
        while True:
            event = await feed.get()
            yield event
            if event.TERMINAL:
                return

    async def wait(self) -> "AsyncJob":
        """Await the terminal state without consuming the result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future[None] = loop.create_future()
        self.job.add_done_callback(
            lambda _job: loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(None)
            )
        )
        await future
        return self


class AsyncEngine:
    """The async entry point: submit/stream/await jobs from an event loop."""

    def __init__(self, engine: Engine | None = None, **engine_kwargs):
        self.engine = engine if engine is not None else Engine(**engine_kwargs)

    # ------------------------------------------------------------------
    def submit(
        self,
        task: Task,
        *,
        priority: int = 0,
        deadline: float | None = None,
        backend=None,
    ) -> AsyncJob:
        """Enqueue ``task`` (non-blocking) and return its async handle."""
        return AsyncJob(
            self.engine.submit(
                task, priority=priority, deadline=deadline, backend=backend
            )
        )

    async def arun(
        self,
        task: Task,
        *,
        priority: int = 0,
        deadline: float | None = None,
        backend=None,
    ) -> Result:
        """Submit and await one task — the async mirror of ``Engine.run``."""
        return await self.submit(
            task, priority=priority, deadline=deadline, backend=backend
        ).result()

    async def arun_many(
        self,
        tasks: Iterable[Task],
        *,
        priority: int = 0,
        deadline: float | None = None,
        backend=None,
    ) -> list[Result]:
        """Submit a batch and await all results, preserving order."""
        jobs = [
            self.submit(task, priority=priority, deadline=deadline, backend=backend)
            for task in tasks
        ]
        return list(await asyncio.gather(*(job.result() for job in jobs)))

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Release engine resources without blocking the loop."""
        await asyncio.get_running_loop().run_in_executor(None, self.engine.close)

    def close(self) -> None:
        self.engine.close()

    async def __aenter__(self) -> "AsyncEngine":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
