"""The unified, JSON-serializable verification result.

``Result`` subsumes the legacy :class:`~repro.verifier.report.VerificationReport`:
it carries the same verdict/counterexample/solver statistics plus the
engine-level fields (backend, compile time, cache hit).  ``to_report`` /
``from_report`` convert between the two so the backward-compatible shims can
keep their historical return type.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.verifier.report import VerificationReport

__all__ = ["Result"]


@dataclass
class Result:
    """Outcome of one verification task.

    ``verified`` is True when the property holds for *all* error
    configurations in scope (the underlying SAT query was unsatisfiable);
    otherwise ``counterexample`` holds a concrete falsifying assignment.
    """

    task: str
    subject: str
    verified: bool
    counterexample: dict[str, bool] | None = None
    elapsed_seconds: float = 0.0
    compile_seconds: float = 0.0
    backend: str = "serial"
    cached: bool = False
    num_variables: int = 0
    num_clauses: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    details: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        status = "VERIFIED" if self.verified else "COUNTEREXAMPLE"
        return (
            f"[{status}] {self.task} on {self.subject} "
            f"({self.elapsed_seconds:.3f}s, {self.num_variables} vars, "
            f"{self.num_clauses} clauses, {self.conflicts} conflicts, "
            f"{self.decisions} decisions, {self.propagations} propagations)"
        )

    def session_stats(self) -> dict | None:
        """Cumulative per-session solver statistics, when a persistent
        session decided this task (see ``details["session"]``), merged with
        the engine's resource counters (context/pool hits and misses,
        learnt clauses kept/deleted) when the resource layer was involved
        (``details["resources"]``)."""
        stats = self.details.get("session")
        resources = self.details.get("resources")
        merged: dict = {}
        # Resource counters first, session counters second: where the keys
        # overlap (learnt_kept/learnt_deleted), the per-session values — the
        # ones describing the session that decided THIS task — win over the
        # engine-wide sums, which stay available under details["resources"].
        if isinstance(resources, dict):
            merged.update(resources)
        if isinstance(stats, dict):
            merged.update(stats)
        return merged or None

    def counterexample_qubits(self) -> list[int]:
        """Indices of qubits carrying an error in the counterexample."""
        if not self.counterexample:
            return []
        qubits = set()
        for name, value in self.counterexample.items():
            if value and (name.startswith("ex_") or name.startswith("ez_") or name.startswith("e_")):
                qubits.add(int(name.rsplit("_", 1)[1]))
        return sorted(qubits)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Result":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in payload.items() if key in known})

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str, sort_keys=False)

    @classmethod
    def from_json(cls, payload: str) -> "Result":
        return cls.from_dict(json.loads(payload))

    # ------------------------------------------------------------------
    def to_report(self) -> VerificationReport:
        """Down-convert to the legacy report type used by the shims."""
        return VerificationReport(
            task=self.task,
            code_name=self.subject,
            verified=self.verified,
            counterexample=dict(self.counterexample) if self.counterexample else None,
            elapsed_seconds=self.elapsed_seconds,
            num_variables=self.num_variables,
            num_clauses=self.num_clauses,
            conflicts=self.conflicts,
            details=dict(self.details),
        )

    @classmethod
    def from_report(cls, report: VerificationReport, backend: str = "serial") -> "Result":
        return cls(
            task=report.task,
            subject=report.code_name,
            verified=report.verified,
            counterexample=dict(report.counterexample) if report.counterexample else None,
            elapsed_seconds=report.elapsed_seconds,
            backend=backend,
            num_variables=report.num_variables,
            num_clauses=report.num_clauses,
            conflicts=report.conflicts,
            details=dict(report.details),
        )
