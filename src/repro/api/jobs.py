"""Job-oriented execution: submit → stream/await → result | cancel.

The blocking ``Engine.run(task)`` answer-or-nothing surface becomes a *job*
lifecycle:

* :meth:`Engine.submit` enqueues a task and immediately returns a
  :class:`Job` handle;
* the engine-owned :class:`ShardedJobExecutor` routes each job to a worker
  *lane* (one dispatcher thread + priority queue per lane, highest
  :attr:`Job.priority` first, FIFO among equals).  Lane assignment is the
  concurrency-safety invariant: every code — and every code *family*, so
  that cross-code clause absorption stays single-threaded too — maps to
  exactly one lane via the engine's
  :class:`~repro.api.resources.ResourceManager`, so two jobs that could
  touch the same :class:`~repro.smt.interface.SolveSession` always run on
  the same thread while jobs on unrelated codes run concurrently.
  :class:`JobExecutor` is the legacy single-lane dispatcher, equivalent to
  a one-lane sharded executor;
* every observable step is emitted as a typed event
  (:mod:`repro.api.events`): replayable, so a subscriber attached after the
  fact still sees the whole stream, ending in exactly one terminal event;
* :meth:`Job.cancel` and per-job deadlines propagate into the solver hot
  path as a :class:`~repro.smt.solver.SolveControl` — a running solve call
  stops within one budget slice, the session backtracks to level 0 and stays
  reusable, and the engine retires the cancelled task's guarded formula from
  the shared :class:`~repro.api.resources.CodeContext` instead of leaking it.

``Job.result()`` blocks (``Job.events()`` streams); the asyncio façade lives
in :mod:`repro.api.aio`.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import queue
import threading
import time
from enum import Enum
from typing import TYPE_CHECKING, Callable, Iterator

from repro import faults
from repro.api.events import (
    Event,
    JobCancelled,
    JobCompleted,
    JobFailed,
    JobSubmitted,
    SolverStats,
)
from repro.smt.solver import SolveControl, SolverInterrupted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import Engine
    from repro.api.result import Result

__all__ = [
    "Job",
    "JobCancelledError",
    "JobExecutor",
    "JobStatus",
    "ShardedJobExecutor",
]


log = logging.getLogger("repro.jobs")

#: Deterministic precedence for racing cancel reasons: an explicit user
#: cancel outranks a deadline/budget stop, which outranks a drain.  Whatever
#: order a ``DELETE /jobs/<id>`` and a SIGTERM drain reach the same job in,
#: the terminal event carries the same reason.
_REASON_PRECEDENCE = {"shutdown": 1, "deadline": 2, "budget": 2, "cancelled": 3}


class JobStatus(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    CANCELLED = "cancelled"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.SUCCEEDED, JobStatus.CANCELLED, JobStatus.FAILED)


class JobCancelledError(RuntimeError):
    """Raised by :meth:`Job.result` when the job was cancelled.

    ``reason`` mirrors the terminal :class:`~repro.api.events.JobCancelled`
    event: ``"cancelled"`` (explicit), ``"deadline"``, ``"budget"`` or
    ``"shutdown"``.
    """

    def __init__(self, job_id: str, reason: str):
        super().__init__(f"{job_id} cancelled ({reason})")
        self.job_id = job_id
        self.reason = reason


class Job:
    """A handle on one submitted task: await, stream, or cancel it.

    Thread-safe: the executor mutates status and emits events from its
    dispatcher thread while any number of caller threads (or event loops,
    through :mod:`repro.api.aio`) observe.  Event subscribers get the full
    replay first, then live events, and the stream always ends with exactly
    one terminal event.
    """

    def __init__(
        self,
        job_id: str,
        task,
        *,
        priority: int = 0,
        deadline: float | None = None,
        backend=None,
    ):
        self.id = job_id
        self.task = task
        self.priority = priority
        self.deadline = deadline
        self.backend = backend
        #: worker lane the sharded executor routed this job to (None until
        #: submitted, and forever for the legacy single-lane dispatcher).
        self.lane: int | None = None
        self.status = JobStatus.PENDING
        self.submitted_at = time.monotonic()
        self._deadline_at = (
            self.submitted_at + deadline if deadline is not None else None
        )
        self._lock = threading.RLock()
        self._events: list[Event] = []
        self._subscribers: list[Callable[[Event], None]] = []
        self._done_callbacks: list[Callable[["Job"], None]] = []
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._result: "Result | None" = None
        self._error: BaseException | None = None
        self._cancel_reason = "cancelled"
        self._requested_reason = "cancelled"
        self._seq = 0

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> Event:
        """Stamp ``event`` with this job's id and next sequence number,
        record it, and fan it out to subscribers (in subscription order).

        A subscriber that raises is dropped rather than allowed to kill the
        dispatcher thread (e.g. an asyncio bridge whose event loop has
        already closed) — the stream itself, and every other subscriber,
        must survive a broken consumer.
        """
        with self._lock:
            event.job_id = self.id
            event.seq = self._seq
            self._seq += 1
            self._events.append(event)
            for subscriber in list(self._subscribers):
                try:
                    subscriber(event)
                except Exception:
                    log.warning(
                        "dropping broken subscriber on job %s", self.id, exc_info=True
                    )
                    try:
                        self._subscribers.remove(subscriber)
                    except ValueError:
                        pass
        return event

    def subscribe(self, callback: Callable[[Event], None], from_seq: int = 0) -> None:
        """Replay past events into ``callback``, then deliver live ones.

        Callbacks run on the emitting thread (the executor's dispatcher) and
        must be cheap — push to a queue, set a flag.  Subscribing to a
        finished job just replays; nothing is retained.  A callback that
        raises (during replay or live delivery) is dropped — same contract
        as :meth:`emit` — so a broken consumer can never wedge the stream.

        ``from_seq`` skips the replay of events below that sequence number —
        the resumption point for a consumer that already drained a
        :meth:`snapshot` and only needs what was emitted since.
        """
        with self._lock:
            for event in self._events[from_seq:]:
                try:
                    callback(event)
                except Exception:
                    log.warning(
                        "subscriber broke during replay on job %s",
                        self.id,
                        exc_info=True,
                    )
                    return
            if not self.status.terminal:
                self._subscribers.append(callback)

    def snapshot(self) -> tuple[list[Event], bool]:
        """Every event emitted so far plus whether the stream is complete.

        Taken atomically under the job lock: when the flag is True the list
        ends with the terminal event and no further events can follow, so a
        consumer can serve the whole stream from the copy without
        subscribing (the fast path for finished jobs); otherwise resume with
        ``subscribe(..., from_seq=len(events))`` — the replay-from-seq closes
        the gap between the snapshot and the subscription atomically.
        """
        with self._lock:
            return list(self._events), self.status.terminal

    def events(self, timeout: float | None = None) -> Iterator[Event]:
        """Iterate this job's event stream, blocking until the terminal event.

        ``timeout`` bounds the wait for each *next* event (raises
        ``queue.Empty`` on expiry); the default blocks indefinitely, which is
        safe because every job path ends in a terminal event.
        """
        feed: "queue.SimpleQueue[Event]" = queue.SimpleQueue()
        self.subscribe(feed.put)
        while True:
            event = feed.get(timeout=timeout)
            yield event
            if event.TERMINAL:
                return

    def add_done_callback(self, callback: Callable[["Job"], None]) -> None:
        """Run ``callback(job)`` once the job reaches a terminal state (or
        immediately when it already has)."""
        run_now = False
        with self._lock:
            if self.status.terminal:
                run_now = True
            else:
                self._done_callbacks.append(callback)
        if run_now:
            callback(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def cancel(self) -> "Job":
        """Request cancellation; a running solve stops within one control
        slice, a queued job never starts.  Idempotent; no-op once terminal."""
        self.request_cancel()
        return self

    def request_cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation, reporting whether the request was accepted.

        Returns ``True`` when the job was still live (it will end
        ``CANCELLED`` unless it wins the race to its own terminal state) and
        ``False`` when it had already reached a terminal state.  The check
        and the flag are under the job lock, so a ``DELETE`` racing the
        dispatcher's final transition gets a stable yes/no instead of
        surfacing dispatcher internals; repeated calls on a live job keep
        returning ``True`` (idempotent), and calls on a finished one keep
        returning ``False`` — the signal the service maps to 409.

        ``reason`` labels the eventual terminal event (``"cancelled"`` for a
        user cancel, ``"shutdown"`` for a drain); deadline and budget stops
        keep their own reasons.  When several requests race the same job,
        the highest-precedence reason wins (see ``_REASON_PRECEDENCE``)
        regardless of arrival order, so a drain racing a client cancel
        deterministically reports ``"cancelled"``.
        """
        with self._lock:
            if self.status.terminal:
                return False
            if not self._cancel.is_set() or _REASON_PRECEDENCE.get(
                reason, 2
            ) > _REASON_PRECEDENCE.get(self._requested_reason, 2):
                self._requested_reason = reason
            self._cancel.set()
            return True

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    @property
    def cancel_reason(self) -> str:
        """Why the job was cancelled (meaningful once status is CANCELLED)."""
        return self._cancel_reason

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal; returns False when the timeout expires."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> "Result":
        """The job's :class:`~repro.api.result.Result`.

        Blocks until the job finishes; raises :class:`TimeoutError` on
        expiry, :class:`JobCancelledError` for cancelled jobs, and re-raises
        the original exception for failed ones.
        """
        if not self._done.wait(timeout) and not self.status.terminal:
            # The terminal check closes the emit→_done.set() window: a caller
            # who just observed a terminal status (or terminal event) must be
            # able to read the result with timeout=0.
            raise TimeoutError(f"{self.id} still {self.status.value} after {timeout}s")
        if self.status is JobStatus.CANCELLED:
            raise JobCancelledError(self.id, self._cancel_reason)
        if self.status is JobStatus.FAILED:
            raise self._error
        return self._result

    # Executor-facing transitions -------------------------------------
    def _mark_running(self) -> None:
        with self._lock:
            self.status = JobStatus.RUNNING

    def _finish(self, status: JobStatus, terminal_event: Event) -> None:
        with self._lock:
            if self.status.terminal:
                return
            self.status = status
            self.emit(terminal_event)
            self._subscribers.clear()
            callbacks = list(self._done_callbacks)
            self._done_callbacks.clear()
        self._done.set()
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                # A broken consumer must not unwind the dispatcher; the
                # terminal state is already published via _done.
                log.warning("done-callback raised on job %s", self.id, exc_info=True)

    def _finish_completed(self, result: "Result") -> None:
        self._result = result
        details = result.details if isinstance(result.details, dict) else {}
        resumed_from = details.get("resumed_from")
        self._finish(
            JobStatus.SUCCEEDED,
            JobCompleted(
                verified=result.verified,
                elapsed_seconds=result.elapsed_seconds,
                resumed_from=resumed_from if isinstance(resumed_from, dict) else None,
            ),
        )

    def _finish_cancelled(self, reason: str) -> None:
        # A flag-driven stop reports the generic "cancelled"; substitute the
        # reason the cancel requester asked for (e.g. a drain's "shutdown").
        if reason == "cancelled":
            reason = self._requested_reason
        self._cancel_reason = reason
        self._finish(JobStatus.CANCELLED, JobCancelled(reason=reason))

    def _finish_failed(self, error: BaseException, reason: str = "") -> None:
        self._error = error
        self._finish(
            JobStatus.FAILED,
            JobFailed(error=f"{type(error).__name__}: {error}", reason=reason),
        )

    def control(self) -> SolveControl:
        """The solve control carrying this job's deadline and cancel flag."""
        return SolveControl(deadline=self._deadline_at, cancelled=self._cancel.is_set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.id!r}, {self.task!r}, status={self.status.value})"


class JobExecutor:
    """Priority-ordered, single-dispatcher job runner owned by an engine.

    One daemon thread pops the highest-priority job and drives it through
    ``engine._execute`` with the job's :class:`SolveControl` and event
    emitter.  Serial execution is a feature: the engine's shared sessions
    and pools are not thread-safe, and multiplexing happens at the handle
    level (many pending jobs, streamed concurrently) rather than by racing
    solvers.
    """

    def __init__(self, engine: "Engine", autostart: bool = True):
        self.engine = engine
        self.autostart = autostart
        self._heap: list[tuple[int, int, Job]] = []
        self._counter = itertools.count()
        self._condition = threading.Condition()
        self._thread: threading.Thread | None = None
        self._shutdown = False
        self._current: Job | None = None

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        with self._condition:
            # The shutdown check precedes the JobSubmitted emission: a
            # submit that loses the race with shutdown() must raise without
            # having started an event stream that can never reach its
            # terminal event.
            if self._shutdown:
                raise RuntimeError("executor is shut down")
            job.emit(
                JobSubmitted(
                    task_kind=getattr(type(job.task), "kind", type(job.task).__name__),
                    subject=getattr(
                        job.task, "code_name", getattr(job.task, "subject", "")
                    ),
                    priority=job.priority,
                    deadline=job.deadline,
                )
            )
            heapq.heappush(self._heap, (-job.priority, next(self._counter), job))
            self._condition.notify()
        if self.autostart:
            self.start()
        return job

    def start(self) -> None:
        with self._condition:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name="repro-dispatch", daemon=True
                )
                self._thread.start()

    def pending(self) -> int:
        with self._condition:
            return len(self._heap)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._condition:
                while not self._heap and not self._shutdown:
                    self._condition.wait()
                if self._shutdown and not self._heap:
                    return
                _, _, job = heapq.heappop(self._heap)
                self._current = job
            try:
                self._run_job(job)
            # repro: allow[REPRO-EXC] - failure published via JobFailed
            except Exception as error:  # noqa: BLE001 - dispatcher must survive
                # _run_job already maps execution errors to JobFailed; this
                # guards the transition plumbing itself so one broken job
                # can never kill the dispatcher and strand the queue.
                job._finish_failed(error)
            finally:
                self._current = None

    def _run_job(self, job: Job) -> None:
        control = job.control()
        reason = control.interrupted()
        if reason is not None:
            # Cancelled (or expired) while still queued: never run it.
            job._finish_cancelled(reason)
            return
        job._mark_running()
        try:
            result = self.engine._execute(
                job.task,
                self.engine.coerce(job.backend),
                control=control,
                emit=job.emit,
            )
        except SolverInterrupted as interrupt:
            # Release the cancelled task's guarded formula so the shared
            # context does not accumulate clauses for a job that will never
            # be re-selected; the session itself stays live and reusable.
            self.engine.release_task(job.task)
            job._finish_cancelled(interrupt.reason)
        # repro: allow[REPRO-EXC] - failure published via JobFailed
        except Exception as error:  # noqa: BLE001 - job boundary
            job._finish_failed(error)
        else:
            job._finish_completed(result)

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs, cancel everything queued, optionally join.

        The in-flight job (if any) runs to completion — interrupting it is
        the caller's business via :meth:`Job.cancel` before shutting down.
        """
        with self._condition:
            self._shutdown = True
            drained = [job for _, _, job in self._heap]
            self._heap.clear()
            self._condition.notify_all()
        for job in drained:
            job._finish_cancelled("shutdown")
        if wait and self._thread is not None and self._thread.is_alive():
            if threading.current_thread() is not self._thread:
                self._thread.join()


class _Lane:
    """One worker lane: a priority heap, its condition, and its thread."""

    def __init__(self, lane_id: int):
        self.id = lane_id
        self.heap: list[tuple[int, int, Job]] = []
        self.counter = itertools.count()
        self.condition = threading.Condition()
        self.thread: threading.Thread | None = None
        self.current: Job | None = None


class ShardedJobExecutor:
    """Hash-sharded job runner: one dispatcher thread + queue per lane.

    Routing is delegated to the engine's
    :class:`~repro.api.resources.ResourceManager`: the shard key is the
    task's code *family* when it has one (so family members — whose contexts
    absorb each other's learnt clauses — share a thread) and the code itself
    otherwise, with code-less tasks pinned to lane 0.  Lane affinity is the
    whole concurrency story: a ``SolveSession`` is only ever touched from
    the one lane its code maps to (blocking ``Engine.run`` calls serialize
    against that same lane through the engine's per-lane locks), so no
    session, context or family-absorption path needs its own locking.

    Lane threads are named ``repro-lane-<shard>`` and started lazily on the
    first job routed to them; a one-lane executor behaves exactly like the
    legacy serial :class:`JobExecutor`.
    """

    def __init__(self, engine: "Engine", lanes: int = 4, autostart: bool = True):
        self.engine = engine
        self.autostart = autostart
        self.lanes = max(1, int(lanes))
        self._lanes = [_Lane(index) for index in range(self.lanes)]
        # Serializes submit vs shutdown across every lane: a submission that
        # loses the race must raise before emitting JobSubmitted, and one
        # that wins must have its job pushed before the drain sweeps.
        self._lock = threading.Lock()
        self._shutdown = False
        self._fault = faults.hook("lane")
        #: lane threads the supervisor replaced after a crash (stats).
        self.lane_crashes = 0

    # ------------------------------------------------------------------
    def lane_for(self, task) -> int:
        """The lane ``task`` is (or would be) routed to.

        The modulo guards a lane count differing from the resource
        manager's shard count (a standalone executor built with its own
        ``lanes``); affinity is preserved because the mapping stays a pure
        function of the shard."""
        return self.engine.resources.shard_for_task(task) % len(self._lanes)

    def submit(self, job: Job) -> Job:
        with self._lock:
            if self._shutdown:
                raise RuntimeError("executor is shut down")
            job.emit(
                JobSubmitted(
                    task_kind=getattr(type(job.task), "kind", type(job.task).__name__),
                    subject=getattr(
                        job.task, "code_name", getattr(job.task, "subject", "")
                    ),
                    priority=job.priority,
                    deadline=job.deadline,
                )
            )
            lane = self._lanes[self.lane_for(job.task)]
            job.lane = lane.id
            with lane.condition:
                heapq.heappush(lane.heap, (-job.priority, next(lane.counter), job))
                stats = self.engine.resources.lane_stat(lane.id)
                if stats is not None:
                    stats.enqueued += 1
                lane.condition.notify()
        if self.autostart:
            self.start(lane.id)
        return job

    def start(self, lane_id: int | None = None) -> None:
        """Start one lane's thread (or every lane's) if not already running."""
        targets = self._lanes if lane_id is None else [self._lanes[lane_id]]
        for lane in targets:
            with lane.condition:
                if lane.thread is None or not lane.thread.is_alive():
                    lane.thread = threading.Thread(
                        target=self._lane_main,
                        args=(lane,),
                        name=f"repro-lane-{lane.id}",
                        daemon=True,
                    )
                    lane.thread.start()

    def pending(self) -> int:
        total = 0
        for lane in self._lanes:
            with lane.condition:
                total += len(lane.heap)
        return total

    def queue_depths(self) -> list[int]:
        """Per-lane queue depth, indexed by lane id (for /stats snapshots)."""
        depths = []
        for lane in self._lanes:
            with lane.condition:
                depths.append(len(lane.heap))
        return depths

    # ------------------------------------------------------------------
    def _lane_main(self, lane: _Lane) -> None:
        """Lane thread entry point: run the dispatch loop under supervision.

        ``_loop`` only exits via a ``BaseException`` (the per-job
        ``except Exception`` guard already maps ordinary task errors to
        ``JobFailed`` without killing the thread), so anything that reaches
        here is a lane *crash* — an injected ``InjectedLaneCrash``, a broken
        transition, interpreter shutdown — and must not silently strand the
        lane's queue.
        """
        try:
            self._loop(lane)
        # repro: allow[REPRO-EXC] - handed to the supervisor, which logs+counts
        except BaseException as error:  # noqa: BLE001 - supervised crash path
            self._supervise_crash(lane, error)

    def _supervise_crash(self, lane: _Lane, error: BaseException) -> None:
        """Contain a dead lane thread so its shard keeps making progress.

        The in-flight job fails with a typed ``JobFailed(reason="lane_crash")``
        (the task itself may be fine — clients distinguish infrastructure
        death from task errors and may resubmit under a fresh idempotency
        key); everything the dead thread may have poisoned is discarded —
        the job's code context is quarantined rather than saved warm — and a
        fresh thread is started on the untouched pending heap, so queued
        jobs rerun without resubmission.
        """
        job = lane.current
        lane.current = None
        self.lane_crashes += 1
        log.error(
            "lane %d crashed (%s: %s); supervisor restarting it",
            lane.id,
            type(error).__name__,
            error,
        )
        if job is not None:
            if not job.status.terminal:
                job._finish_failed(
                    RuntimeError(
                        f"lane {lane.id} crashed mid-job: "
                        f"{type(error).__name__}: {error}"
                    ),
                    reason="lane_crash",
                )
            try:
                self.engine.resources.quarantine_task(job.task)
            except Exception as discard_error:  # noqa: BLE001 - best effort
                log.warning("context quarantine failed: %s", discard_error)
        if not self._shutdown:
            with lane.condition:
                # This (dying) thread is still alive while the supervisor
                # runs, so start()'s is_alive() check would refuse to replace
                # it; detach it first.
                lane.thread = None
            self.start(lane.id)

    def _loop(self, lane: _Lane) -> None:
        while True:
            with lane.condition:
                while not lane.heap and not self._shutdown:
                    lane.condition.wait()
                if not lane.heap:
                    return
                _, _, job = heapq.heappop(lane.heap)
                lane.current = job
            try:
                self._run_job(job, lane)
            # repro: allow[REPRO-EXC] - failure published via JobFailed
            except Exception as error:  # noqa: BLE001 - lane must survive
                job._finish_failed(error)
            # Deliberately not a finally: on a BaseException (lane crash)
            # ``lane.current`` must stay set so the supervisor can fail the
            # in-flight job; both non-crash paths clear it here.
            lane.current = None

    def _run_job(self, job: Job, lane: _Lane) -> None:
        control = job.control()
        reason = control.interrupted()
        if reason is not None:
            job._finish_cancelled(reason)
            return
        job._mark_running()
        if self._fault is not None and self._fault.fire("crash", job.id) is not None:
            # Before engine._execute, so the dying thread holds no per-lane
            # engine lock (an RLock held by a dead thread never releases).
            raise faults.InjectedLaneCrash(f"injected crash on lane {lane.id}")

        def emit(event):
            # Stamp solver-phase events with the lane that ran them; the
            # engine emits them lane-agnostically.
            if isinstance(event, SolverStats) and event.lane < 0:
                event.lane = lane.id
            return job.emit(event)

        stats = self.engine.resources.lane_stat(lane.id)
        started = time.perf_counter()

        def account() -> None:
            # Settle the lane counters BEFORE the terminal event publishes:
            # a client that just read JobCompleted off the wire must see a
            # /stats lane table that already includes this job.
            if stats is not None:
                stats.busy_seconds += time.perf_counter() - started
                stats.jobs_completed += 1

        try:
            result = self.engine._execute(
                job.task,
                self.engine.coerce(job.backend),
                control=control,
                emit=emit,
            )
        except SolverInterrupted as interrupt:
            self.engine.release_task(job.task)
            account()
            job._finish_cancelled(interrupt.reason)
        # repro: allow[REPRO-EXC] - failure published via JobFailed
        except Exception as error:  # noqa: BLE001 - job boundary
            account()
            job._finish_failed(error)
        else:
            account()
            job._finish_completed(result)

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs, cancel everything queued, optionally join.

        In-flight jobs (one per busy lane) run to completion — interrupting
        them is the caller's business via :meth:`Job.cancel` beforehand.
        """
        with self._lock:
            self._shutdown = True
            drained: list[Job] = []
            for lane in self._lanes:
                with lane.condition:
                    drained.extend(job for _, _, job in lane.heap)
                    lane.heap.clear()
                    lane.condition.notify_all()
        for job in drained:
            job._finish_cancelled("shutdown")
        if wait:
            me = threading.current_thread()
            for lane in self._lanes:
                thread = lane.thread
                if thread is not None and thread.is_alive() and thread is not me:
                    thread.join()
