"""The task-based verification API.

Reify a request as a task, hand it to an :class:`Engine`, get a unified
:class:`Result` back::

    from repro.api import CorrectionTask, Engine

    result = Engine().run(CorrectionTask(code="steane"))
    assert result.verified

Batches run through :meth:`Engine.run_many`, optionally across a process
pool; backends are pluggable (:class:`SerialBackend`, :class:`ParallelBackend`);
``python -m repro`` exposes the same engine on the command line.
"""

from repro.api.backends import Backend, ParallelBackend, SerialBackend, coerce_backend
from repro.api.engine import CompiledTask, Engine, registry_sweep_tasks
from repro.api.resources import (
    CodeContext,
    ContextView,
    PoolManager,
    ResourceManager,
    SessionCache,
)
from repro.api.result import Result
from repro.api.tasks import (
    ConstrainedTask,
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    FixedErrorTask,
    ProgramTask,
    Task,
    resolve_code,
)

__all__ = [
    "Backend",
    "SerialBackend",
    "ParallelBackend",
    "coerce_backend",
    "CompiledTask",
    "Engine",
    "registry_sweep_tasks",
    "CodeContext",
    "ContextView",
    "PoolManager",
    "ResourceManager",
    "SessionCache",
    "Result",
    "Task",
    "CorrectionTask",
    "DetectionTask",
    "DistanceTask",
    "ConstrainedTask",
    "FixedErrorTask",
    "ProgramTask",
    "resolve_code",
]
