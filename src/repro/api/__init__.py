"""The task-based verification API.

Reify a request as a task, hand it to an :class:`Engine`, get a unified
:class:`Result` back::

    from repro.api import CorrectionTask, Engine

    result = Engine().run(CorrectionTask(code="steane"))
    assert result.verified

Batches run through :meth:`Engine.run_many`, optionally across a process
pool; backends are pluggable (:class:`SerialBackend`, :class:`ParallelBackend`);
``python -m repro`` exposes the same engine on the command line.

The job-oriented surface layers on top: :meth:`Engine.submit` returns a
:class:`Job` handle (stream typed events, await the result, cancel, bound by
a deadline), :class:`AsyncEngine` mirrors it for asyncio, and
:mod:`repro.api.events` defines the versioned event schema the streams
speak::

    job = Engine().submit(DistanceTask(code="surface-5"), deadline=30.0)
    for event in job.events():
        ...
    result = job.result()
"""

from repro.api.aio import AsyncEngine, AsyncJob
from repro.api.backends import Backend, ParallelBackend, SerialBackend, coerce_backend
from repro.api.engine import CompiledTask, Engine, registry_sweep_tasks
from repro.api.events import (
    SCHEMA_VERSION,
    DistanceProbe,
    Event,
    JobCancelled,
    JobCompleted,
    JobFailed,
    JobSubmitted,
    SolverStats,
    SubtaskStarted,
    TaskCompiled,
)
from repro.api.jobs import Job, JobCancelledError, JobExecutor, JobStatus
from repro.api.resources import (
    CodeContext,
    ContextView,
    PoolManager,
    ResourceManager,
    SessionCache,
)
from repro.api.result import Result
from repro.api.tasks import (
    ConstrainedTask,
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    FixedErrorTask,
    ProgramTask,
    Task,
    TASK_KINDS,
    resolve_code,
    task_from_dict,
)

__all__ = [
    "Backend",
    "SerialBackend",
    "ParallelBackend",
    "coerce_backend",
    "CompiledTask",
    "Engine",
    "registry_sweep_tasks",
    "AsyncEngine",
    "AsyncJob",
    "Job",
    "JobCancelledError",
    "JobExecutor",
    "JobStatus",
    "SCHEMA_VERSION",
    "Event",
    "JobSubmitted",
    "TaskCompiled",
    "SubtaskStarted",
    "DistanceProbe",
    "SolverStats",
    "JobCompleted",
    "JobCancelled",
    "JobFailed",
    "CodeContext",
    "ContextView",
    "PoolManager",
    "ResourceManager",
    "SessionCache",
    "Result",
    "Task",
    "CorrectionTask",
    "DetectionTask",
    "DistanceTask",
    "ConstrainedTask",
    "FixedErrorTask",
    "ProgramTask",
    "TASK_KINDS",
    "resolve_code",
    "task_from_dict",
]
