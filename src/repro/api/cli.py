"""``python -m repro`` — the command-line front end of the verification engine.

Subcommands:

* ``list-codes`` — the registered benchmark codes (Table 3 rows);
* ``verify``     — one correction/detection task on one code;
* ``distance``   — discover a code's distance via repeated detection;
* ``sweep``      — batch-verify many registry codes through ``Engine.run_many``;
* ``validate-events`` — schema-check an NDJSON event stream;
* ``analyze``    — the project's static analyzer (:mod:`repro.analysis`);
* ``serve``      — the HTTP verification service (:mod:`repro.service`).

Every subcommand takes ``--json`` for machine-readable output; the verifying
subcommands additionally take ``--stream`` (NDJSON job events on stdout, one
:mod:`repro.api.events` object per line — pipe through
``python -m repro.api.events`` to schema-validate) and ``--deadline SECONDS``
(a per-job wall-clock bound enforced inside the solver).  Exit status: 0 when
everything verified, 1 when a counterexample was found, 2 on usage errors
(argparse's convention), 3 when a job was cancelled by its deadline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro.api.backends import ParallelBackend, SerialBackend
from repro.api.engine import Engine, registry_sweep_tasks
from repro.api.jobs import Job, JobCancelledError, JobStatus
from repro.api.result import Result
from repro.api.tasks import ConstrainedTask, CorrectionTask, DetectionTask, DistanceTask
from repro.codes.registry import CODE_REGISTRY, build_code

__all__ = ["main", "build_parser"]

EXIT_CANCELLED = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Veri-QEC reproduction: formal verification of QEC programs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    codes = sub.add_parser("list-codes", help="list the registered benchmark codes")
    codes.add_argument("--json", action="store_true", help="emit JSON")
    codes.set_defaults(func=_cmd_list_codes)

    verify = sub.add_parser("verify", help="verify one property of one code")
    verify.add_argument("--code", required=True, help="registry key (see list-codes)")
    verify.add_argument(
        "--task",
        choices=["correction", "detection"],
        default=None,
        help="property to verify (default: the code's registry target)",
    )
    verify.add_argument("--max-errors", type=int, default=None, help="correctable weight bound")
    verify.add_argument("--trial-distance", type=int, default=None, help="detection trial distance")
    verify.add_argument(
        "--error-model", choices=["any", "X", "Y", "Z"], default="any", help="per-qubit error model"
    )
    verify.add_argument("--locality", action="store_true", help="restrict errors to a qubit subset")
    verify.add_argument(
        "--discreteness", action="store_true", help="at most one error per qubit segment"
    )
    verify.add_argument("--seed", type=int, default=None, help="seed for the locality subset")
    verify.add_argument(
        "--workers", type=int, default=1, help="worker count (>1 selects the parallel backend)"
    )
    _add_store_arguments(verify)
    _add_job_arguments(verify)
    verify.add_argument("--json", action="store_true", help="emit the result as JSON")
    verify.set_defaults(func=_cmd_verify)

    distance = sub.add_parser("distance", help="discover a code's distance")
    distance.add_argument("--code", required=True, help="registry key (see list-codes)")
    distance.add_argument("--max-trial", type=int, default=None, help="largest trial distance")
    distance.add_argument(
        "--workers", type=int, default=1, help="worker count (>1 selects the parallel backend)"
    )
    _add_store_arguments(distance)
    distance.add_argument(
        "--strategy",
        choices=["auto", "binary", "galloping"],
        default="auto",
        help="probe schedule (default: per-code probe-cost heuristic)",
    )
    _add_job_arguments(distance)
    distance.add_argument("--json", action="store_true", help="emit the result as JSON")
    distance.set_defaults(func=_cmd_distance)

    sweep = sub.add_parser("sweep", help="batch-verify registry codes against their targets")
    sweep.add_argument(
        "--codes",
        default=None,
        help="comma-separated registry keys (default: the whole registry)",
    )
    sweep.add_argument(
        "--backend", choices=["serial", "parallel"], default="serial", help="solver backend"
    )
    sweep.add_argument(
        "--workers", type=int, default=2, help="split workers for the parallel backend"
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, help="process pool size across tasks (run_many)"
    )
    _add_store_arguments(sweep)
    _add_job_arguments(sweep)
    sweep.add_argument("--json", action="store_true", help="emit results as JSON")
    sweep.set_defaults(func=_cmd_sweep)

    validate = sub.add_parser(
        "validate-events",
        help="schema-validate an NDJSON event stream (stdin, or files)",
    )
    validate.add_argument("files", nargs="*", help="NDJSON files (default: stdin)")
    validate.set_defaults(func=_cmd_validate_events)

    analyze = sub.add_parser(
        "analyze",
        help="project static analysis (lock/affinity/async/stats contracts)",
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    analyze.add_argument("--json", action="store_true", help="emit findings as JSON")
    analyze.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    analyze.set_defaults(func=_cmd_analyze)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP verification service (see repro.service)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="server-wide cap on non-terminal jobs (backpressure, 429 past it)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=16,
        help="per-API-key cap on live jobs",
    )
    serve.add_argument(
        "--rate", type=float, default=50.0,
        help="per-API-key submissions per second (token-bucket refill)",
    )
    serve.add_argument(
        "--burst", type=float, default=25.0,
        help="per-API-key burst allowance (token-bucket capacity)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=10.0,
        help="seconds to read one request before answering 408",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds for in-flight jobs to finish on SIGTERM before cancellation",
    )
    serve.add_argument(
        "--access-log", action="store_true",
        help="emit structured JSON access logs on stderr",
    )
    serve.add_argument(
        "--lanes", type=int, default=4,
        help="dispatcher worker lanes; each code (or code family) is pinned "
        "to one lane, so jobs on different codes solve concurrently "
        "(1 = the serial dispatcher)",
    )
    serve.add_argument(
        "--clause-store",
        metavar="DIR",
        default=None,
        help="durable clause-store directory shared across restarts (and "
        "replicas); enables warm-started sessions and resumable distance walks",
    )
    serve.add_argument(
        "--fault-plan",
        metavar="SPEC",
        default=None,
        help="arm deterministic fault injection: inline JSON or a path to a "
        "plan file (see repro.faults; REPRO_FAULT_PLAN works too)",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from repro.service import AdmissionController, VerificationService

    if args.access_log:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        access = logging.getLogger("repro.service.access")
        access.addHandler(handler)
        access.setLevel(logging.INFO)

    async def run() -> int:
        service = VerificationService(
            host=args.host,
            port=args.port,
            admission=AdmissionController(
                max_pending=args.max_pending,
                max_inflight_per_key=args.max_inflight,
                rate=args.rate,
                burst=args.burst,
            ),
            request_timeout=args.request_timeout,
            drain_grace=args.drain_grace,
            lanes=args.lanes,
            clause_store=args.clause_store,
            fault_plan=args.fault_plan,
        )
        await service.start()
        # The "listening" line is the readiness protocol: supervisors (and
        # the CI smoke job) parse it to learn the bound port.
        print(
            json.dumps(
                {"event": "listening", "host": service.host, "port": service.port}
            ),
            flush=True,
        )
        summary = await service.serve_forever()
        print(json.dumps({"event": "drained", **summary}), flush=True)
        return 0 if not summary.get("orphaned") else 1

    return asyncio.run(run())


def _cmd_validate_events(args: argparse.Namespace) -> int:
    from repro.api.events import main as validate_main

    return validate_main(args.files)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import main as analyze_main

    argv = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.list_rules:
        argv.append("--list-rules")
    return analyze_main(argv)


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--clause-store",
        metavar="DIR",
        default=None,
        help="durable clause-store directory; repeated invocations (and "
        "sibling codes) warm-start, distance walks resume after a kill",
    )
    parser.add_argument(
        "--warm-cache",
        metavar="DIR",
        default=None,
        help="deprecated alias for --clause-store",
    )


def _store_directory(args: argparse.Namespace, warn: bool = False) -> str | None:
    """The clause-store directory from ``--clause-store`` or its legacy alias."""
    directory = getattr(args, "clause_store", None)
    legacy = getattr(args, "warm_cache", None)
    if directory:
        return directory
    if legacy:
        if warn:
            print(
                "warning: --warm-cache is deprecated; use --clause-store",
                file=sys.stderr,
            )
        return legacy
    return None


def _add_job_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stream",
        action="store_true",
        help="run through the job API and emit NDJSON events on stdout",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-job wall-clock bound; an expired job exits with status 3",
    )


def _stream_job(job: Job) -> None:
    """Print the job's full event stream as NDJSON, one event per line."""
    for event in job.events():
        print(event.to_json(), flush=True)


def _run_as_job(engine: Engine, task, args: argparse.Namespace, print_result) -> int:
    """The shared ``--stream``/``--deadline`` lifecycle of one CLI task.

    Submit, stream or wait, flush the warm cache, then map the terminal
    state: cancelled → stderr notice (non-stream) + exit 3; failed →
    re-raise (``main`` renders ValueError/KeyError as exit 2); succeeded →
    ``print_result(result)`` unless streaming, exit by verdict.
    """
    job = engine.submit(task, deadline=args.deadline)
    if args.stream:
        _stream_job(job)
    else:
        job.wait()
    _finish_engine(engine, args)
    if job.status is JobStatus.CANCELLED:
        if not args.stream:
            print(f"cancelled: {job.id} ({job.cancel_reason})", file=sys.stderr)
        return EXIT_CANCELLED
    result = job.result(timeout=0)  # re-raises a failed job's exception
    if not args.stream:
        print_result(result)
    return 0 if result.verified else 1


def _make_engine(backend, args: argparse.Namespace) -> Engine:
    engine = Engine(backend=backend)
    directory = _store_directory(args, warn=True)
    if directory:
        engine.resources.enable_clause_store(directory)
    return engine


def _finish_engine(engine: Engine, args: argparse.Namespace) -> None:
    if _store_directory(args):
        engine.resources.save_warm()


# ----------------------------------------------------------------------
def _cmd_list_codes(args: argparse.Namespace) -> int:
    rows = []
    for key in sorted(CODE_REGISTRY):
        entry = CODE_REGISTRY[key]
        code = build_code(key)
        n, k, d = code.parameters
        rows.append(
            {
                "key": key,
                "parameters": [n, k, d],
                "target": entry.target,
                "paper_name": entry.paper_name,
                "note": entry.note,
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    for row in rows:
        n, k, d = row["parameters"]
        d_text = "?" if d is None else d
        note = f"  ({row['note']})" if row["note"] else ""
        print(f"{row['key']:16s} [[{n},{k},{d_text}]]  {row['target']:10s} {row['paper_name']}{note}")
    return 0


def _require_code(key: str) -> None:
    if key not in CODE_REGISTRY:
        raise SystemExit(f"error: unknown code {key!r}; try `python -m repro list-codes`")


def _cmd_verify(args: argparse.Namespace) -> int:
    _require_code(args.code)
    task_name = args.task or CODE_REGISTRY[args.code].target
    if task_name == "detection":
        for flag, given in (
            ("--locality", args.locality),
            ("--discreteness", args.discreteness),
            ("--max-errors", args.max_errors is not None),
            ("--seed", args.seed is not None),
        ):
            if given:
                raise SystemExit(f"error: {flag} does not apply to a detection task")
        task = DetectionTask(
            code=args.code, trial_distance=args.trial_distance, error_model=args.error_model
        )
    elif args.trial_distance is not None:
        raise SystemExit("error: --trial-distance only applies to a detection task")
    elif args.locality or args.discreteness:
        task = ConstrainedTask(
            code=args.code,
            locality=args.locality,
            discreteness=args.discreteness,
            max_errors=args.max_errors,
            error_model=args.error_model,
            seed=args.seed,
        )
    else:
        task = CorrectionTask(
            code=args.code, max_errors=args.max_errors, error_model=args.error_model
        )
    backend = ParallelBackend(num_workers=args.workers) if args.workers > 1 else SerialBackend()
    engine = _make_engine(backend, args)
    if args.stream or args.deadline is not None:
        return _run_as_job(engine, task, args, lambda result: _emit(result, args.json))
    result = engine.run(task)
    _finish_engine(engine, args)
    return _emit(result, args.json)


def _cmd_distance(args: argparse.Namespace) -> int:
    _require_code(args.code)
    backend = ParallelBackend(num_workers=args.workers) if args.workers > 1 else SerialBackend()
    engine = _make_engine(backend, args)
    strategy = None if args.strategy == "auto" else args.strategy
    task = DistanceTask(code=args.code, max_trial=args.max_trial, strategy=strategy)
    if args.stream or args.deadline is not None:
        return _run_as_job(
            engine, task, args, lambda result: _print_distance(result, args.json)
        )
    result = engine.run(task)
    _finish_engine(engine, args)
    _print_distance(result, args.json)
    return 0


def _print_distance(result: Result, as_json: bool) -> None:
    if as_json:
        print(result.to_json(indent=2))
    else:
        print(f"{result.subject}: distance {result.details['distance']} "
              f"({len(result.details['trials'])} probes, "
              f"{result.details.get('strategy', 'binary-search')}, "
              f"{result.elapsed_seconds:.3f}s, "
              f"{result.conflicts} conflicts, {result.decisions} decisions, "
              f"{result.propagations} propagations, backend={result.backend})")


def _cmd_sweep(args: argparse.Namespace) -> int:
    keys = None
    if args.codes is not None:
        keys = [key.strip() for key in args.codes.split(",") if key.strip()]
        if not keys:
            raise SystemExit("error: --codes given but no code keys parsed")
        for key in keys:
            _require_code(key)
    tasks = registry_sweep_tasks(keys)
    backend = (
        ParallelBackend(num_workers=args.workers) if args.backend == "parallel" else SerialBackend()
    )
    engine = _make_engine(backend, args)
    if args.stream or args.deadline is not None:
        return _sweep_jobs(engine, tasks, args)
    start = time.perf_counter()
    results = engine.run_many(tasks, processes=args.jobs)
    total = time.perf_counter() - start
    _finish_engine(engine, args)
    stats = engine.resources.stats()
    if args.json:
        payload = {
            "backend": backend.name,
            "jobs": args.jobs,
            "total_seconds": total,
            "num_tasks": len(results),
            "num_verified": sum(result.verified for result in results),
            "resources": stats,
            "results": [result.to_dict() for result in results],
        }
        print(json.dumps(payload, indent=2, default=str))
    else:
        for result in results:
            print(result.summary())
        verified = sum(result.verified for result in results)
        print(f"sweep: {verified}/{len(results)} verified in {total:.3f}s "
              f"(backend={backend.name}, jobs={args.jobs})")
        print(_resource_table(stats))
    return 0 if all(result.verified for result in results) else 1


def _sweep_jobs(engine: Engine, tasks, args: argparse.Namespace) -> int:
    """The job-API sweep: one job per task, streamed/awaited in order.

    ``--jobs`` (the run_many process pool) does not apply here — jobs
    serialize on the engine's dispatcher, which is what lets them share the
    per-code sessions and persistent pools.  A job's deadline clock starts
    at submission, so each task is submitted only after the previous one
    finished: ``--deadline`` bounds each job's own runtime, not its place
    in the queue.
    """
    total = 0
    cancelled = 0
    unverified = 0
    for task in tasks:
        job = engine.submit(task, deadline=args.deadline)
        total += 1
        if args.stream:
            _stream_job(job)
        else:
            job.wait()
        if job.status is JobStatus.CANCELLED:
            cancelled += 1
            if not args.stream:
                print(f"cancelled: {job.id} ({job.cancel_reason})", file=sys.stderr)
            continue
        try:
            result = job.result(timeout=0)
        except JobCancelledError:  # pragma: no cover - raced above
            cancelled += 1
            continue
        if not result.verified:
            unverified += 1
        if not args.stream:
            print(result.summary())
    _finish_engine(engine, args)
    if not args.stream:
        done = total - cancelled
        print(f"sweep: {done - unverified}/{total} verified, "
              f"{cancelled} cancelled (job API, deadline={args.deadline})")
    if cancelled:
        return EXIT_CANCELLED
    return 1 if unverified else 0


def _resource_table(stats: dict) -> str:
    """Summary table of the engine's solver-resource counters."""
    lines = ["resource      count   detail"]
    lines.append(f"{'contexts':12s} {stats.get('contexts', 0):6d}   "
                 f"hits {stats.get('context_hits', 0)}, misses {stats.get('context_misses', 0)}")
    lines.append(f"{'pools':12s} {stats.get('pools', 0):6d}   "
                 f"hits {stats.get('pool_hits', 0)}, misses {stats.get('pool_misses', 0)}")
    lines.append(f"{'learnt':12s} {stats.get('learnt_kept', 0):6d}   "
                 f"kept {stats.get('learnt_kept', 0)}, deleted {stats.get('learnt_deleted', 0)}")
    if "warm_hits" in stats:
        lines.append(f"{'warm-cache':12s} {stats.get('warm_absorbed', 0):6d}   "
                     f"hits {stats.get('warm_hits', 0)}, misses {stats.get('warm_misses', 0)}")
    if "store" in stats:
        store = stats["store"]
        lines.append(f"{'store':12s} {store.get('stored', 0):6d}   "
                     f"hits {store.get('hits', 0)}, misses {store.get('misses', 0)}, "
                     f"absorbed {stats.get('store_absorbed', 0)}, "
                     f"evicted {store.get('evictions', 0)}")
    return "\n".join(lines)


def _emit(result: Result, as_json: bool) -> int:
    if as_json:
        print(result.to_json(indent=2))
    else:
        print(result.summary())
        if not result.verified:
            print(f"  counterexample qubits: {result.counterexample_qubits()}")
    return 0 if result.verified else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
