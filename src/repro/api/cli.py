"""``python -m repro`` — the command-line front end of the verification engine.

Subcommands:

* ``list-codes`` — the registered benchmark codes (Table 3 rows);
* ``verify``     — one correction/detection task on one code;
* ``distance``   — discover a code's distance via repeated detection;
* ``sweep``      — batch-verify many registry codes through ``Engine.run_many``.

Every subcommand takes ``--json`` for machine-readable output.  Exit status:
0 when everything verified, 1 when a counterexample was found, 2 on usage
errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro.codes.registry import CODE_REGISTRY, build_code
from repro.api.backends import ParallelBackend, SerialBackend
from repro.api.engine import Engine, registry_sweep_tasks
from repro.api.result import Result
from repro.api.tasks import ConstrainedTask, CorrectionTask, DetectionTask, DistanceTask

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Veri-QEC reproduction: formal verification of QEC programs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    codes = sub.add_parser("list-codes", help="list the registered benchmark codes")
    codes.add_argument("--json", action="store_true", help="emit JSON")
    codes.set_defaults(func=_cmd_list_codes)

    verify = sub.add_parser("verify", help="verify one property of one code")
    verify.add_argument("--code", required=True, help="registry key (see list-codes)")
    verify.add_argument(
        "--task",
        choices=["correction", "detection"],
        default=None,
        help="property to verify (default: the code's registry target)",
    )
    verify.add_argument("--max-errors", type=int, default=None, help="correctable weight bound")
    verify.add_argument("--trial-distance", type=int, default=None, help="detection trial distance")
    verify.add_argument(
        "--error-model", choices=["any", "X", "Y", "Z"], default="any", help="per-qubit error model"
    )
    verify.add_argument("--locality", action="store_true", help="restrict errors to a qubit subset")
    verify.add_argument(
        "--discreteness", action="store_true", help="at most one error per qubit segment"
    )
    verify.add_argument("--seed", type=int, default=None, help="seed for the locality subset")
    verify.add_argument(
        "--workers", type=int, default=1, help="worker count (>1 selects the parallel backend)"
    )
    verify.add_argument(
        "--warm-cache",
        metavar="DIR",
        default=None,
        help="cache dir for learnt-clause state; repeated invocations warm-start",
    )
    verify.add_argument("--json", action="store_true", help="emit the result as JSON")
    verify.set_defaults(func=_cmd_verify)

    distance = sub.add_parser("distance", help="discover a code's distance")
    distance.add_argument("--code", required=True, help="registry key (see list-codes)")
    distance.add_argument("--max-trial", type=int, default=None, help="largest trial distance")
    distance.add_argument(
        "--workers", type=int, default=1, help="worker count (>1 selects the parallel backend)"
    )
    distance.add_argument(
        "--warm-cache",
        metavar="DIR",
        default=None,
        help="cache dir for learnt-clause state; repeated invocations warm-start",
    )
    distance.add_argument("--json", action="store_true", help="emit the result as JSON")
    distance.set_defaults(func=_cmd_distance)

    sweep = sub.add_parser("sweep", help="batch-verify registry codes against their targets")
    sweep.add_argument(
        "--codes",
        default=None,
        help="comma-separated registry keys (default: the whole registry)",
    )
    sweep.add_argument(
        "--backend", choices=["serial", "parallel"], default="serial", help="solver backend"
    )
    sweep.add_argument(
        "--workers", type=int, default=2, help="split workers for the parallel backend"
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, help="process pool size across tasks (run_many)"
    )
    sweep.add_argument(
        "--warm-cache",
        metavar="DIR",
        default=None,
        help="cache dir for learnt-clause state; repeated invocations warm-start",
    )
    sweep.add_argument("--json", action="store_true", help="emit results as JSON")
    sweep.set_defaults(func=_cmd_sweep)

    return parser


def _make_engine(backend, args: argparse.Namespace) -> Engine:
    engine = Engine(backend=backend)
    if getattr(args, "warm_cache", None):
        engine.resources.enable_warm_cache(args.warm_cache)
    return engine


def _finish_engine(engine: Engine, args: argparse.Namespace) -> None:
    if getattr(args, "warm_cache", None):
        engine.resources.save_warm()


# ----------------------------------------------------------------------
def _cmd_list_codes(args: argparse.Namespace) -> int:
    rows = []
    for key in sorted(CODE_REGISTRY):
        entry = CODE_REGISTRY[key]
        code = build_code(key)
        n, k, d = code.parameters
        rows.append(
            {
                "key": key,
                "parameters": [n, k, d],
                "target": entry.target,
                "paper_name": entry.paper_name,
                "note": entry.note,
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    for row in rows:
        n, k, d = row["parameters"]
        d_text = "?" if d is None else d
        note = f"  ({row['note']})" if row["note"] else ""
        print(f"{row['key']:16s} [[{n},{k},{d_text}]]  {row['target']:10s} {row['paper_name']}{note}")
    return 0


def _require_code(key: str) -> None:
    if key not in CODE_REGISTRY:
        raise SystemExit(f"error: unknown code {key!r}; try `python -m repro list-codes`")


def _cmd_verify(args: argparse.Namespace) -> int:
    _require_code(args.code)
    task_name = args.task or CODE_REGISTRY[args.code].target
    if task_name == "detection":
        for flag, given in (
            ("--locality", args.locality),
            ("--discreteness", args.discreteness),
            ("--max-errors", args.max_errors is not None),
            ("--seed", args.seed is not None),
        ):
            if given:
                raise SystemExit(f"error: {flag} does not apply to a detection task")
        task = DetectionTask(
            code=args.code, trial_distance=args.trial_distance, error_model=args.error_model
        )
    elif args.trial_distance is not None:
        raise SystemExit("error: --trial-distance only applies to a detection task")
    elif args.locality or args.discreteness:
        task = ConstrainedTask(
            code=args.code,
            locality=args.locality,
            discreteness=args.discreteness,
            max_errors=args.max_errors,
            error_model=args.error_model,
            seed=args.seed,
        )
    else:
        task = CorrectionTask(
            code=args.code, max_errors=args.max_errors, error_model=args.error_model
        )
    backend = ParallelBackend(num_workers=args.workers) if args.workers > 1 else SerialBackend()
    engine = _make_engine(backend, args)
    result = engine.run(task)
    _finish_engine(engine, args)
    return _emit(result, args.json)


def _cmd_distance(args: argparse.Namespace) -> int:
    _require_code(args.code)
    backend = ParallelBackend(num_workers=args.workers) if args.workers > 1 else SerialBackend()
    engine = _make_engine(backend, args)
    result = engine.run(DistanceTask(code=args.code, max_trial=args.max_trial))
    _finish_engine(engine, args)
    if args.json:
        print(result.to_json(indent=2))
    else:
        print(f"{result.subject}: distance {result.details['distance']} "
              f"({len(result.details['trials'])} probes, binary search, "
              f"{result.elapsed_seconds:.3f}s, "
              f"{result.conflicts} conflicts, {result.decisions} decisions, "
              f"{result.propagations} propagations, backend={result.backend})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    keys = None
    if args.codes is not None:
        keys = [key.strip() for key in args.codes.split(",") if key.strip()]
        if not keys:
            raise SystemExit("error: --codes given but no code keys parsed")
        for key in keys:
            _require_code(key)
    tasks = registry_sweep_tasks(keys)
    backend = (
        ParallelBackend(num_workers=args.workers) if args.backend == "parallel" else SerialBackend()
    )
    engine = _make_engine(backend, args)
    start = time.perf_counter()
    results = engine.run_many(tasks, processes=args.jobs)
    total = time.perf_counter() - start
    _finish_engine(engine, args)
    stats = engine.resources.stats()
    if args.json:
        payload = {
            "backend": backend.name,
            "jobs": args.jobs,
            "total_seconds": total,
            "num_tasks": len(results),
            "num_verified": sum(result.verified for result in results),
            "resources": stats,
            "results": [result.to_dict() for result in results],
        }
        print(json.dumps(payload, indent=2, default=str))
    else:
        for result in results:
            print(result.summary())
        verified = sum(result.verified for result in results)
        print(f"sweep: {verified}/{len(results)} verified in {total:.3f}s "
              f"(backend={backend.name}, jobs={args.jobs})")
        print(_resource_table(stats))
    return 0 if all(result.verified for result in results) else 1


def _resource_table(stats: dict) -> str:
    """Summary table of the engine's solver-resource counters."""
    lines = ["resource      count   detail"]
    lines.append(f"{'contexts':12s} {stats.get('contexts', 0):6d}   "
                 f"hits {stats.get('context_hits', 0)}, misses {stats.get('context_misses', 0)}")
    lines.append(f"{'pools':12s} {stats.get('pools', 0):6d}   "
                 f"hits {stats.get('pool_hits', 0)}, misses {stats.get('pool_misses', 0)}")
    lines.append(f"{'learnt':12s} {stats.get('learnt_kept', 0):6d}   "
                 f"kept {stats.get('learnt_kept', 0)}, deleted {stats.get('learnt_deleted', 0)}")
    if "warm_hits" in stats:
        lines.append(f"{'warm-cache':12s} {stats.get('warm_absorbed', 0):6d}   "
                     f"hits {stats.get('warm_hits', 0)}, misses {stats.get('warm_misses', 0)}")
    return "\n".join(lines)


def _emit(result: Result, as_json: bool) -> int:
    if as_json:
        print(result.to_json(indent=2))
    else:
        print(result.summary())
        if not result.verified:
            print(f"  counterexample qubits: {result.counterexample_qubits()}")
    return 0 if result.verified else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
