"""Engine-owned solver resources: shared per-code sessions, persistent pools.

Before this layer existed, session ownership was scattered: each task kind
built its own solver, the parallel backend spun up (and tore down) a worker
pool per task, and the engine's session cache was keyed per-task, so
correction and detection on the same code re-learnt everything from scratch.
This module centralizes those resources *per code*:

* :class:`CodeContext` — ONE live :class:`~repro.smt.interface.SolveSession`
  per code.  Every task's refutation formula is asserted under a
  task-selector guard literal, so correction, detection, constrained and
  distance queries all solve against one clause database and share learnt
  clauses across task kinds.  The shared error/syndrome sub-encoding is
  emitted once: the encoder's expression cache maps the identical error
  variables, syndrome parities and weight counters of later task formulas
  onto the literals the first task allocated.
* :class:`ContextView` — a task's window onto its context: ``check`` solves
  the shared session under the task's selector, which is the session surface
  the backends already expect.
* :class:`PoolManager` — persistent worker pools keyed by base formula, kept
  alive across ``Engine.run`` / ``run_many`` calls (registry sweeps stop
  paying pool startup and re-encoding per task) and torn down when the
  owning engine is garbage-collected, on eviction, or at interpreter exit.
* :class:`SessionCache` — serialize/restore a session's learnt clauses to a
  cache directory (the CLI's ``--warm-cache``), keyed by a fingerprint of
  the exact CNF so stale state can never be absorbed.
* :class:`ResourceManager` — the engine-facing facade tying the above
  together, with hit/miss counters surfaced in ``Result.session_stats()``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import weakref
import zlib
from collections import OrderedDict

from repro import sanitize
from repro.classical.expr import free_variables
from repro.codes.registry import family_of, family_siblings
from repro.smt.interface import SMTCheck, SolveSession
from repro.smt.parallel import IncrementalSplitSession
from repro.smt.solver import SolveControl, SolverInterrupted
from repro.store import ClauseStore

__all__ = [
    "CodeContext",
    "ContextView",
    "LaneStats",
    "PoolManager",
    "ResourceManager",
    "SessionCache",
]


class ContextView:
    """One task's session-shaped window onto a shared :class:`CodeContext`.

    The view carries the task's selector literals; ``check`` merges them into
    every solve, so backends built against the plain
    :class:`~repro.smt.interface.SolveSession` surface (``check``,
    ``add_guard``, ``add_weight_guard``, ``stats``) drive the shared session
    without knowing it is shared.  Extracted models are restricted to the
    task formula's own variables: the shared session also names the
    variables of every *other* guarded task formula, which are unconstrained
    during this task's check and must not leak into its counterexamples.
    """

    def __init__(
        self,
        context: "CodeContext",
        selectors: tuple[str, ...],
        variables: frozenset[str] | None = None,
    ):
        self.context = context
        self.selectors = tuple(selectors)
        self.variables = variables

    def check(
        self,
        assumptions: dict[str, bool] | None = None,
        select: tuple[str, ...] | list[str] = (),
        control=None,
    ) -> SMTCheck:
        self.context.maybe_warm_load()
        check = self.context.session.check(
            assumptions, select=self.selectors + tuple(select), control=control
        )
        if check.model is not None and self.variables is not None:
            check.model = {
                name: value for name, value in check.model.items()
                if name in self.variables
            }
        return check

    # Guard forwarding keeps the view usable wherever a SolveSession is
    # expected (e.g. the sequential path of IncrementalSplitSession).
    def add_guard(self, name: str, formula) -> str:
        return self.context.session.add_guard(name, formula)

    def add_weight_guard(self, name: str, weight, bound: int) -> str:
        return self.context.session.add_weight_guard(name, weight, bound)

    def add_weight_lower_guard(self, name: str, weight, bound: int) -> str:
        return self.context.session.add_weight_lower_guard(name, weight, bound)

    def stats(self) -> dict:
        return self.context.session.stats()


class CodeContext:
    """Shared solver resources for one code: one session, many task guards.

    Task formulas are asserted exactly once each, guarded by a fresh selector
    keyed on the task value; re-running a task re-selects its guard on the
    live solver (a context *hit*), and different task kinds on the same code
    share every learnt clause the session has accumulated.
    """

    def __init__(
        self,
        key,
        warm_cache: "SessionCache | None" = None,
        max_task_guards: int = 64,
    ):
        self.key = key
        # Armed only under REPRO_SANITIZE: CodeContext entry points are
        # lane-affine exactly like the session they drive.
        self._entry_guard = sanitize.new_entry_guard(f"CodeContext({key!r})")
        self.session = SolveSession()
        self.warm_cache = warm_cache
        self.max_task_guards = max_task_guards
        self.hits = 0
        self.misses = 0
        self.retired = 0
        self._guard_counter = 0
        self._task_guards: OrderedDict[object, tuple[str, frozenset[str]]] = OrderedDict()
        self._detection_bases: dict[str, tuple[object, str, frozenset[str]]] = {}
        self._weight_guards: set[str] = set()
        self._warm_attempted = False
        self._warm_fingerprint: str | None = None
        self._warm_vars = 0
        self.warm_absorbed = 0
        self.warm_hits = 0
        self.warm_misses = 0
        # Family warm-start bookkeeping: how many sibling learnt clauses
        # were already examined per (sibling key, shared-subformula
        # fingerprint), which candidate clauses were already absorbed, and
        # the cumulative absorbed/probed counters for stats.
        self._sibling_marks: dict[tuple, int] = {}
        self._absorbed_keys: set[tuple] = set()
        self.family_absorbed = 0
        self.family_probes = 0
        # Clause-store transfer bookkeeping: candidates already probed (in
        # either direction — absorbed or refuted — so repeated jobs on the
        # same context never re-pay failed probes) plus cumulative counters.
        self._store_probed: set[tuple] = set()
        self.store_absorbed = 0
        self.store_probes = 0

    # ------------------------------------------------------------------
    @sanitize.entry_guarded
    def task_view(self, task, formula) -> ContextView:
        """The guarded view for ``task``, asserting ``formula`` on first use."""
        entry = self._task_guards.get(task)
        if entry is None:
            self.misses += 1
            # A monotonic counter, not len(): retired guards free their slot
            # in the dict but their selector names must never be reused (a
            # retired selector is root-false forever).
            guard = f"task:{self._guard_counter}"
            self._guard_counter += 1
            self.session.add_guard(guard, formula)
            entry = (guard, free_variables(formula))
            self._task_guards[task] = entry
            while len(self._task_guards) > self.max_task_guards:
                _, (stale_guard, _) = self._task_guards.popitem(last=False)
                self.session.retire_guard(stale_guard)
                self.retired += 1
        else:
            self.hits += 1
            self._task_guards.move_to_end(task)
        guard, variables = entry
        return ContextView(self, (guard,), variables=variables)

    @sanitize.entry_guarded
    def retire_task(self, task) -> bool:
        """Release ``task``'s guarded formula from the shared session.

        Called for cancelled (and LRU-evicted) tasks: the task's selector is
        negated at the root and the solver erases the now-satisfied clauses,
        so a long-lived context does not accumulate the encodings of tasks
        that will never be re-selected.  Re-running the task later simply
        re-asserts its formula under a fresh selector (a context miss).
        Returns whether the task actually held a guard.
        """
        entry = self._task_guards.pop(task, None)
        if entry is None:
            return False
        guard, _ = entry
        self.session.retire_guard(guard)
        self.retired += 1
        return True

    @sanitize.entry_guarded
    def detection_base(self, model_kind: str, factory) -> tuple[object, str, frozenset[str]]:
        """The guarded trial-independent detection base for ``model_kind``.

        ``factory`` builds ``(base_formula, weight_expr)``; it runs once per
        context and error model, which is the "encode the base once" property
        the distance walk (and any DetectionTask sharing the context) relies
        on.  Returns ``(weight_expr, base_selector, base_variables)`` —
        witnesses extracted during a walk must be restricted to
        ``base_variables`` for the same reason :class:`ContextView` filters
        its models.
        """
        entry = self._detection_bases.get(model_kind)
        if entry is None:
            self.misses += 1
            base, weight = factory()
            guard = f"detection-base:{model_kind}"
            self.session.add_guard(guard, base)
            entry = (weight, guard, free_variables(base))
            self._detection_bases[model_kind] = entry
        else:
            self.hits += 1
        return entry

    def weight_upper_guard(self, model_kind: str, weight, bound: int) -> str:
        """Memoised selector for ``weight <= bound`` (shared unary counter)."""
        name = f"w:{model_kind}:le:{bound}"
        if name not in self._weight_guards:
            self.session.add_weight_guard(name, weight, bound)
            self._weight_guards.add(name)
        return name

    def weight_lower_guard(self, model_kind: str, weight, bound: int) -> str:
        """Memoised selector for ``weight >= bound``."""
        name = f"w:{model_kind}:ge:{bound}"
        if name not in self._weight_guards:
            self.session.add_weight_lower_guard(name, weight, bound)
            self._weight_guards.add(name)
        return name

    # ------------------------------------------------------------------
    # Family warm start: absorb a smaller sibling's learnt clauses.
    @sanitize.entry_guarded
    def absorb_from_sibling(
        self,
        sibling: "CodeContext",
        selectors: tuple[str, ...],
        max_probes: int = 24,
        conflict_budget: int = 200,
    ) -> int:
        """Warm-start this context from a smaller same-family sibling.

        The sibling's learnt clauses are *candidates*, not facts: its CNF is
        a different formula, so nothing it learnt transfers by fingerprint.
        Instead each clause is projected onto the variable names the two
        encodings share (auxiliary/Tseitin literals are dropped, which may
        strengthen the clause — harmless, because nothing below relies on
        the projection being implied by anything), then *re-proved on this
        context*: a conflict-budgeted ``check`` under ``selectors`` with the
        projected clause negated as assumptions.  Only a candidate the
        target session itself refutes — i.e. proves entailed under the
        active selectors — is attached, via
        :meth:`~repro.smt.interface.SolveSession.absorb_learnt`, widened
        with the selectors' negations so it is vacuous whenever the guards
        are inactive.  Soundness therefore never depends on the projection
        quality or on the sibling at all; the sibling only proposes.

        Probes are memoised by ``(sibling key, shared-subformula
        fingerprint)`` high-water marks, so repeated calls only examine
        clauses the sibling learnt since last time.  Callers must ensure
        the sibling is not solving concurrently — the sharded dispatcher
        guarantees that by construction, since family members share a lane.
        Returns the number of clauses absorbed.
        """
        if not selectors or sibling.session._solver is None:
            return 0
        my_names = self.session.encoder.named_literals()
        sibling_names = sibling.session.encoder.named_literals()
        shared = sorted(set(my_names) & set(sibling_names))
        if not shared:
            return 0
        shared_fingerprint = hashlib.sha256("\n".join(shared).encode()).hexdigest()
        mark_key = (sibling.key, shared_fingerprint)
        learnt = sibling.session.learnt_clauses()
        start = self._sibling_marks.get(mark_key, 0)
        self._sibling_marks[mark_key] = len(learnt)
        if start >= len(learnt):
            return 0
        shared_set = set(shared)
        reverse = {var: name for name, var in sibling_names.items()}
        guard_key = tuple(selectors)
        candidates: list[list[tuple[str, bool]]] = []
        seen: set[frozenset] = set()
        for clause in learnt[start:]:
            projected = []
            for literal in clause:
                name = reverse.get(abs(literal))
                if name is None or name not in shared_set:
                    continue
                projected.append((name, literal > 0))
            # Tiny projections (short, high-reuse consequences) are the ones
            # worth a probe; long ones rarely pass and cost more to attach.
            if not 2 <= len(projected) <= 6:
                continue
            key = frozenset(projected)
            if key in seen or (key, guard_key) in self._absorbed_keys:
                continue
            seen.add(key)
            candidates.append(projected)
        absorbed, probed = self._absorb_candidates(
            candidates, selectors, max_probes, conflict_budget
        )
        self.family_probes += probed
        self.family_absorbed += absorbed
        return absorbed

    def _absorb_candidates(
        self,
        candidates: list[list[tuple[str, bool]]],
        selectors: tuple[str, ...],
        max_probes: int,
        conflict_budget: int,
    ) -> tuple[int, int]:
        """Entailment-probe projected candidates and attach the proven ones.

        The shared verification core of both transfer paths (live sibling
        contexts and the persistent clause store): each candidate clause is
        re-proved by a conflict-budgeted check with its negation assumed
        under ``selectors``, and only refuted (entailed) candidates are
        absorbed, widened with the selector negations.  Returns
        ``(absorbed, probed)``.
        """
        guard_key = tuple(selectors)
        absorbed = 0
        probed = 0
        encoder = self.session.encoder
        for projected in candidates[:max_probes]:
            probed += 1
            assumptions = {name: not positive for name, positive in projected}
            control = SolveControl(
                conflict_budget=conflict_budget, check_interval=32
            )
            try:
                check = self.session.check(
                    assumptions, select=selectors, control=control
                )
            except SolverInterrupted:
                continue  # not cheaply entailed; skip, stay sound
            if not check.is_unsat:
                continue
            literals = [
                encoder.variable(name) if positive else -encoder.variable(name)
                for name, positive in projected
            ]
            literals.extend(-encoder.selector(selector) for selector in selectors)
            absorbed += self.session.absorb_learnt([literals])
            self._absorbed_keys.add((frozenset(projected), guard_key))
        return absorbed, probed

    @sanitize.entry_guarded
    def absorb_from_store(
        self,
        selectors: tuple[str, ...],
        max_probes: int = 24,
        conflict_budget: int = 200,
    ) -> int:
        """Warm-start this context from the clause store's family index.

        Candidates are named-literal projections recorded by *sibling
        fingerprints* (other codes of the same family, possibly from other
        processes or past runs).  They go through exactly the same
        entailment re-proof as live-sibling candidates — a stale, foreign or
        corrupted store entry can cost probe budget, never soundness.
        Returns the number of clauses absorbed.
        """
        cache = self.warm_cache
        if cache is None or not selectors:
            return 0
        family_lookup = getattr(cache, "family_candidates", None)
        if family_lookup is None:
            return 0
        family = family_of(self.key) if isinstance(self.key, str) else None
        if not family:
            return 0
        # Snapshot the fingerprint first so our own persisted entries are
        # excluded from the candidate set (they come back via the exact path).
        self.maybe_warm_load()
        if self.warm_hits:
            # The exact-fingerprint entry already restored this context's
            # own learnt state; sibling candidates could only re-prove
            # weaker versions of it.  Probing them would spend conflict
            # budget for nothing on every warm start.
            return 0
        my_names = set(self.session.encoder.named_literals())
        guard_key = tuple(selectors)
        candidates: list[list[tuple[str, bool]]] = []
        for pairs in family_lookup(family, exclude_fingerprint=self._warm_fingerprint or ""):
            projected = [(name, positive) for name, positive in pairs if name in my_names]
            if not 2 <= len(projected) <= 6:
                continue
            key = (frozenset(projected), guard_key)
            if key in self._store_probed or key in self._absorbed_keys:
                continue
            self._store_probed.add(key)
            candidates.append(projected)
            if len(candidates) >= max_probes:
                break
        absorbed, probed = self._absorb_candidates(
            candidates, selectors, max_probes, conflict_budget
        )
        self.store_probes += probed
        self.store_absorbed += absorbed
        return absorbed

    # ------------------------------------------------------------------
    # Warm cache: learnt clauses round-trip through the cache directory,
    # keyed on the CNF fingerprint at the moment of the first check (the
    # point identical CLI invocations reach with an identical encoding).
    @sanitize.entry_guarded
    def maybe_warm_load(self) -> None:
        if self.warm_cache is None or self._warm_attempted:
            return
        self._warm_attempted = True
        self._warm_fingerprint = self.session.fingerprint()
        self._warm_vars = self.session.encoder.cnf.num_vars
        learnt = self.warm_cache.load(self._warm_fingerprint)
        if learnt:
            self.warm_hits += 1
            self.warm_absorbed = self.session.absorb_learnt(learnt)
        else:
            self.warm_misses += 1

    @sanitize.entry_guarded
    def save_warm(self) -> None:
        if self.warm_cache is None or not self._warm_attempted:
            return
        store_meta = getattr(self.warm_cache, "store_meta", None)
        if store_meta is None:
            self.warm_cache.store(
                self._warm_fingerprint, self.session.learnt_clauses(max_var=self._warm_vars)
            )
            return
        # Clause store: persist LBDs for eviction ranking, and record the
        # named-literal projections of every learnt clause under the code's
        # family so sibling fingerprints can pick them up as candidates.
        meta = self.session.learnt_clauses_meta(max_var=self._warm_vars)
        family = family_of(self.key) if isinstance(self.key, str) else None
        named: list[tuple[tuple[tuple[str, bool], ...], int]] = []
        if family:
            reverse = {
                var: name
                for name, var in self.session.encoder.named_literals().items()
            }
            seen: set[frozenset] = set()
            for clause, lbd in self.session.learnt_clauses_meta():
                projected = []
                for literal in clause:
                    name = reverse.get(abs(literal))
                    if name is None:
                        continue
                    projected.append((name, literal > 0))
                # Same window as the sibling path: short projections are the
                # reusable ones, and consumers re-prove them anyway.
                if not 2 <= len(projected) <= 6:
                    continue
                key = frozenset(projected)
                if key in seen:
                    continue
                seen.add(key)
                named.append((tuple(projected), lbd))
        store_meta(self._warm_fingerprint, meta, family=family or "", named=named)


class SessionCache:
    """On-disk learnt-clause cache (the CLI's ``--warm-cache`` directory).

    Entries are JSON files named by the CNF fingerprint they belong to; a
    lookup with a different fingerprint simply misses, so absorbing stale or
    foreign state is impossible by construction.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0
        os.makedirs(directory, exist_ok=True)

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.json")

    def load(self, fingerprint: str) -> list[list[int]] | None:
        try:
            with open(self._path(fingerprint), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        learnt = payload.get("learnt")
        if payload.get("fingerprint") != fingerprint or not isinstance(learnt, list):
            self.misses += 1
            return None
        self.hits += 1
        return [[int(lit) for lit in clause] for clause in learnt]

    def store(self, fingerprint: str, learnt: list[list[int]]) -> None:
        payload = {"fingerprint": fingerprint, "learnt": learnt}
        path = self._path(fingerprint)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _close_split_sessions(sessions: "OrderedDict") -> None:
    for session in list(sessions.values()):
        try:
            session.close()
        except Exception:  # repro: allow[REPRO-EXC] - finalizer teardown
            pass
    sessions.clear()


class PoolManager:
    """Persistent :class:`IncrementalSplitSession` pools keyed by base formula.

    A split session (and therefore its worker pool, each worker holding a
    live solver for the base encoding) survives across ``Engine.run`` calls:
    re-running a task with the same formula and split configuration is a pool
    *hit* that skips pool startup and per-worker re-encoding entirely.  The
    manager is LRU-bounded (evicted sessions are closed), closes everything
    when the owning engine is garbage-collected (``weakref.finalize``), and
    the pools themselves are additionally registered for atexit termination
    by :mod:`repro.smt.parallel` — so a KeyboardInterrupt mid-check cannot
    leak semaphores or worker processes.
    """

    def __init__(self, max_pools: int = 4, warm_cache: "SessionCache | None" = None):
        self.max_pools = max_pools
        self.warm_cache = warm_cache
        self.hits = 0
        self.misses = 0
        self._sessions: OrderedDict[tuple, IncrementalSplitSession] = OrderedDict()
        self._lock = threading.RLock()
        # Sessions currently driving a walk on some lane: never evict these
        # (closing a pool under a live walk would strand its workers).
        self._busy: dict[int, int] = {}
        # The finalizer must not reference self (that would keep the manager
        # alive forever); closing over the sessions dict alone is enough.
        self._finalizer = weakref.finalize(self, _close_split_sessions, self._sessions)

    def split_session(
        self,
        formula,
        split_variables: tuple[str, ...] = (),
        heuristic_weight: int = 2,
        threshold: int | None = None,
        num_workers: int = 2,
        max_subtasks: int = 1024,
    ) -> IncrementalSplitSession:
        key = (formula, tuple(split_variables), heuristic_weight, threshold,
               num_workers, max_subtasks)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self.hits += 1
                self._sessions.move_to_end(key)
                return session
            self.misses += 1
        session = IncrementalSplitSession(
            formula,
            split_variables=list(split_variables),
            heuristic_weight=heuristic_weight,
            threshold=threshold,
            num_workers=num_workers,
            max_subtasks=max_subtasks,
            warm_dir=self.warm_cache.directory if self.warm_cache is not None else None,
        )
        evicted_sessions: list[IncrementalSplitSession] = []
        with self._lock:
            self._sessions[key] = session
            spare = [
                k for k in self._sessions
                if id(self._sessions[k]) not in self._busy
            ]
            while len(self._sessions) > self.max_pools and spare:
                stale = spare.pop(0)
                evicted_sessions.append(self._sessions.pop(stale))
        for evicted in evicted_sessions:
            evicted.save_warm()
            evicted.close()
        return session

    def mark_busy(self, session: IncrementalSplitSession) -> None:
        """Pin ``session`` against eviction while a walk drives it."""
        with self._lock:
            self._busy[id(session)] = self._busy.get(id(session), 0) + 1

    def mark_idle(self, session: IncrementalSplitSession) -> None:
        with self._lock:
            left = self._busy.get(id(session), 0) - 1
            if left > 0:
                self._busy[id(session)] = left
            else:
                self._busy.pop(id(session), None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def warm_absorbed(self) -> int:
        return sum(session.warm_absorbed for session in self._sessions.values())

    def save_warm(self) -> int:
        """Serialize every live split session's learnt clauses; returns count."""
        return sum(session.save_warm() for session in self._sessions.values())

    def close_all(self) -> None:
        _close_split_sessions(self._sessions)


class LaneStats:
    """Counters for one dispatcher lane (mutated by the sharded executor
    and the family-absorption path; read by ``ResourceManager.stats``)."""

    __slots__ = ("lane", "enqueued", "jobs_completed", "busy_seconds",
                 "absorbed_clauses")

    def __init__(self, lane: int):
        self.lane = lane
        self.enqueued = 0
        self.jobs_completed = 0
        self.busy_seconds = 0.0
        self.absorbed_clauses = 0


class ResourceManager:
    """The engine's solver-resource facade: contexts, pools, warm cache.

    With the sharded dispatcher the manager is also the *routing authority*:
    :meth:`shard_for_task` maps every task to the one worker lane allowed to
    touch its code's session.  The shard key is the code's registry *family*
    when it has one (family members must share a lane so cross-code clause
    absorption is single-threaded by construction) and the code itself
    otherwise; assignment is sticky — a key, once mapped, keeps its lane for
    the manager's lifetime — with crc32 hashing onto free lanes and
    least-recently-used lane reuse once every lane carries keys.

    The internal lock only guards the manager's own dict bookkeeping
    (context/session registries, shard assignments).  Sessions themselves
    are deliberately unlocked: lane affinity guarantees each one is only
    ever driven from its lane's thread (blocking ``Engine.run`` calls
    serialize against that lane through the engine's per-lane locks).
    """

    def __init__(
        self,
        max_contexts: int = 32,
        max_pools: int = 4,
        family_warm_start: bool = True,
    ):
        self.max_contexts = max_contexts
        #: master switch for cross-code clause absorption; off reproduces the
        #: pre-family behaviour exactly (the benchmark's serial baseline).
        self.family_warm_start = family_warm_start
        self.pools = PoolManager(max_pools=max_pools)
        self.warm_cache: SessionCache | None = None
        self._contexts: OrderedDict[object, CodeContext] = OrderedDict()
        # Deterministic tasks WITHOUT a code to key a context on (the
        # program-logic route) still get a persistent per-task session, so
        # repeated runs reuse learnt clauses as they did before the
        # per-code contexts existed.
        self._task_sessions: OrderedDict[object, SolveSession] = OrderedDict()
        self._lock = threading.RLock()
        self._executor = None
        #: contexts discarded unsaved after a lane crash (see
        #: :meth:`quarantine_task`); surfaced in stats when nonzero.
        self.quarantined = 0
        self.num_shards = 1
        self.configure_shards(1)

    # ------------------------------------------------------------------
    # Sharding: code/family → lane
    # ------------------------------------------------------------------
    def configure_shards(self, num_shards: int) -> None:
        """(Re)size the lane table; called by the engine before any job runs."""
        with self._lock:
            self.num_shards = max(1, int(num_shards))
            self._shard_assignments: dict[str, int] = {}
            self._keys_per_lane = [0] * self.num_shards
            # Least-recently-assigned first; reused when every lane is taken.
            self._lane_lru = list(range(self.num_shards))
            self._lane_stats = [LaneStats(index) for index in range(self.num_shards)]
            self._retired: list[list[CodeContext]] = [
                [] for _ in range(self.num_shards)
            ]

    def attach_executor(self, executor) -> None:
        """Register the sharded executor so stats can report queue depths."""
        self._executor = executor

    def lane_stat(self, lane: int) -> LaneStats | None:
        if 0 <= lane < len(self._lane_stats):
            return self._lane_stats[lane]
        return None

    def shard_key(self, code) -> str:
        """The affinity key for a code: its registry family, else itself."""
        if isinstance(code, str):
            return family_of(code) or code
        name = getattr(code, "name", "")
        return name if name else type(code).__name__

    def shard_for(self, key: str | None) -> int:
        """The lane for a shard key (sticky; hash-then-LRU on collision)."""
        if key is None or self.num_shards <= 1:
            return 0
        with self._lock:
            lane = self._shard_assignments.get(key)
            if lane is None:
                preferred = zlib.crc32(str(key).encode()) % self.num_shards
                if self._keys_per_lane[preferred] == 0:
                    lane = preferred
                else:
                    # Hash collision: reuse the emptiest lane, breaking ties
                    # toward the least recently assigned one.
                    lane = min(
                        self._lane_lru, key=lambda lane: self._keys_per_lane[lane]
                    )
                self._shard_assignments[key] = lane
                self._keys_per_lane[lane] += 1
            self._lane_lru.remove(lane)
            self._lane_lru.append(lane)
            return lane

    def shard_for_task(self, task) -> int:
        """The lane ``task`` must run on (code-less tasks pin to lane 0)."""
        code = getattr(task, "code", None)
        if code is None:
            return 0
        return self.shard_for(self.shard_key(code))

    # ------------------------------------------------------------------
    def context_for(self, key) -> CodeContext | None:
        """The live context for a code key (LRU, created on first use)."""
        with self._lock:
            try:
                context = self._contexts.get(key)
            except TypeError:  # unhashable key
                return None
            if context is None:
                context = CodeContext(key, warm_cache=self.warm_cache)
                self._contexts[key] = context
                while len(self._contexts) > self.max_contexts:
                    evicted_key, evicted = self._contexts.popitem(last=False)
                    if evicted.warm_cache is not None:
                        # save_warm touches the evicted session, which only
                        # its own lane may do: park it on that lane's retire
                        # list, flushed at the lane's next job boundary.
                        shard = self.shard_for(self.shard_key(evicted_key))
                        self._retired[shard].append(evicted)
            else:
                self._contexts.move_to_end(key)
            return context

    def flush_retired(self, shard: int) -> None:
        """Persist evicted contexts parked on ``shard``'s retire list.

        Called from the shard's own lane (with the engine's lane lock held),
        which makes the ``save_warm`` session access single-threaded."""
        with self._lock:
            if not 0 <= shard < len(self._retired) or not self._retired[shard]:
                return
            retired, self._retired[shard] = self._retired[shard], []
        for context in retired:
            context.save_warm()

    # ------------------------------------------------------------------
    # Family warm start
    # ------------------------------------------------------------------
    def absorb_from_family(self, code_key, context: CodeContext, selectors) -> int:
        """Offer ``context`` the learnt clauses of its smaller family
        siblings (those with live contexts), under the task's selectors.

        Safe to call only from the code's own lane: family members share a
        shard by construction, so no sibling session is solving concurrently.
        Returns the number of clauses absorbed (0 for non-family codes).
        """
        if not self.family_warm_start:
            return 0
        if not isinstance(code_key, str) or not selectors:
            return 0
        if self.warm_cache is not None:
            # With a cache attached, try the exact-fingerprint entry first:
            # a hit restores this context's own learnt state, which strictly
            # dominates anything a sibling could offer — re-proving sibling
            # candidates on top would spend probe budget for nothing.
            context.maybe_warm_load()
            if context.warm_hits:
                return 0
        total = 0
        for sibling_key in family_siblings(code_key):
            with self._lock:
                sibling = self._contexts.get(sibling_key)
            if sibling is None or sibling is context:
                continue
            total += context.absorb_from_sibling(sibling, tuple(selectors))
        if total:
            stats = self.lane_stat(self.shard_for(self.shard_key(code_key)))
            if stats is not None:
                stats.absorbed_clauses += total
        return total

    def session_for(self, task, compiled) -> ContextView | SolveSession | None:
        """A persistent session for ``task``: a guarded shared-context view
        for code tasks, a dedicated per-task session for code-less tasks
        (the program-logic route), or None when the task cannot safely share
        (nondeterministic compile, unhashable payload)."""
        if not getattr(task, "deterministic", False):
            return None
        code_key = getattr(task, "code", None)
        if code_key is None:
            return self._task_session_for(task, compiled)
        context = self.context_for(code_key)
        if context is None:
            return None
        try:
            return context.task_view(task, compiled.formula)
        except TypeError:  # unhashable task payload
            return None

    def _task_session_for(self, task, compiled) -> SolveSession | None:
        with self._lock:
            try:
                session = self._task_sessions.get(task)
            except TypeError:  # unhashable payload
                return None
            if session is None:
                session = SolveSession(compiled.formula)
                self._task_sessions[task] = session
                while len(self._task_sessions) > self.max_contexts:
                    self._task_sessions.popitem(last=False)
            else:
                self._task_sessions.move_to_end(task)
            return session

    def retire_task(self, task) -> bool:
        """Release a (cancelled) task's solver state without touching the
        shared infrastructure other tasks rely on.

        Code tasks drop their guarded formula from the per-code context
        (root-negated selector + clause erasure); code-less tasks drop their
        dedicated session.  Detection bases and weight guards are left in
        place — they are complete, sound, and exactly what makes the next
        run on the same context cheap.
        """
        code_key = getattr(task, "code", None)
        with self._lock:
            if code_key is None:
                try:
                    return self._task_sessions.pop(task, None) is not None
                except TypeError:
                    return False
            try:
                context = self._contexts.get(code_key)
            except TypeError:
                return False
        if context is None:
            return False
        return context.retire_task(task)

    def quarantine_task(self, task) -> bool:
        """Discard a (possibly poisoned) task's solver state *unsaved*.

        The lane supervisor calls this after a lane thread died mid-job: the
        context's session may hold a half-applied transaction, so unlike LRU
        eviction it is dropped without ``save_warm`` — persisting it could
        poison the warm store too.  A fresh context is rebuilt lazily on the
        shard's next job for the same code.  Returns whether anything was
        dropped.
        """
        code_key = getattr(task, "code", None)
        with self._lock:
            if code_key is None:
                try:
                    dropped = self._task_sessions.pop(task, None) is not None
                except TypeError:
                    return False
            else:
                try:
                    dropped = self._contexts.pop(code_key, None) is not None
                except TypeError:
                    return False
            if dropped:
                self.quarantined += 1
            return dropped

    # ------------------------------------------------------------------
    def enable_warm_cache(self, directory: str) -> SessionCache:
        with self._lock:
            self.warm_cache = SessionCache(directory)
            self.pools.warm_cache = self.warm_cache
            for context in self._contexts.values():
                if context.warm_cache is None:
                    context.warm_cache = self.warm_cache
            return self.warm_cache

    def enable_clause_store(self, directory: "str | ClauseStore") -> ClauseStore:
        """Attach the persistent sqlite clause store (supersedes the JSON
        warm cache: same ``load``/``store`` plumbing, plus LBD-ranked
        eviction, the family candidate index and distance checkpoints)."""
        store = directory if isinstance(directory, ClauseStore) else ClauseStore(str(directory))
        with self._lock:
            self.warm_cache = store
            self.pools.warm_cache = store
            for context in self._contexts.values():
                if context.warm_cache is None:
                    context.warm_cache = store
            return store

    @property
    def clause_store(self) -> ClauseStore | None:
        cache = self.warm_cache
        return cache if isinstance(cache, ClauseStore) else None

    def absorb_from_store(self, code_key, context: CodeContext | None, selectors) -> int:
        """Offer ``context`` the store's family candidates (sibling
        fingerprints from any process, past or present), entailment-proved
        before attachment.  Gated on the same ``family_warm_start`` switch
        as live-sibling absorption; returns the number absorbed."""
        if not self.family_warm_start or self.clause_store is None:
            return 0
        if context is None or not selectors:
            return 0
        absorbed = context.absorb_from_store(tuple(selectors))
        if absorbed:
            stats = self.lane_stat(self.shard_for(self.shard_key(code_key)))
            if stats is not None:
                stats.absorbed_clauses += absorbed
        return absorbed

    def save_warm(self) -> None:
        with self._lock:
            contexts = list(self._contexts.values())
        for context in contexts:
            context.save_warm()
        if self.warm_cache is not None:
            self.pools.save_warm()

    # ------------------------------------------------------------------
    def num_contexts(self) -> int:
        with self._lock:
            return len(self._contexts) + len(self._task_sessions)

    def clear_contexts(self) -> None:
        with self._lock:
            self._contexts.clear()
            self._task_sessions.clear()

    def close(self) -> None:
        self.save_warm()
        with self._lock:
            self._contexts.clear()
            self._task_sessions.clear()
        self.pools.close_all()

    def stats(self) -> dict:
        """Resource counters surfaced through ``Result.session_stats()``."""
        learnt_kept = 0
        learnt_deleted = 0
        context_hits = 0
        context_misses = 0
        warm_absorbed = 0
        retired_guards = 0
        erased_clauses = 0
        blocker_hits = 0
        heap_discards = 0
        binary_subsumed = 0
        family_absorbed = 0
        family_probes = 0
        store_absorbed = 0
        store_probes = 0
        store = self.clause_store
        # Per-lane warm hit/miss/absorption attribution: each context maps to
        # exactly one lane (its shard key's sticky assignment).
        lane_store: dict[int, list[int]] = {}
        with self._lock:
            contexts = list(self._contexts.values())
            num_contexts = len(self._contexts)
            assignments = dict(self._shard_assignments)
        for context in contexts:
            session_stats = context.session.stats()
            learnt_kept += session_stats.get("learnt_kept", 0)
            learnt_deleted += session_stats.get("learnt_deleted", 0)
            erased_clauses += session_stats.get("erased_clauses", 0)
            blocker_hits += session_stats.get("blocker_hits", 0)
            heap_discards += session_stats.get("heap_discards", 0)
            binary_subsumed += session_stats.get("binary_subsumed", 0)
            context_hits += context.hits
            context_misses += context.misses
            warm_absorbed += context.warm_absorbed
            retired_guards += context.retired
            family_absorbed += context.family_absorbed
            family_probes += context.family_probes
            store_absorbed += context.store_absorbed
            store_probes += context.store_probes
            if store is not None:
                lane = assignments.get(self.shard_key(context.key))
                if lane is not None:
                    row = lane_store.setdefault(lane, [0, 0, 0])
                    row[0] += context.warm_hits
                    row[1] += context.warm_misses
                    row[2] += context.warm_absorbed + context.store_absorbed
        stats = {
            "contexts": num_contexts,
            "context_hits": context_hits,
            "context_misses": context_misses,
            "pools": len(self.pools),
            "pool_hits": self.pools.hits,
            "pool_misses": self.pools.misses,
            "learnt_kept": learnt_kept,
            "learnt_deleted": learnt_deleted,
        }
        # Guard-GC counters appear only once retirement has happened, so the
        # result schema of guard-free runs (e.g. a plain registry sweep) is
        # unchanged from earlier releases.  The hot-path counters follow the
        # same only-when-nonzero rule.
        if retired_guards:
            stats["retired_guards"] = retired_guards
            stats["erased_clauses"] = erased_clauses
        if blocker_hits:
            stats["blocker_hits"] = blocker_hits
        if heap_discards:
            stats["heap_discards"] = heap_discards
        if binary_subsumed:
            stats["binary_subsumed"] = binary_subsumed
        if family_probes:
            stats["family_absorbed"] = family_absorbed
            stats["family_probes"] = family_probes
        if self.quarantined:
            stats["quarantined_contexts"] = self.quarantined
        if self.warm_cache is not None:
            stats["warm_hits"] = self.warm_cache.hits
            stats["warm_misses"] = self.warm_cache.misses
            stats["warm_absorbed"] = warm_absorbed + self.pools.warm_absorbed()
        if store is not None:
            if store_probes:
                stats["store_absorbed"] = store_absorbed
                stats["store_probes"] = store_probes
            if store.evictions:
                stats["store_evictions"] = store.evictions
            stats["store"] = store.stats()
        # The lane table appears once jobs have been dispatched through the
        # sharded executor (same only-when-active rule as the counters
        # above), so blocking-only runs keep their historical schema.
        if self._executor is not None:
            depths = self._executor.queue_depths()
            rows = []
            for lane in self._lane_stats:
                row = {
                    "lane": lane.lane,
                    "queue_depth": depths[lane.lane] if lane.lane < len(depths) else 0,
                    "enqueued": lane.enqueued,
                    "jobs_completed": lane.jobs_completed,
                    "busy_seconds": round(lane.busy_seconds, 6),
                    "absorbed_clauses": lane.absorbed_clauses,
                    "shard_keys": sorted(
                        key for key, assigned in assignments.items()
                        if assigned == lane.lane
                    ),
                }
                if store is not None:
                    # Store hit-rate per lane validates the dispatcher's
                    # family routing against actual reuse.
                    hits, misses, absorbed = lane_store.get(lane.lane, (0, 0, 0))
                    looked_up = hits + misses
                    row["store_hits"] = hits
                    row["store_misses"] = misses
                    row["store_absorbed"] = absorbed
                    row["store_hit_rate"] = (
                        round(hits / looked_up, 4) if looked_up else 0.0
                    )
                rows.append(row)
            stats["lanes"] = rows
        return stats
