"""Pluggable solver backends for the verification engine.

A backend decides one compiled task (a refutation formula): ``unsat`` means
the property is verified.  Two implementations ship with the engine:

* :class:`SerialBackend`   — one SAT query on a :class:`~repro.smt.interface.SolveSession`;
* :class:`ParallelBackend` — enumeration-based task splitting across a worker
  pool through :class:`repro.smt.parallel.ParallelChecker` (Appendix D.4),
  each worker holding a persistent incremental session.

Both accept an optional ``session`` — a live :class:`SolveSession` that
already holds the compiled formula — so the engine can reuse one solver (and
its learnt clauses) across repeated runs of the same task; see
:meth:`repro.api.engine.Engine.run`.  Backends are plain frozen dataclasses
so they can be pickled into the batch executor's worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Protocol, runtime_checkable

from repro.smt.interface import SMTCheck, SolveSession
from repro.smt.parallel import ParallelChecker
from repro.smt.solver import SolveControl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.engine import CompiledTask

__all__ = ["Backend", "SerialBackend", "ParallelBackend", "coerce_backend", "make_session"]


def make_session(compiled: "CompiledTask") -> SolveSession:
    """A fresh incremental session holding ``compiled``'s formula."""
    return SolveSession(compiled.formula)


@runtime_checkable
class Backend(Protocol):
    """Anything that can decide a compiled verification task.

    Backends may additionally expose a ``wants_session`` attribute/property;
    when truthy the engine builds a persistent session view for the task
    (shared per code through the engine's resource layer) and passes it to
    :meth:`check`.  A ``wants_resources`` attribute/property additionally
    opts the backend into the engine's
    :class:`~repro.api.resources.ResourceManager` (passed as a ``resources``
    keyword), which is how the parallel backend obtains persistent worker
    pools.  The engine treats missing attributes as ``False``, so custom
    backends that ignore sessions and resources need not declare them.
    """

    name: str

    def check(self, compiled: "CompiledTask", session: SolveSession | None = None) -> SMTCheck:
        """Decide satisfiability of ``compiled.formula`` (unsat = verified).

        ``session``, when given, is a live session already holding the
        compiled formula (possibly guarded behind a task selector); the
        backend should solve on it so learnt clauses carry over to the next
        run of the same task — and, when the session is a shared per-code
        view, to every other task kind on the same code.
        """
        ...


@dataclass(frozen=True)
class SerialBackend:
    """Single-query backend over the in-tree incremental CDCL solver."""

    name: ClassVar[str] = "serial"
    # The engine only forwards a job's SolveControl (deadline / cancellation)
    # to backends that declare they honor it; third-party backends without
    # the attribute fall back to engine-level between-probe checks.
    supports_control: ClassVar[bool] = True

    @property
    def wants_session(self) -> bool:
        """Whether :meth:`check` will solve on a provided persistent session
        (the engine only builds/caches sessions for backends that will)."""
        return True

    def check(
        self,
        compiled: "CompiledTask",
        session: SolveSession | None = None,
        control: SolveControl | None = None,
    ) -> SMTCheck:
        live = session if session is not None else make_session(compiled)
        return live.check(control=control)


@dataclass(frozen=True)
class ParallelBackend:
    """Task-splitting backend (the paper's parallel strategy).

    ``heuristic_weight`` and ``threshold`` override the per-task hints the
    compiler attaches (``2 * d`` and the qubit count); leave them ``None`` to
    use the hints.  ``max_subtasks`` bounds the enumeration so large codes
    cannot explode the split tree.  With ``num_workers <= 1`` the subtasks
    still split but run sequentially on one in-process session, which is also
    what happens inside batch worker processes (daemonic workers cannot spawn
    a nested pool); a provided ``session`` is reused on that sequential path.
    """

    num_workers: int = 2
    heuristic_weight: int | None = None
    threshold: int | None = None
    max_subtasks: int = 256

    name: ClassVar[str] = "parallel"
    supports_control: ClassVar[bool] = True

    @property
    def wants_session(self) -> bool:
        # Worker processes hold their own sessions; an in-process one is only
        # consumed on the sequential (num_workers <= 1) path.
        return self.num_workers <= 1

    @property
    def wants_resources(self) -> bool:
        """Whether :meth:`check` uses the engine's resource layer (persistent
        worker pools keyed by base formula) when one is provided."""
        return True

    def check(
        self,
        compiled: "CompiledTask",
        session: SolveSession | None = None,
        resources=None,
        control: SolveControl | None = None,
    ) -> SMTCheck:
        heuristic_weight = self.heuristic_weight or compiled.split_weight
        threshold = self.threshold if self.threshold is not None else compiled.split_threshold
        if resources is not None and self.num_workers > 1:
            # Engine-owned persistent pool: worker sessions (and their learnt
            # clauses) survive this check and serve the next run of any task
            # compiling to the same formula.
            split = resources.pools.split_session(
                compiled.formula,
                split_variables=tuple(compiled.split_variables),
                heuristic_weight=heuristic_weight,
                threshold=threshold,
                num_workers=self.num_workers,
                max_subtasks=self.max_subtasks,
            )
            return split.check(control=control)
        checker = ParallelChecker(
            compiled.formula,
            split_variables=list(compiled.split_variables),
            heuristic_weight=heuristic_weight,
            threshold=threshold,
            num_workers=self.num_workers,
            max_subtasks=self.max_subtasks,
            session=session if self.num_workers <= 1 else None,
        )
        return checker.run(control=control)


def coerce_backend(backend: "Backend | str | None", num_workers: int = 2) -> "Backend":
    """Resolve a backend argument: an instance, a name, or ``None`` (serial)."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, str):
        if backend == "serial":
            return SerialBackend()
        if backend == "parallel":
            return ParallelBackend(num_workers=num_workers)
        raise ValueError(f"unknown backend {backend!r}; expected 'serial' or 'parallel'")
    return backend
