"""Pluggable solver backends for the verification engine.

A backend decides one compiled task (a refutation formula): ``unsat`` means
the property is verified.  Two implementations ship with the engine:

* :class:`SerialBackend`   — one SAT query through :func:`repro.smt.interface.check_formula`;
* :class:`ParallelBackend` — enumeration-based task splitting across a worker
  pool through :class:`repro.smt.parallel.ParallelChecker` (Appendix D.4).

Both are plain frozen dataclasses so they can be pickled into the batch
executor's worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Protocol, runtime_checkable

from repro.smt.interface import SMTCheck, check_formula
from repro.smt.parallel import ParallelChecker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.engine import CompiledTask

__all__ = ["Backend", "SerialBackend", "ParallelBackend", "coerce_backend"]


@runtime_checkable
class Backend(Protocol):
    """Anything that can decide a compiled verification task."""

    name: str

    def check(self, compiled: "CompiledTask") -> SMTCheck:
        """Decide satisfiability of ``compiled.formula`` (unsat = verified)."""
        ...


@dataclass(frozen=True)
class SerialBackend:
    """Single-query backend over the in-tree CDCL solver."""

    name: ClassVar[str] = "serial"

    def check(self, compiled: "CompiledTask") -> SMTCheck:
        return check_formula(compiled.formula)


@dataclass(frozen=True)
class ParallelBackend:
    """Task-splitting backend (the paper's parallel strategy).

    ``heuristic_weight`` and ``threshold`` override the per-task hints the
    compiler attaches (``2 * d`` and the qubit count); leave them ``None`` to
    use the hints.  ``max_subtasks`` bounds the enumeration so large codes
    cannot explode the split tree.  With ``num_workers <= 1`` the subtasks
    still split but run sequentially, which is also what happens inside batch
    worker processes (daemonic workers cannot spawn a nested pool).
    """

    num_workers: int = 2
    heuristic_weight: int | None = None
    threshold: int | None = None
    max_subtasks: int = 256

    name: ClassVar[str] = "parallel"

    def check(self, compiled: "CompiledTask") -> SMTCheck:
        checker = ParallelChecker(
            compiled.formula,
            split_variables=list(compiled.split_variables),
            heuristic_weight=self.heuristic_weight or compiled.split_weight,
            threshold=self.threshold if self.threshold is not None else compiled.split_threshold,
            num_workers=self.num_workers,
            max_subtasks=self.max_subtasks,
        )
        return checker.run()


def coerce_backend(backend: "Backend | str | None", num_workers: int = 2) -> "Backend":
    """Resolve a backend argument: an instance, a name, or ``None`` (serial)."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, str):
        if backend == "serial":
            return SerialBackend()
        if backend == "parallel":
            return ParallelBackend(num_workers=num_workers)
        raise ValueError(f"unknown backend {backend!r}; expected 'serial' or 'parallel'")
    return backend
