"""Concrete n-qubit Pauli operators in symplectic representation.

A Pauli operator is stored as a pair of bit vectors ``x`` and ``z`` together
with a phase exponent ``t`` so that the operator equals

    i^t * X^{x_1} Z^{z_1}  tensor ... tensor  X^{x_n} Z^{z_n}.

With this convention ``Y = i X Z`` is represented by ``x=1, z=1, t=1``.  The
symplectic representation makes products, commutation checks and conjugation
by Clifford gates cheap bit operations, which is what the stabilizer tableau
simulator and the stabilizer-group machinery build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PauliOperator", "pauli_from_label", "single_qubit_pauli"]

_LABEL_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_LABEL = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}
# Phase exponent of i contributed by writing the single-qubit operator in
# X^x Z^z form: Y = i * X Z, so the label "Y" carries an extra factor i.
_LABEL_PHASE = {"I": 0, "X": 0, "Y": 1, "Z": 0}


@dataclass(frozen=True)
class PauliOperator:
    """An n-qubit Pauli operator ``i^phase * prod_j X_j^{x_j} Z_j^{z_j}``."""

    x: tuple[int, ...]
    z: tuple[int, ...]
    phase: int = 0  # exponent of i, modulo 4

    def __post_init__(self) -> None:
        if len(self.x) != len(self.z):
            raise ValueError("x and z bit vectors must have equal length")
        object.__setattr__(self, "x", tuple(int(b) % 2 for b in self.x))
        object.__setattr__(self, "z", tuple(int(b) % 2 for b in self.z))
        object.__setattr__(self, "phase", int(self.phase) % 4)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(num_qubits: int) -> "PauliOperator":
        """The identity operator on ``num_qubits`` qubits."""
        return PauliOperator((0,) * num_qubits, (0,) * num_qubits, 0)

    @staticmethod
    def from_label(label: str, phase: int = 0) -> "PauliOperator":
        """Build an operator from a string such as ``"XIZZY"``."""
        x_bits = []
        z_bits = []
        extra_phase = 0
        for char in label:
            if char not in _LABEL_TO_XZ:
                raise ValueError(f"invalid Pauli label character {char!r}")
            xb, zb = _LABEL_TO_XZ[char]
            x_bits.append(xb)
            z_bits.append(zb)
            extra_phase += _LABEL_PHASE[char]
        return PauliOperator(tuple(x_bits), tuple(z_bits), phase + extra_phase)

    @staticmethod
    def from_sparse(num_qubits: int, terms: dict[int, str], phase: int = 0) -> "PauliOperator":
        """Build an operator from ``{qubit_index: "X"|"Y"|"Z"}`` (0-based)."""
        labels = ["I"] * num_qubits
        for qubit, pauli in terms.items():
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit index {qubit} out of range for {num_qubits} qubits")
            labels[qubit] = pauli
        return PauliOperator.from_label("".join(labels), phase)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.x)

    @property
    def weight(self) -> int:
        """Number of qubits on which the operator acts non-trivially."""
        return sum(1 for xb, zb in zip(self.x, self.z) if xb or zb)

    @property
    def sign(self) -> complex:
        """The global phase as a complex number (one of 1, i, -1, -i)."""
        return 1j ** self.phase

    def is_identity(self) -> bool:
        return self.weight == 0 and self.phase == 0

    def is_hermitian(self) -> bool:
        """Hermitian Paulis have phase +1 or -1 once the Y factors are absorbed."""
        y_count = sum(1 for xb, zb in zip(self.x, self.z) if xb and zb)
        return (self.phase - y_count) % 2 == 0

    def label(self) -> str:
        """Human-readable label, e.g. ``"-XZY"``; the phase prefix is one of '', '-', 'i', '-i'."""
        y_count = sum(1 for xb, zb in zip(self.x, self.z) if xb and zb)
        display_phase = (self.phase - y_count) % 4
        prefix = {0: "", 1: "i", 2: "-", 3: "-i"}[display_phase]
        body = "".join(_XZ_TO_LABEL[(xb, zb)] for xb, zb in zip(self.x, self.z))
        return prefix + body

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PauliOperator({self.label()!r})"

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __mul__(self, other: "PauliOperator") -> "PauliOperator":
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot multiply Pauli operators on different qubit counts")
        # (X^a Z^b)(X^c Z^d) = (-1)^{b·c} X^{a+c} Z^{b+d}; (-1) = i^2.
        anticommutations = sum(zb * xc for zb, xc in zip(self.z, other.x))
        new_x = tuple((a ^ c) for a, c in zip(self.x, other.x))
        new_z = tuple((b ^ d) for b, d in zip(self.z, other.z))
        new_phase = self.phase + other.phase + 2 * anticommutations
        return PauliOperator(new_x, new_z, new_phase)

    def __neg__(self) -> "PauliOperator":
        return PauliOperator(self.x, self.z, self.phase + 2)

    def adjoint(self) -> "PauliOperator":
        """Hermitian adjoint (conjugate transpose)."""
        y_count = sum(1 for xb, zb in zip(self.x, self.z) if xb and zb)
        # The bare X^x Z^z part transposes to Z^z X^x = (-1)^{x·z} X^x Z^z.
        return PauliOperator(self.x, self.z, -self.phase + 2 * y_count)

    def commutes_with(self, other: "PauliOperator") -> bool:
        """Whether the two operators commute (symplectic inner product is 0)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot compare Pauli operators on different qubit counts")
        inner = sum(
            (xa * zb) ^ (za * xb)
            for xa, za, xb, zb in zip(self.x, self.z, other.x, other.z)
        )
        return inner % 2 == 0

    def symplectic_vector(self) -> np.ndarray:
        """The length-2n vector ``[x | z]`` over GF(2)."""
        return np.array(list(self.x) + list(self.z), dtype=np.uint8)

    @staticmethod
    def from_symplectic(vector, phase: int = 0) -> "PauliOperator":
        """Inverse of :meth:`symplectic_vector`."""
        arr = np.asarray(vector, dtype=np.int64).reshape(-1) % 2
        if arr.size % 2 != 0:
            raise ValueError("symplectic vector must have even length")
        half = arr.size // 2
        return PauliOperator(tuple(arr[:half]), tuple(arr[half:]), phase)

    # ------------------------------------------------------------------
    # Dense matrix (small systems only, for ground-truth tests)
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense matrix of the operator; exponential in qubit count."""
        single = {
            "I": np.eye(2, dtype=complex),
            "X": np.array([[0, 1], [1, 0]], dtype=complex),
            "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "Z": np.array([[1, 0], [0, -1]], dtype=complex),
        }
        result = np.array([[1.0 + 0j]])
        y_count = 0
        for xb, zb in zip(self.x, self.z):
            label = _XZ_TO_LABEL[(xb, zb)]
            if label == "Y":
                y_count += 1
            result = np.kron(result, single[label])
        return (1j ** ((self.phase - y_count) % 4)) * result


def single_qubit_pauli(num_qubits: int, qubit: int, pauli: str) -> PauliOperator:
    """Convenience constructor for an elementary ``X_r``, ``Y_r`` or ``Z_r``."""
    return PauliOperator.from_sparse(num_qubits, {qubit: pauli})


def pauli_from_label(label: str) -> PauliOperator:
    """Parse labels like ``"XXIZ"``, ``"-YZ"``, ``"iX"`` or ``"+ZZ"``."""
    phase = 0
    body = label
    if body.startswith("+"):
        body = body[1:]
    if body.startswith("-i"):
        phase, body = 3, body[2:]
    elif body.startswith("i"):
        phase, body = 1, body[1:]
    elif body.startswith("-"):
        phase, body = 2, body[1:]
    return PauliOperator.from_label(body, phase)
