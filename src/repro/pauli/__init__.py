"""Pauli operators, stabilizer groups, tableau simulation and symbolic Pauli expressions."""

from repro.pauli.expr import PauliExpr, PauliTerm, PhaseExpr
from repro.pauli.group import StabilizerGroup
from repro.pauli.pauli import PauliOperator, pauli_from_label
from repro.pauli.scalar import SqrtTwoRational
from repro.pauli.tableau import StabilizerTableau

__all__ = [
    "PauliOperator",
    "pauli_from_label",
    "StabilizerGroup",
    "StabilizerTableau",
    "SqrtTwoRational",
    "PauliExpr",
    "PauliTerm",
    "PhaseExpr",
]
