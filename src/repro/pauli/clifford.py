"""Conjugation of Pauli operators by the Clifford gates of the language.

Two directions are needed:

* *backward* (``U^dagger P U``): exactly the substitutions used by the
  weakest-precondition rules of Fig. 3 in the paper;
* *forward* (``U P U^dagger``): Heisenberg evolution used by the stabilizer
  tableau simulator.

The backward tables are transcribed from the paper; the forward tables are
derived from them by inverting the induced automorphism on the local Pauli
group, so the two can never drift apart.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product

from repro.pauli.pauli import PauliOperator

__all__ = [
    "CLIFFORD_1Q",
    "CLIFFORD_2Q",
    "backward_images",
    "forward_images",
    "conjugate_pauli",
]

CLIFFORD_1Q = ("X", "Y", "Z", "H", "S", "SDG")
CLIFFORD_2Q = ("CNOT", "CZ", "ISWAP")

# A *local image* is a signed Pauli on the gate's qubits, written as
# (sign, chars) with sign in {+1, -1} and chars a tuple of 'I'/'X'/'Y'/'Z'
# per gate qubit.  The tables give the image of X and Z on each gate qubit
# under U^dagger . U (the wp substitution of Fig. 3).
LocalImage = tuple[int, tuple[str, ...]]

_BACKWARD_1Q: dict[str, dict[str, LocalImage]] = {
    "X": {"X": (1, ("X",)), "Z": (-1, ("Z",))},
    "Y": {"X": (-1, ("X",)), "Z": (-1, ("Z",))},
    "Z": {"X": (-1, ("X",)), "Z": (1, ("Z",))},
    "H": {"X": (1, ("Z",)), "Z": (1, ("X",))},
    # Rule (U-S): X -> -Y, Y -> X, Z -> Z.
    "S": {"X": (-1, ("Y",)), "Z": (1, ("Z",))},
    "SDG": {"X": (1, ("Y",)), "Z": (1, ("Z",))},
}

_BACKWARD_2Q: dict[str, dict[tuple[str, int], LocalImage]] = {
    # Rule (U-CNOT): X_i -> X_i X_j, Y_i -> Y_i X_j, Y_j -> Z_i Y_j, Z_j -> Z_i Z_j.
    "CNOT": {
        ("X", 0): (1, ("X", "X")),
        ("Z", 0): (1, ("Z", "I")),
        ("X", 1): (1, ("I", "X")),
        ("Z", 1): (1, ("Z", "Z")),
    },
    # Rule (U-CZ): X_i -> X_i Z_j, Y_i -> Y_i Z_j, X_j -> Z_i X_j, Y_j -> Z_i Y_j.
    "CZ": {
        ("X", 0): (1, ("X", "Z")),
        ("Z", 0): (1, ("Z", "I")),
        ("X", 1): (1, ("Z", "X")),
        ("Z", 1): (1, ("I", "Z")),
    },
    # Rule (U-iSWAP): X_i -> Z_i Y_j, Y_i -> -Z_i X_j, Z_i -> Z_j,
    #                 X_j -> Y_i Z_j, Y_j -> -X_i Z_j, Z_j -> Z_i.
    "ISWAP": {
        ("X", 0): (1, ("Z", "Y")),
        ("Z", 0): (1, ("I", "Z")),
        ("X", 1): (1, ("Y", "Z")),
        ("Z", 1): (1, ("Z", "I")),
    },
}


def _local_operator(image: LocalImage) -> PauliOperator:
    sign, chars = image
    op = PauliOperator.from_label("".join(chars))
    if sign < 0:
        op = -op
    return op


def _apply_local_map(images: dict, op: PauliOperator) -> PauliOperator:
    """Apply a local substitution map to a Pauli on the gate's qubits."""
    arity = op.num_qubits
    result = PauliOperator((0,) * arity, (0,) * arity, op.phase)
    for qubit in range(arity):
        if op.x[qubit]:
            key = "X" if arity == 1 else ("X", qubit)
            result = result * _local_operator(images[key])
        if op.z[qubit]:
            key = "Z" if arity == 1 else ("Z", qubit)
            result = result * _local_operator(images[key])
    return result


@lru_cache(maxsize=None)
def backward_images(gate: str) -> dict:
    """Local images of X/Z generators under ``U^dagger . U`` (wp direction)."""
    name = gate.upper()
    if name in _BACKWARD_1Q:
        return dict(_BACKWARD_1Q[name])
    if name in _BACKWARD_2Q:
        return dict(_BACKWARD_2Q[name])
    raise ValueError(f"{gate!r} is not a supported Clifford gate")


@lru_cache(maxsize=None)
def forward_images(gate: str) -> dict:
    """Local images of X/Z generators under ``U . U^dagger`` (simulation direction).

    Derived by inverting the backward map over the local Pauli group, so the
    forward tables are automatically consistent with the wp rules.
    """
    name = gate.upper()
    backward = backward_images(name)
    arity = 1 if name in _BACKWARD_1Q else 2
    generators: dict = {}
    labels = ["X", "Z"] if arity == 1 else [("X", 0), ("Z", 0), ("X", 1), ("Z", 1)]
    for key in labels:
        if arity == 1:
            target = PauliOperator.from_label(key)
        else:
            chars = ["I", "I"]
            chars[key[1]] = key[0]
            target = PauliOperator.from_label("".join(chars))
        image = _find_preimage(backward, target, arity)
        generators[key] = image
    return generators


def _find_preimage(backward: dict, target: PauliOperator, arity: int) -> LocalImage:
    """Brute-force the signed local Pauli mapped onto ``target`` by ``backward``."""
    paulis = ["I", "X", "Y", "Z"]
    for chars in product(paulis, repeat=arity):
        candidate = PauliOperator.from_label("".join(chars))
        for sign in (1, -1):
            signed = candidate if sign == 1 else -candidate
            if _apply_local_map(backward, signed) == target:
                return (sign, chars)
    raise RuntimeError("backward conjugation map is not invertible (internal error)")


def conjugate_pauli(
    op: PauliOperator,
    gate: str,
    qubits: tuple[int, ...],
    direction: str = "forward",
) -> PauliOperator:
    """Conjugate ``op`` by a Clifford ``gate`` acting on ``qubits``.

    ``direction="forward"`` computes ``U op U^dagger``;
    ``direction="backward"`` computes ``U^dagger op U`` (the wp substitution).
    """
    name = gate.upper()
    if direction == "forward":
        images = forward_images(name)
    elif direction == "backward":
        images = backward_images(name)
    else:
        raise ValueError(f"unknown direction {direction!r}")
    arity = 1 if name in _BACKWARD_1Q else 2
    if len(qubits) != arity:
        raise ValueError(f"gate {name} acts on {arity} qubit(s), got {len(qubits)}")
    if arity == 2 and qubits[0] == qubits[1]:
        raise ValueError("two-qubit gates need distinct qubits")

    n = op.num_qubits
    result = PauliOperator((0,) * n, (0,) * n, op.phase)
    for qubit in range(n):
        for char, bit in (("X", op.x[qubit]), ("Z", op.z[qubit])):
            if not bit:
                continue
            if qubit not in qubits:
                factor = PauliOperator.from_sparse(n, {qubit: char})
            else:
                role = qubits.index(qubit)
                key = char if arity == 1 else (char, role)
                sign, chars = images[key]
                terms = {
                    qubits[r]: c for r, c in enumerate(chars) if c != "I"
                }
                factor = PauliOperator.from_sparse(n, terms)
                if sign < 0:
                    factor = -factor
            result = result * factor
    return result
