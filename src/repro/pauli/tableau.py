"""A stabilizer tableau simulator (the Stim substitute of the evaluation).

The simulator follows Aaronson and Gottesman's CHP construction: the state of
an n-qubit system prepared from |0...0> by Clifford gates and Pauli
measurements is represented by n stabilizer generators and n destabilizer
generators.  Gates act by conjugating every generator; measurements use the
standard anticommutation argument.  The representation here stores each
generator as a :class:`~repro.pauli.pauli.PauliOperator`, which keeps the
phase bookkeeping exact and makes the simulator easy to audit against the
dense-matrix semantics; it comfortably handles the few hundred qubits used in
the paper's benchmarks.
"""

from __future__ import annotations

import random

from repro.pauli.clifford import CLIFFORD_1Q, CLIFFORD_2Q, conjugate_pauli
from repro.pauli.pauli import PauliOperator

__all__ = ["StabilizerTableau"]


class StabilizerTableau:
    """Stabilizer-state simulator supporting Clifford gates and Pauli measurements."""

    def __init__(self, num_qubits: int, seed: int | None = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = num_qubits
        self._rng = random.Random(seed)
        self.stabilizers = [
            PauliOperator.from_sparse(num_qubits, {q: "Z"}) for q in range(num_qubits)
        ]
        self.destabilizers = [
            PauliOperator.from_sparse(num_qubits, {q: "X"}) for q in range(num_qubits)
        ]

    # ------------------------------------------------------------------
    # Gates and errors
    # ------------------------------------------------------------------
    def apply_gate(self, gate: str, *qubits: int) -> None:
        """Apply a Clifford gate by conjugating every generator."""
        name = gate.upper()
        if name not in CLIFFORD_1Q and name not in CLIFFORD_2Q:
            raise ValueError(f"{gate!r} is not a Clifford gate supported by the tableau")
        for qubit in qubits:
            self._check_qubit(qubit)
        self.stabilizers = [
            conjugate_pauli(op, name, tuple(qubits), "forward") for op in self.stabilizers
        ]
        self.destabilizers = [
            conjugate_pauli(op, name, tuple(qubits), "forward")
            for op in self.destabilizers
        ]

    def apply_pauli(self, pauli: PauliOperator) -> None:
        """Apply a Pauli operator (for example an injected error).

        Conjugation by a Pauli only flips signs of anti-commuting generators.
        """
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("Pauli acts on a different number of qubits")
        self.stabilizers = [
            op if op.commutes_with(pauli) else -op for op in self.stabilizers
        ]
        self.destabilizers = [
            op if op.commutes_with(pauli) else -op for op in self.destabilizers
        ]

    def apply_error(self, qubit: int, pauli: str) -> None:
        """Inject a single-qubit X, Y or Z error."""
        self._check_qubit(qubit)
        self.apply_pauli(PauliOperator.from_sparse(self.num_qubits, {qubit: pauli}))

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure_pauli(self, observable: PauliOperator, forced_outcome: int | None = None) -> int:
        """Measure a Hermitian Pauli observable, returning the outcome bit.

        Outcome 0 corresponds to projecting onto the +1 eigenspace.  When the
        outcome is random, ``forced_outcome`` (0 or 1) postselects it, which
        the QEC test harness uses to explore specific syndrome branches.
        """
        if observable.num_qubits != self.num_qubits:
            raise ValueError("observable acts on a different number of qubits")
        if not observable.is_hermitian():
            raise ValueError("measurement observable must be Hermitian")

        anticommuting = [
            index
            for index, stab in enumerate(self.stabilizers)
            if not stab.commutes_with(observable)
        ]
        if anticommuting:
            return self._measure_random(observable, anticommuting, forced_outcome)
        return self._measure_deterministic(observable)

    def _measure_random(
        self,
        observable: PauliOperator,
        anticommuting: list[int],
        forced_outcome: int | None,
    ) -> int:
        pivot = anticommuting[0]
        pivot_stab = self.stabilizers[pivot]
        for index in anticommuting[1:]:
            self.stabilizers[index] = self.stabilizers[index] * pivot_stab
        for index, destab in enumerate(self.destabilizers):
            if index != pivot and not destab.commutes_with(observable):
                self.destabilizers[index] = destab * pivot_stab
        outcome = (
            forced_outcome if forced_outcome is not None else self._rng.randint(0, 1)
        )
        self.destabilizers[pivot] = pivot_stab
        self.stabilizers[pivot] = observable if outcome == 0 else -observable
        return outcome

    def _measure_deterministic(self, observable: PauliOperator) -> int:
        accumulated = PauliOperator.identity(self.num_qubits)
        for index, destab in enumerate(self.destabilizers):
            if not destab.commutes_with(observable):
                accumulated = accumulated * self.stabilizers[index]
        ratio = accumulated * observable.adjoint()
        if ratio.weight != 0:
            raise RuntimeError("tableau invariant violated during measurement")
        if ratio.phase == 0:
            return 0
        if ratio.phase == 2:
            return 1
        raise RuntimeError("deterministic measurement produced an imaginary phase")

    def measure_z(self, qubit: int, forced_outcome: int | None = None) -> int:
        """Computational-basis measurement of one qubit."""
        self._check_qubit(qubit)
        observable = PauliOperator.from_sparse(self.num_qubits, {qubit: "Z"})
        return self.measure_pauli(observable, forced_outcome)

    def reset_qubit(self, qubit: int) -> None:
        """Reset one qubit to |0> (measure Z and flip on outcome 1)."""
        outcome = self.measure_z(qubit)
        if outcome == 1:
            self.apply_error(qubit, "X")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_stabilized_by(self, observable: PauliOperator) -> bool:
        """Whether the current state is a +1 eigenstate of ``observable``."""
        if any(not stab.commutes_with(observable) for stab in self.stabilizers):
            return False
        return self._measure_deterministic(observable) == 0

    def expectation(self, observable: PauliOperator) -> int:
        """Expectation value of a Hermitian Pauli: +1, -1 or 0 (indeterminate)."""
        if any(not stab.commutes_with(observable) for stab in self.stabilizers):
            return 0
        return 1 if self._measure_deterministic(observable) == 0 else -1

    def stabilizer_labels(self) -> list[str]:
        return [stab.label() for stab in self.stabilizers]

    def copy(self) -> "StabilizerTableau":
        clone = StabilizerTableau(self.num_qubits)
        clone.stabilizers = list(self.stabilizers)
        clone.destabilizers = list(self.destabilizers)
        clone._rng = random.Random()
        clone._rng.setstate(self._rng.getstate())
        return clone

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit index {qubit} out of range")
