"""The ring Z[1/sqrt(2)] of scalar coefficients (SExp of the paper).

Closure of Pauli expressions under the T gate requires coefficients of the
form ``(a + b*sqrt(2)) / 2^t`` with integer ``a, b`` (Section 3.1).  The
class below implements exact arithmetic in that ring with a canonical
representation, so equality of coefficients is decidable and the symbolic
Pauli-expression layer never loses precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SqrtTwoRational"]


@dataclass(frozen=True)
class SqrtTwoRational:
    """The number ``(a + b*sqrt(2)) / 2**t`` in canonical form.

    Canonical means ``t`` is as small as possible: either ``t == 0`` or not
    both ``a`` and ``b`` are even.
    """

    a: int = 0
    b: int = 0
    t: int = 0

    def __post_init__(self) -> None:
        a, b, t = int(self.a), int(self.b), int(self.t)
        if t < 0:
            # Negative exponents mean multiplication by powers of two.
            a *= 2 ** (-t)
            b *= 2 ** (-t)
            t = 0
        while t > 0 and a % 2 == 0 and b % 2 == 0:
            a //= 2
            b //= 2
            t -= 1
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "t", t)

    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "SqrtTwoRational":
        return SqrtTwoRational(0, 0, 0)

    @staticmethod
    def one() -> "SqrtTwoRational":
        return SqrtTwoRational(1, 0, 0)

    @staticmethod
    def from_int(value: int) -> "SqrtTwoRational":
        return SqrtTwoRational(int(value), 0, 0)

    @staticmethod
    def sqrt2() -> "SqrtTwoRational":
        return SqrtTwoRational(0, 1, 0)

    @staticmethod
    def inv_sqrt2() -> "SqrtTwoRational":
        """1/sqrt(2) = sqrt(2)/2."""
        return SqrtTwoRational(0, 1, 1)

    # ------------------------------------------------------------------
    def __add__(self, other: "SqrtTwoRational") -> "SqrtTwoRational":
        other = _coerce(other)
        t = max(self.t, other.t)
        a = self.a * 2 ** (t - self.t) + other.a * 2 ** (t - other.t)
        b = self.b * 2 ** (t - self.t) + other.b * 2 ** (t - other.t)
        return SqrtTwoRational(a, b, t)

    def __sub__(self, other: "SqrtTwoRational") -> "SqrtTwoRational":
        return self + (-_coerce(other))

    def __neg__(self) -> "SqrtTwoRational":
        return SqrtTwoRational(-self.a, -self.b, self.t)

    def __mul__(self, other) -> "SqrtTwoRational":
        other = _coerce(other)
        # (a1 + b1 r)(a2 + b2 r) = a1 a2 + 2 b1 b2 + (a1 b2 + a2 b1) r, r = sqrt(2).
        a = self.a * other.a + 2 * self.b * other.b
        b = self.a * other.b + self.b * other.a
        return SqrtTwoRational(a, b, self.t + other.t)

    __rmul__ = __mul__

    def __bool__(self) -> bool:
        return not self.is_zero()

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def is_one(self) -> bool:
        return self == SqrtTwoRational.one()

    def __float__(self) -> float:
        return (self.a + self.b * math.sqrt(2.0)) / (2 ** self.t)

    def __repr__(self) -> str:
        if self.b == 0:
            numerator = str(self.a)
        elif self.a == 0:
            numerator = f"{self.b}*sqrt2" if self.b != 1 else "sqrt2"
        else:
            numerator = f"({self.a} + {self.b}*sqrt2)"
        if self.t == 0:
            return numerator
        return f"{numerator}/{2 ** self.t}"


def _coerce(value) -> SqrtTwoRational:
    if isinstance(value, SqrtTwoRational):
        return value
    if isinstance(value, int):
        return SqrtTwoRational.from_int(value)
    raise TypeError(f"cannot coerce {value!r} to SqrtTwoRational")
