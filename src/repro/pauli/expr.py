"""Symbolic Pauli expressions (PExp of the paper).

An atomic proposition of the assertion logic is a Pauli expression of the
form ``(-1)^phi * P`` where ``phi`` is a classical parity over program
variables and ``P`` an n-qubit Pauli.  Closure under the Clifford+T gate set
(Theorem 3.1) additionally requires sums of such terms with coefficients in
Z[1/sqrt(2)], e.g. the image ``(X - Y)/sqrt(2)`` of ``X`` under a T gate.

This module implements the expressions as flat sums of :class:`PauliTerm`
values together with the operations the weakest-precondition calculus needs:
multiplication, addition, backward/forward conjugation by every gate of the
language, conditional Pauli-error substitution, classical substitution in the
phases, and exact evaluation to a dense operator for ground-truth tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classical.expr import Expr
from repro.classical.parity import ParityExpr
from repro.pauli.clifford import CLIFFORD_1Q, CLIFFORD_2Q, backward_images, forward_images
from repro.pauli.pauli import PauliOperator
from repro.pauli.scalar import SqrtTwoRational

__all__ = ["PhaseExpr", "PauliTerm", "PauliExpr"]

# A symbolic phase is a parity of boolean atoms; re-export under the paper's name.
PhaseExpr = ParityExpr


@dataclass(frozen=True)
class PauliTerm:
    """One summand ``coefficient * (-1)^phase * operator``."""

    operator: PauliOperator
    phase: ParityExpr = ParityExpr.zero()
    coefficient: SqrtTwoRational = SqrtTwoRational.one()

    def canonical(self) -> "PauliTerm":
        """Fold a concrete -1 sign of the operator into the symbolic phase.

        After canonicalisation the operator's residual sign is +1 or +i, so
        terms that differ only by a factor of -1 share the same operator and
        can be merged (or cancelled) by :meth:`PauliExpr.collect`.
        """
        y_count = sum(1 for xb, zb in zip(self.operator.x, self.operator.z) if xb and zb)
        sign_exponent = (self.operator.phase - y_count) % 4
        if sign_exponent in (2, 3):
            positive = PauliOperator(self.operator.x, self.operator.z, self.operator.phase + 2)
            return PauliTerm(positive, self.phase.flipped(), self.coefficient)
        return self

    def is_hermitian_pauli(self) -> bool:
        """Whether the term is (a signed multiple of) a Hermitian Pauli."""
        return self.operator.is_hermitian()

    def evaluate(self, memory) -> np.ndarray:
        """Dense matrix of the term under a classical memory."""
        sign = (-1) ** self.phase.evaluate(memory)
        return float(self.coefficient) * sign * self.operator.to_matrix()

    def __repr__(self) -> str:
        phase = "" if self.phase.is_zero() else f"(-1)^({self.phase!r})·"
        coeff = "" if self.coefficient.is_one() else f"{self.coefficient!r}·"
        return f"{coeff}{phase}{self.operator.label()}"


class PauliExpr:
    """A sum of :class:`PauliTerm` values on a fixed number of qubits."""

    def __init__(self, num_qubits: int, terms: list[PauliTerm] | None = None):
        self.num_qubits = num_qubits
        self.terms: tuple[PauliTerm, ...] = tuple(
            term.canonical() for term in (terms or []) if not term.coefficient.is_zero()
        )
        for term in self.terms:
            if term.operator.num_qubits != num_qubits:
                raise ValueError("all terms must act on the same number of qubits")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def atom(
        operator: PauliOperator,
        phase: ParityExpr | None = None,
        coefficient: SqrtTwoRational | int = 1,
    ) -> "PauliExpr":
        """A single Pauli atom ``coefficient * (-1)^phase * operator``."""
        if isinstance(coefficient, int):
            coefficient = SqrtTwoRational.from_int(coefficient)
        return PauliExpr(
            operator.num_qubits,
            [PauliTerm(operator, phase or ParityExpr.zero(), coefficient)],
        )

    @staticmethod
    def from_label(label: str, num_qubits: int | None = None) -> "PauliExpr":
        operator = PauliOperator.from_label(label)
        if num_qubits is not None and operator.num_qubits != num_qubits:
            raise ValueError("label length does not match num_qubits")
        return PauliExpr.atom(operator)

    @staticmethod
    def identity(num_qubits: int) -> "PauliExpr":
        return PauliExpr.atom(PauliOperator.identity(num_qubits))

    @staticmethod
    def zero(num_qubits: int) -> "PauliExpr":
        return PauliExpr(num_qubits, [])

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "PauliExpr") -> "PauliExpr":
        self._check_compatible(other)
        return PauliExpr(self.num_qubits, list(self.terms) + list(other.terms)).collect()

    def __sub__(self, other: "PauliExpr") -> "PauliExpr":
        return self + (-other)

    def __neg__(self) -> "PauliExpr":
        return PauliExpr(
            self.num_qubits,
            [PauliTerm(t.operator, t.phase.flipped(), t.coefficient) for t in self.terms],
        )

    def __mul__(self, other: "PauliExpr") -> "PauliExpr":
        self._check_compatible(other)
        products: list[PauliTerm] = []
        for left in self.terms:
            for right in other.terms:
                products.append(
                    PauliTerm(
                        left.operator * right.operator,
                        left.phase ^ right.phase,
                        left.coefficient * right.coefficient,
                    )
                )
        return PauliExpr(self.num_qubits, products).collect()

    def scaled(self, coefficient: SqrtTwoRational | int) -> "PauliExpr":
        if isinstance(coefficient, int):
            coefficient = SqrtTwoRational.from_int(coefficient)
        return PauliExpr(
            self.num_qubits,
            [PauliTerm(t.operator, t.phase, t.coefficient * coefficient) for t in self.terms],
        )

    def with_extra_phase(self, phase: ParityExpr) -> "PauliExpr":
        """Multiply the whole expression by ``(-1)^phase``."""
        return PauliExpr(
            self.num_qubits,
            [PauliTerm(t.operator, t.phase ^ phase, t.coefficient) for t in self.terms],
        )

    def collect(self) -> "PauliExpr":
        """Merge terms with identical operator and symbolic phase.

        Terms whose phases differ only by the constant bit (i.e. by an overall
        factor of -1) are merged with opposite coefficient signs, so exact
        cancellations such as ``Z Y + Y Z = 0`` are recognised.
        """
        merged: dict[tuple, SqrtTwoRational] = {}
        order: list[tuple] = []
        for term in self.terms:
            canonical = term.canonical()
            key = (canonical.operator, canonical.phase.atoms)
            if key not in merged:
                merged[key] = SqrtTwoRational.zero()
                order.append(key)
            signed = canonical.coefficient
            if canonical.phase.constant:
                signed = -signed
            merged[key] = merged[key] + signed
        terms = [
            PauliTerm(op, ParityExpr(atoms, 0), coeff)
            for (op, atoms) in order
            if not (coeff := merged[(op, atoms)]).is_zero()
        ]
        return PauliExpr(self.num_qubits, terms)

    # ------------------------------------------------------------------
    # Gate conjugation (wp substitution and Heisenberg evolution)
    # ------------------------------------------------------------------
    def apply_gate(
        self, gate: str, qubits: tuple[int, ...], direction: str = "backward"
    ) -> "PauliExpr":
        """Conjugate the expression by a gate of the language.

        ``direction="backward"`` yields ``U^dagger expr U`` (the substitution
        used by the proof rules of Fig. 3); ``"forward"`` yields
        ``U expr U^dagger``.
        """
        name = gate.upper()
        if name in ("T", "TDG"):
            return self._apply_t_gate(qubits[0], name, direction)
        if name not in CLIFFORD_1Q and name not in CLIFFORD_2Q:
            raise ValueError(f"unsupported gate {gate!r}")
        images = backward_images(name) if direction == "backward" else forward_images(name)
        result_terms: list[PauliExpr] = []
        for term in self.terms:
            conjugated = self._conjugate_term(term, name, qubits, images)
            result_terms.append(conjugated)
        return _sum_exprs(self.num_qubits, result_terms)

    def _conjugate_term(
        self,
        term: PauliTerm,
        gate: str,
        qubits: tuple[int, ...],
        images: dict,
    ) -> "PauliExpr":
        arity = 1 if gate in CLIFFORD_1Q else 2
        if len(qubits) != arity:
            raise ValueError(f"gate {gate} expects {arity} qubit(s)")
        result = PauliExpr.atom(
            PauliOperator((0,) * self.num_qubits, (0,) * self.num_qubits, term.operator.phase),
            term.phase,
            term.coefficient,
        )
        for qubit in range(self.num_qubits):
            for char, bit in (("X", term.operator.x[qubit]), ("Z", term.operator.z[qubit])):
                if not bit:
                    continue
                if qubit not in qubits:
                    factor = PauliExpr.atom(
                        PauliOperator.from_sparse(self.num_qubits, {qubit: char})
                    )
                else:
                    role = qubits.index(qubit)
                    key = char if arity == 1 else (char, role)
                    sign, chars = images[key]
                    sparse = {qubits[r]: c for r, c in enumerate(chars) if c != "I"}
                    operator = PauliOperator.from_sparse(self.num_qubits, sparse)
                    if sign < 0:
                        operator = -operator
                    factor = PauliExpr.atom(operator)
                result = result * factor
        return result

    def _apply_t_gate(self, qubit: int, name: str, direction: str) -> "PauliExpr":
        """Conjugation by T (or T^dagger): X -> (X -/+ Y)/sqrt(2), Z -> Z."""
        # Backward T: X -> (X - Y)/sqrt2.  Forward T: X -> (X + Y)/sqrt2.
        # For TDG the two directions swap.
        minus = (direction == "backward") == (name == "T")
        inv_sqrt2 = SqrtTwoRational.inv_sqrt2()
        x_image = PauliExpr(
            self.num_qubits,
            [
                PauliTerm(
                    PauliOperator.from_sparse(self.num_qubits, {qubit: "X"}),
                    ParityExpr.zero(),
                    inv_sqrt2,
                ),
                PauliTerm(
                    PauliOperator.from_sparse(self.num_qubits, {qubit: "Y"}),
                    ParityExpr.one() if minus else ParityExpr.zero(),
                    inv_sqrt2,
                ),
            ],
        )
        results: list[PauliExpr] = []
        for term in self.terms:
            expr = PauliExpr.atom(
                PauliOperator(
                    (0,) * self.num_qubits, (0,) * self.num_qubits, term.operator.phase
                ),
                term.phase,
                term.coefficient,
            )
            for index in range(self.num_qubits):
                for char, bit in (("X", term.operator.x[index]), ("Z", term.operator.z[index])):
                    if not bit:
                        continue
                    if index == qubit and char == "X":
                        factor = x_image
                    else:
                        factor = PauliExpr.atom(
                            PauliOperator.from_sparse(self.num_qubits, {index: char})
                        )
                    expr = expr * factor
            results.append(expr)
        return _sum_exprs(self.num_qubits, results)

    def apply_conditional_pauli(
        self, qubit: int, pauli: str, condition: ParityExpr
    ) -> "PauliExpr":
        """The derived rules for ``[b] q_i *= U`` with ``U`` a Pauli error.

        Conjugation by ``U^b`` multiplies a term by ``(-1)^(b)`` exactly when
        the term anti-commutes with the error, which reproduces the
        substitutions ``A[(-1)^b Y_i / Y_i, (-1)^b Z_i / Z_i]`` etc.
        """
        error = PauliOperator.from_sparse(self.num_qubits, {qubit: pauli})
        new_terms = []
        for term in self.terms:
            if term.operator.commutes_with(error):
                new_terms.append(term)
            else:
                new_terms.append(
                    PauliTerm(term.operator, term.phase ^ condition, term.coefficient)
                )
        return PauliExpr(self.num_qubits, new_terms)

    # ------------------------------------------------------------------
    # Classical substitution and evaluation
    # ------------------------------------------------------------------
    def substitute_classical(self, mapping: dict[str, Expr | ParityExpr | int]) -> "PauliExpr":
        """Substitute classical variables inside the symbolic phases."""
        return PauliExpr(
            self.num_qubits,
            [
                PauliTerm(t.operator, t.phase.substitute(mapping), t.coefficient)
                for t in self.terms
            ],
        )

    def evaluate_operator(self, memory) -> np.ndarray:
        """Dense matrix of the expression under a classical memory (tests only)."""
        dim = 2 ** self.num_qubits
        total = np.zeros((dim, dim), dtype=complex)
        for term in self.terms:
            total += term.evaluate(memory)
        return total

    def concrete_terms(self, memory) -> list[tuple[float, PauliOperator]]:
        """The terms with phases evaluated: a list of (signed coefficient, operator)."""
        result = []
        for term in self.terms:
            sign = (-1) ** term.phase.evaluate(memory)
            result.append((sign * float(term.coefficient), term.operator))
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_single_pauli(self) -> bool:
        """Whether the expression is a single term with coefficient one."""
        return len(self.terms) == 1 and self.terms[0].coefficient.is_one()

    def single_term(self) -> PauliTerm:
        if len(self.terms) != 1:
            raise ValueError("expression is not a single Pauli term")
        return self.terms[0]

    def free_variables(self) -> frozenset[str]:
        names: set[str] = set()
        for term in self.terms:
            names.update(term.phase.variables())
        return frozenset(names)

    def phase_atoms(self) -> frozenset:
        atoms: set = set()
        for term in self.terms:
            atoms.update(term.phase.atoms)
        return frozenset(atoms)

    def _check_compatible(self, other: "PauliExpr") -> None:
        if self.num_qubits != other.num_qubits:
            raise ValueError("Pauli expressions act on different numbers of qubits")

    def __eq__(self, other) -> bool:
        if not isinstance(other, PauliExpr):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and sorted(map(repr, self.collect().terms)) == sorted(map(repr, other.collect().terms))
        )

    def __hash__(self) -> int:
        return hash((self.num_qubits, tuple(sorted(map(repr, self.collect().terms)))))

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        return " + ".join(repr(term) for term in self.terms)


def _sum_exprs(num_qubits: int, exprs: list[PauliExpr]) -> PauliExpr:
    terms: list[PauliTerm] = []
    for expr in exprs:
        terms.extend(expr.terms)
    return PauliExpr(num_qubits, terms).collect()
