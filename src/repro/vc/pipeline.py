"""End-to-end verification of a Hoare triple (the program-logic route).

``verify_triple`` mirrors the three components of the tool described in
Section 6: the correctness-formula (here: the triple built by
:mod:`repro.verifier.programs`), the VC generator (the compact symbolic wp of
:mod:`repro.vc.symbolic` plus the reduction of :mod:`repro.vc.reduction`) and
the SMT checker (:mod:`repro.smt`).
"""

from __future__ import annotations

import time

from repro.classical.expr import BoolExpr
from repro.hoare.triple import HoareTriple
from repro.logic.assertion import AndAssertion, Assertion, PauliAssertion
from repro.smt.interface import check_valid
from repro.vc.reduction import SpecAtom, reduce_to_classical
from repro.vc.symbolic import symbolic_wp
from repro.verifier.report import VerificationReport

__all__ = ["verify_triple", "spec_atoms_from_assertion"]


def spec_atoms_from_assertion(assertion: Assertion) -> list[SpecAtom]:
    """Extract the Pauli atoms of a conjunction-of-atoms assertion."""
    atoms: list[SpecAtom] = []

    def collect(node: Assertion) -> None:
        if isinstance(node, AndAssertion):
            for part in node.parts:
                collect(part)
            return
        if isinstance(node, PauliAssertion):
            if len(node.expr.terms) != 1:
                raise ValueError("specification atoms must be single Pauli terms")
            term = node.expr.terms[0]
            atoms.append(SpecAtom(term.operator, term.phase, f"spec[{len(atoms)}]"))
            return
        raise ValueError(
            "pre/postconditions of QEC correctness formulas must be conjunctions of "
            f"Pauli atoms; found {type(node).__name__}"
        )

    collect(assertion)
    return atoms


def verify_triple(
    triple: HoareTriple,
    decoder_condition: BoolExpr | None = None,
) -> VerificationReport:
    """Verify ``{A ∧ P_c} S {B}`` and report the result.

    The postcondition atoms are pushed backwards through the program with the
    compact symbolic wp, the entailment against the precondition atoms is
    reduced to a classical formula, and the formula's validity is decided by
    the SAT back end.
    """
    start = time.perf_counter()
    spec = spec_atoms_from_assertion(triple.precondition)
    postcondition_atoms = [
        assertion.expr for assertion in _pauli_parts(triple.postcondition)
    ]
    num_qubits = spec[0].operator.num_qubits
    precondition = symbolic_wp(triple.program, postcondition_atoms, num_qubits)
    formula = reduce_to_classical(
        spec,
        precondition,
        triple.classical_constraint,
        decoder_condition=decoder_condition,
    )
    check = check_valid(formula)
    elapsed = time.perf_counter() - start
    return VerificationReport(
        task=f"program-logic:{triple.name}",
        code_name=triple.name,
        verified=check.is_unsat,
        counterexample=check.model if check.is_sat else None,
        elapsed_seconds=elapsed,
        num_variables=check.num_variables,
        num_clauses=check.num_clauses,
        conflicts=check.conflicts,
        details={
            "bound_outcomes": list(precondition.bound_outcomes),
            "num_atoms": len(precondition.atoms),
        },
    )


def _pauli_parts(assertion: Assertion) -> list[PauliAssertion]:
    parts: list[PauliAssertion] = []

    def collect(node: Assertion) -> None:
        if isinstance(node, AndAssertion):
            for part in node.parts:
                collect(part)
        elif isinstance(node, PauliAssertion):
            parts.append(node)
        else:
            raise ValueError(
                "postconditions must be conjunctions of Pauli atoms for the compact route"
            )

    collect(assertion)
    return parts
