"""End-to-end verification of a Hoare triple (the program-logic route).

``compile_triple`` mirrors the first two of the three components of the tool
described in Section 6: the correctness-formula (here: the triple built by
:mod:`repro.verifier.programs`) and the VC generator (the compact symbolic wp
of :mod:`repro.vc.symbolic` plus the reduction of :mod:`repro.vc.reduction`).
The third component — the SMT checker — lives behind the engine's backends;
``verify_triple`` is kept as a thin backward-compatible shim that routes a
triple through :class:`repro.api.Engine`.
"""

from __future__ import annotations

from repro.classical.expr import BoolExpr
from repro.hoare.triple import HoareTriple
from repro.logic.assertion import AndAssertion, Assertion, PauliAssertion
from repro.vc.reduction import SpecAtom, reduce_to_classical
from repro.vc.symbolic import symbolic_wp
from repro.verifier.report import VerificationReport

__all__ = ["compile_triple", "verify_triple", "spec_atoms_from_assertion"]


def spec_atoms_from_assertion(assertion: Assertion) -> list[SpecAtom]:
    """Extract the Pauli atoms of a conjunction-of-atoms assertion."""
    atoms: list[SpecAtom] = []

    def collect(node: Assertion) -> None:
        if isinstance(node, AndAssertion):
            for part in node.parts:
                collect(part)
            return
        if isinstance(node, PauliAssertion):
            if len(node.expr.terms) != 1:
                raise ValueError("specification atoms must be single Pauli terms")
            term = node.expr.terms[0]
            atoms.append(SpecAtom(term.operator, term.phase, f"spec[{len(atoms)}]"))
            return
        raise ValueError(
            "pre/postconditions of QEC correctness formulas must be conjunctions of "
            f"Pauli atoms; found {type(node).__name__}"
        )

    collect(assertion)
    return atoms


def compile_triple(
    triple: HoareTriple,
    decoder_condition: BoolExpr | None = None,
) -> tuple[BoolExpr, dict]:
    """Reduce ``{A ∧ P_c} S {B}`` to a classical validity formula.

    The postcondition atoms are pushed backwards through the program with the
    compact symbolic wp and the entailment against the precondition atoms is
    reduced to a classical formula.  Returns ``(formula, details)`` where the
    formula is valid iff the triple holds and ``details`` records the wp
    statistics the legacy report exposed.
    """
    spec = spec_atoms_from_assertion(triple.precondition)
    postcondition_atoms = [
        assertion.expr for assertion in _pauli_parts(triple.postcondition)
    ]
    num_qubits = spec[0].operator.num_qubits
    precondition = symbolic_wp(triple.program, postcondition_atoms, num_qubits)
    formula = reduce_to_classical(
        spec,
        precondition,
        triple.classical_constraint,
        decoder_condition=decoder_condition,
    )
    details = {
        "bound_outcomes": list(precondition.bound_outcomes),
        "num_atoms": len(precondition.atoms),
    }
    return formula, details


def verify_triple(
    triple: HoareTriple,
    decoder_condition: BoolExpr | None = None,
) -> VerificationReport:
    """Verify ``{A ∧ P_c} S {B}`` and report the result.

    Backward-compatible shim over the task API: builds a
    :class:`~repro.api.ProgramTask`, runs it on a fresh engine and converts
    the :class:`~repro.api.Result` back to the legacy report type.
    """
    from repro.api.engine import Engine
    from repro.api.tasks import ProgramTask

    task = ProgramTask(triple=triple, decoder_condition=decoder_condition)
    return Engine().run(task).to_report()


def _pauli_parts(assertion: Assertion) -> list[PauliAssertion]:
    parts: list[PauliAssertion] = []

    def collect(node: Assertion) -> None:
        if isinstance(node, AndAssertion):
            for part in node.parts:
                collect(part)
        elif isinstance(node, PauliAssertion):
            parts.append(node)
        else:
            raise ValueError(
                "postconditions must be conjunctions of Pauli atoms for the compact route"
            )

    collect(assertion)
    return parts
