"""Reduction of QEC verification conditions to classical formulas (Section 5.1).

The entailment to discharge has the shape of Eqn. (8):

    (/\\_i g_i  /\\_j L_j)  /\\  P_c   |=   \\/_s  /\\_i (-1)^{phi_i(s,e)} P'_i

Three cases are handled, following the paper:

1. every derived body ``P'_i`` is one of the specification bodies — the
   entailment reduces to comparing phases;
2. all bodies commute — each ``P'_i`` is decomposed over the specification
   generators (Proposition 5.2), contributing the phase offset ``alpha_i``;
3. a non-commuting pair exists (non-Pauli errors) — the heuristic elimination
   multiplies derived generator atoms into the offending ones and drops the
   irreducible atom after checking that the remaining phases pair up, which
   reduces the condition to case 2.

The resulting classical formula uses the deterministic-syndrome Skolemization
discussed in :mod:`repro.verifier.encodings`: conditions coming from
*measurement* atoms pin the bound syndrome variables to the outcome the
errored state would produce, and appear as antecedents; conditions coming
from *postcondition* atoms are the correctness goals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classical.expr import BoolExpr, Implies, Not, bool_and
from repro.classical.parity import ParityExpr
from repro.pauli.group import StabilizerGroup
from repro.pauli.pauli import PauliOperator
from repro.pauli.scalar import SqrtTwoRational
from repro.vc.symbolic import DerivedAtom, SymbolicPrecondition

__all__ = ["ReductionError", "SpecAtom", "reduce_to_classical"]


class ReductionError(RuntimeError):
    """Raised when the syntactic reduction cannot handle the VC shape."""


@dataclass(frozen=True)
class SpecAtom:
    """One atom of the specified precondition: ``(-1)^phase operator``."""

    operator: PauliOperator
    phase: ParityExpr = ParityExpr.zero()
    label: str = ""


def _phase_condition(parity: ParityExpr) -> BoolExpr:
    """The classical condition ``parity == 0``."""
    return Not(parity.to_bool_expr())


def _decompose(spec_group: StabilizerGroup, spec_atoms: list[SpecAtom], body: PauliOperator):
    """Decompose ``body`` over the specification atoms, returning the induced phase."""
    decomposition = spec_group.decompose(body)
    if decomposition is None:
        return None
    coefficients, alpha = decomposition
    parity = ParityExpr(frozenset(), alpha)
    uses_logical = False
    for coefficient, atom in zip(coefficients, spec_atoms):
        if coefficient:
            parity = parity ^ atom.phase
            if atom.label.startswith("logical"):
                uses_logical = True
    return parity, uses_logical


def _eliminate_noncommuting(
    spec_group: StabilizerGroup,
    atoms: list[DerivedAtom],
) -> list[DerivedAtom]:
    """The heuristic of Section 5.1 case (3), for non-Pauli error locations.

    Derived atoms whose expression is a sum of Pauli terms (produced by T
    errors) or whose single body anti-commutes with some specification
    generator (H errors) cannot be decomposed.  Following steps (a)-(c) of
    the paper we multiply commuting derived atoms into them; whenever the
    product becomes a plain commuting Pauli the offending atom is replaced,
    and an atom that remains irreducible is dropped, which is justified by
    ``(P ∧ Q) ∨ (¬P ∧ Q) = Q`` for commuting ``P, Q`` — the join over the
    bound outcome of that atom's measurement covers both signs.
    """
    def is_reducible(atom: DerivedAtom) -> bool:
        return atom.is_single_pauli() and spec_group.commutes_with(atom.expr.terms[0].operator)

    reducible = [atom for atom in atoms if is_reducible(atom)]
    problematic = [atom for atom in atoms if not is_reducible(atom)]
    if not problematic:
        return atoms

    # Helpers are the measurement atoms themselves (step (a): the set G of
    # derived generators that differ from the specification ones).  A helper
    # that gets multiplied into another atom is *dropped* afterwards, which is
    # sound because dropping a measurement atom only weakens the antecedents —
    # the correctness goals must then hold for every value of its outcome bit.
    repaired: list[DerivedAtom] = []
    used_helpers: set[int] = set()
    helpers = [atom for atom in problematic if atom.origin == "measurement"]
    for atom in problematic:
        if id(atom) in used_helpers:
            continue
        if is_reducible(atom):
            repaired.append(atom)
            continue
        fixed = None
        for helper in list(reducible) + helpers:
            if helper is atom:
                continue
            product = (atom.expr * helper.expr).collect()
            if len(product.terms) == 1 and spec_group.commutes_with(product.terms[0].operator):
                fixed = DerivedAtom(product, atom.origin, atom.label + "*" + helper.label)
                if helper.origin == "measurement" and helper in problematic:
                    # A measurement atom used as a multiplier is dropped from
                    # the antecedents afterwards; it may be reused to repair
                    # several atoms (the paper multiplies one chosen g'_j onto
                    # every offending element).
                    used_helpers.add(id(helper))
                break
        if fixed is not None:
            repaired.append(fixed)
        elif atom.origin == "measurement":
            # Unfixable measurement atom: eliminate it.  Both of its branches
            # appear in the join ((P ∧ Q) ∨ (¬P ∧ Q) = Q for commuting P, Q),
            # so removing the antecedent is a sound weakening.
            continue
        else:
            raise ReductionError(
                f"postcondition atom {atom!r} cannot be made commuting by the heuristic"
            )
    return reducible + repaired


def reduce_to_classical(
    spec_atoms: list[SpecAtom],
    precondition: SymbolicPrecondition,
    classical_constraint: BoolExpr,
    decoder_condition: BoolExpr | None = None,
) -> BoolExpr:
    """Produce the classical formula whose validity implies the entailment.

    The formula has the shape ``(P_c ∧ P_f ∧ syndrome conditions) ->
    correctness conditions`` and is handed to ``repro.smt.check_valid``.
    """
    spec_group = StabilizerGroup([atom.operator for atom in spec_atoms])

    atoms = _eliminate_noncommuting(spec_group, precondition.atoms)

    antecedents: list[BoolExpr] = []
    goals: list[BoolExpr] = []
    for atom in atoms:
        if not atom.is_single_pauli():
            raise ReductionError(
                f"atom {atom!r} remains a sum of Paulis after the non-commuting elimination"
            )
        term = atom.expr.terms[0]
        term_phase = term.phase
        if not term.coefficient.is_one():
            # collect() normalises a flipped sign into a -1 coefficient; fold
            # it back into the symbolic phase here.
            if term.coefficient == SqrtTwoRational.from_int(-1):
                term_phase = term_phase.flipped()
            else:
                raise ReductionError(f"atom {atom!r} carries a non-unit coefficient")
        decomposition = _decompose(spec_group, spec_atoms, term.operator)
        if decomposition is None:
            raise ReductionError(
                f"body of atom {atom!r} is not generated by the specification atoms"
            )
        induced_phase, _uses_logical = decomposition
        condition = _phase_condition(term_phase ^ induced_phase)
        if atom.origin == "measurement":
            antecedents.append(condition)
        else:
            goals.append(condition)

    assumptions = [classical_constraint]
    if decoder_condition is not None:
        assumptions.append(decoder_condition)
    assumptions.extend(antecedents)
    if not goals:
        raise ReductionError("the verification condition has no correctness goals")
    return Implies(bool_and(assumptions), bool_and(goals))
