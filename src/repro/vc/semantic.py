"""Semantic (dense-matrix) entailment checking on small systems.

This is the ground truth the syntactic reduction is validated against in the
test suite, and the fallback the pipeline can use when the reduction reports
a shape it cannot handle.  The cost is exponential in the number of qubits
and in the number of classical variables enumerated, so it is only usable for
codes of Steane-code size.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.classical.expr import BoolExpr, evaluate
from repro.logic.assertion import Assertion
from repro.logic.subspace import subspace_contains

__all__ = ["semantic_entailment"]


def semantic_entailment(
    lhs: Assertion,
    rhs: Assertion,
    num_qubits: int,
    variables: list[str],
    classical_constraint: BoolExpr | None = None,
    fixed_values: dict[str, bool] | None = None,
) -> bool:
    """Check ``lhs |= rhs`` by enumerating classical memories.

    ``variables`` lists the boolean variables to enumerate; ``fixed_values``
    pins some of them.  Memories violating ``classical_constraint`` are
    skipped (they make the embedded boolean antecedent the null space, where
    the entailment holds trivially).
    """
    fixed = dict(fixed_values or {})
    free = [name for name in variables if name not in fixed]
    for bits in product([False, True], repeat=len(free)):
        memory = dict(fixed)
        memory.update(dict(zip(free, bits)))
        if classical_constraint is not None and not evaluate(classical_constraint, memory):
            continue
        lhs_projector = lhs.to_projector(memory, num_qubits)
        rhs_projector = rhs.to_projector(memory, num_qubits)
        if not subspace_contains(rhs_projector, lhs_projector):
            return False
    return True
