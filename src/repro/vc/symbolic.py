"""The compact syndrome-branch form of QEC weakest preconditions (Eqn. 8).

Expanding the (Meas) rule literally doubles the assertion per measurement,
which is hopeless for codes with dozens of stabilizers.  For the QEC program
shape of Table 1 — unitaries, conditional Pauli errors, classical and decoder
assignments, Pauli measurements, conditional Pauli corrections — the
disjuncts produced by the measurements differ only in the phases of the same
Pauli atoms, so the whole precondition can be kept in the form

    \\/_{s in {0,1}^m}  /\\_i  (-1)^{phase_i(s, e, corrections)}  body_i

where the ``s`` are the bound measurement outcomes.  ``symbolic_wp`` computes
exactly that form by one backward pass, tagging every atom with its origin
(postcondition or measurement) so the reduction step can separate the
syndrome-determining conditions from the correctness goals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classical.expr import BoolExpr, Expr
from repro.classical.parity import ParityExpr
from repro.hoare.wp import decoder_output_expr
from repro.lang.ast import (
    Assign,
    AssignDecoder,
    ConditionalGate,
    ConditionalPauli,
    Measure,
    Seq,
    Skip,
    Statement,
    Unitary,
)
from repro.pauli.expr import PauliExpr

__all__ = ["DerivedAtom", "SymbolicPrecondition", "symbolic_wp"]


@dataclass
class DerivedAtom:
    """One Pauli atom of the syndrome-branch form, with its provenance."""

    expr: PauliExpr
    origin: str  # "postcondition" or "measurement"
    label: str = ""

    def is_single_pauli(self) -> bool:
        return len(self.expr.terms) == 1

    def __repr__(self) -> str:
        return f"{self.label or self.origin}: {self.expr!r}"


@dataclass
class SymbolicPrecondition:
    """``\\/_{bound outcomes} /\\ atoms`` — the shape of Eqn. (8)."""

    num_qubits: int
    atoms: list[DerivedAtom] = field(default_factory=list)
    bound_outcomes: list[str] = field(default_factory=list)

    def measurement_atoms(self) -> list[DerivedAtom]:
        return [atom for atom in self.atoms if atom.origin == "measurement"]

    def postcondition_atoms(self) -> list[DerivedAtom]:
        return [atom for atom in self.atoms if atom.origin == "postcondition"]


class _BackwardTransformer:
    """Backward pass computing the compact weakest precondition."""

    def __init__(self, num_qubits: int, postcondition_atoms: list[PauliExpr]):
        self.num_qubits = num_qubits
        self.atoms: list[DerivedAtom] = [
            DerivedAtom(expr, "postcondition", f"post[{index}]")
            for index, expr in enumerate(postcondition_atoms)
        ]
        self.bound_outcomes: list[str] = []
        self._rename_counter: dict[str, int] = {}
        self._decoder_calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    def result(self) -> SymbolicPrecondition:
        return SymbolicPrecondition(self.num_qubits, self.atoms, self.bound_outcomes)

    def process(self, statement: Statement) -> None:
        if isinstance(statement, Skip):
            return
        if isinstance(statement, Seq):
            for inner in reversed(statement.statements):
                self.process(inner)
            return
        if isinstance(statement, Unitary):
            self._map_atoms(lambda e: e.apply_gate(statement.gate, statement.qubits, "backward"))
            return
        if isinstance(statement, ConditionalPauli):
            condition = ParityExpr.from_bool_expr(statement.condition)
            self._map_atoms(
                lambda e: e.apply_conditional_pauli(statement.qubit, statement.pauli, condition)
            )
            return
        if isinstance(statement, ConditionalGate):
            raise NotImplementedError(
                "conditional non-Pauli errors are outside the compact form; "
                "use hoare.weakest_precondition or place the error unconditionally"
            )
        if isinstance(statement, Assign):
            self._substitute(statement.name, statement.expr)
            return
        if isinstance(statement, AssignDecoder):
            call_index = self._decoder_calls.get(statement.function, 0)
            self._decoder_calls[statement.function] = call_index + 1
            suffix = "" if call_index == 0 else f"@{call_index}"
            for output_index, target in enumerate(statement.targets):
                replacement = decoder_output_expr(
                    statement.function + suffix, output_index + 1, statement.arguments
                )
                self._substitute(target, replacement)
            return
        if isinstance(statement, Measure):
            self._measure(statement)
            return
        raise NotImplementedError(
            f"statement {type(statement).__name__} is outside the QEC program shape "
            "handled by the compact VC generator"
        )

    # ------------------------------------------------------------------
    def _map_atoms(self, transform) -> None:
        for atom in self.atoms:
            atom.expr = transform(atom.expr)

    def _substitute(self, name: str, replacement: Expr | BoolExpr) -> None:
        mapping = {name: replacement}
        self._map_atoms(lambda e: e.substitute_classical(mapping))

    def _measure(self, statement: Measure) -> None:
        outcome = statement.target
        if outcome in self.bound_outcomes:
            # The variable is reassigned by an earlier (in program order)
            # measurement; rename the existing bound occurrences first.
            fresh = self._fresh_name(outcome)
            self._substitute(outcome, ParityExpr.of_variable(fresh))
            self.bound_outcomes = [
                fresh if name == outcome else name for name in self.bound_outcomes
            ]
        phase = statement.phase ^ ParityExpr.of_variable(outcome)
        atom = PauliExpr.atom(statement.observable, phase)
        self.atoms.append(DerivedAtom(atom, "measurement", f"meas[{outcome}]"))
        self.bound_outcomes.append(outcome)

    def _fresh_name(self, base: str) -> str:
        count = self._rename_counter.get(base, 0) + 1
        self._rename_counter[base] = count
        return f"{base}@{count}"


def symbolic_wp(
    program: Statement,
    postcondition_atoms: list[PauliExpr],
    num_qubits: int,
) -> SymbolicPrecondition:
    """Compute the compact weakest precondition of a QEC-shaped program.

    ``postcondition_atoms`` are the Pauli atoms of the postcondition (their
    conjunction); the classical part of pre/postconditions is handled by the
    reduction step, not here.
    """
    transformer = _BackwardTransformer(num_qubits, list(postcondition_atoms))
    transformer.process(program)
    return transformer.result()
