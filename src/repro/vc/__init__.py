"""Verification-condition generation and reduction (Section 5)."""

from repro.vc.symbolic import SymbolicPrecondition, DerivedAtom, symbolic_wp
from repro.vc.reduction import reduce_to_classical, ReductionError
from repro.vc.semantic import semantic_entailment
from repro.vc.pipeline import verify_triple

__all__ = [
    "SymbolicPrecondition",
    "DerivedAtom",
    "symbolic_wp",
    "reduce_to_classical",
    "ReductionError",
    "semantic_entailment",
    "verify_triple",
]
