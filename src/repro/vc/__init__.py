"""Verification-condition generation and reduction (Section 5)."""

from repro.vc.pipeline import verify_triple
from repro.vc.reduction import ReductionError, reduce_to_classical
from repro.vc.semantic import semantic_entailment
from repro.vc.symbolic import DerivedAtom, SymbolicPrecondition, symbolic_wp

__all__ = [
    "SymbolicPrecondition",
    "DerivedAtom",
    "symbolic_wp",
    "reduce_to_classical",
    "ReductionError",
    "semantic_entailment",
    "verify_triple",
]
