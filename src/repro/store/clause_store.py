"""A persistent, concurrency-safe learnt-clause store over sqlite.

Design (ROADMAP item 4 — durable shared verification state):

* **Keying.**  Exact reuse is keyed by the session's CNF fingerprint
  (sha256 over variable count + clause list), the same safety condition the
  JSON ``SessionCache`` used: a learnt clause is only a consequence of the
  exact clause database it was learnt against.  Every row additionally
  carries a checksum binding ``(fingerprint, clause)``, so a torn write or a
  bit-flipped row is *dropped on load* instead of being absorbed — corrupted
  state can degrade the cache, never the verdict.

* **Family index.**  Alongside the exact entries, learnt clauses that
  project onto *named* literals (shared error indicators) are recorded under
  the owning code's family.  A sibling lookup returns those projections as
  *candidates only*: the caller re-proves each one by entailment under its
  own encoding before attachment (``CodeContext.absorb_from_store``), so
  foreign clauses are verified, never trusted.

* **Eviction.**  The store is size-bounded; when an upsert pushes it over
  budget the worst clauses go first — highest LBD, then least recently
  used — mirroring the in-solver reduction policy.

* **Concurrency.**  WAL journaling plus a busy timeout makes the store safe
  to share between threads, engine lanes, pool workers and service replicas
  on one host; every mutation is a single transaction of atomic upserts.
  Connections are cached per (pid, thread) and never cross a fork.

* **Checkpoints.**  Small checksummed JSON blobs keyed by a semantic task
  hash persist a distance walk's bracket so a killed job resumes instead of
  restarting (engine side: ``Engine._run_distance``).

* **Circuit breaker.**  Graceful degradation alone still pays a sqlite
  connect-and-fail (10s busy timeout included) on *every* call against a
  sick disk.  After ``breaker_threshold`` consecutive storage failures the
  breaker *opens*: calls short-circuit to the degraded path without touching
  sqlite.  After ``breaker_cooldown`` seconds one call is let through as a
  *half-open* recovery probe — success closes the breaker, failure re-opens
  it for another cooldown.  Transitions flow through the stats chain
  (``breaker_state`` / ``breaker_opened`` / ``breaker_short_circuited``).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time

from repro import faults

__all__ = ["STORE_FILENAME", "ClauseStore", "has_store", "load_clauses", "merge_clauses"]

STORE_FILENAME = "clauses.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS clauses (
    fingerprint TEXT    NOT NULL,
    clause      TEXT    NOT NULL,
    checksum    TEXT    NOT NULL,
    lbd         INTEGER NOT NULL,
    size        INTEGER NOT NULL,
    created     REAL    NOT NULL,
    last_used   REAL    NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (fingerprint, clause)
);
CREATE INDEX IF NOT EXISTS clauses_eviction ON clauses (lbd DESC, last_used ASC);
CREATE TABLE IF NOT EXISTS named_clauses (
    family      TEXT    NOT NULL,
    fingerprint TEXT    NOT NULL,
    clause      TEXT    NOT NULL,
    checksum    TEXT    NOT NULL,
    lbd         INTEGER NOT NULL,
    updated     REAL    NOT NULL,
    PRIMARY KEY (family, fingerprint, clause)
);
CREATE INDEX IF NOT EXISTS named_by_family ON named_clauses (family, lbd ASC);
CREATE TABLE IF NOT EXISTS checkpoints (
    key      TEXT PRIMARY KEY,
    payload  TEXT NOT NULL,
    checksum TEXT NOT NULL,
    updated  REAL NOT NULL
);
"""


def _row_checksum(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x1f")
    return digest.hexdigest()[:16]


def _canonical_clause(clause) -> list[int]:
    literals = sorted({int(lit) for lit in clause})
    if not literals or any(lit == 0 for lit in literals):
        raise ValueError("malformed clause")
    return literals


class ClauseStore:
    """Persistent learnt-clause + checkpoint store shared across processes.

    Implements the ``SessionCache`` protocol (``load`` / ``store`` /
    ``hits`` / ``misses`` / ``directory``) so it drops into the existing
    warm-start plumbing of :class:`repro.api.resources.ResourceManager`,
    and extends it with LBD-aware metadata, family candidates and
    checkpoints.  All public methods degrade gracefully on storage errors:
    a broken database behaves like an empty cache and is counted in
    ``storage_errors``, never raised into a solve.
    """

    def __init__(
        self,
        directory: str,
        max_clauses: int = 200_000,
        max_named: int = 20_000,
        *,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        clock=time.monotonic,
    ):
        self.directory = str(directory)
        self.path = os.path.join(self.directory, STORE_FILENAME)
        self.max_clauses = max_clauses
        self.max_named = max_named
        #: consecutive storage failures that open the circuit breaker
        self.breaker_threshold = max(1, int(breaker_threshold))
        #: seconds the breaker stays open before a half-open recovery probe
        self.breaker_cooldown = float(breaker_cooldown)
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evictions = 0
        self.corrupt_dropped = 0
        self.storage_errors = 0
        self.family_queries = 0
        self.family_served = 0
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        self.checkpoints_saved = 0
        self.breaker_opened = 0
        self.breaker_short_circuited = 0
        self._clock = clock
        self._breaker_state = "closed"
        self._breaker_failures = 0
        self._breaker_opened_at = 0.0
        self._local = threading.local()
        self._pid = os.getpid()
        self._broken = False
        self._fault = faults.hook("store")
        os.makedirs(self.directory, exist_ok=True)
        self._init_schema()

    # ------------------------------------------------------------------
    # Circuit breaker (consecutive failures → open → half-open probes)
    # ------------------------------------------------------------------
    def _breaker_allows(self) -> bool:
        """Whether sqlite may be touched right now.

        Open + cooldown still running → short-circuit (the call degrades
        exactly like a broken store, without paying the sqlite attempt);
        cooldown elapsed → transition to half-open and admit the call as a
        recovery probe.
        """
        if self._breaker_state == "closed":
            return True
        if self._breaker_state == "open":
            if self._clock() - self._breaker_opened_at < self.breaker_cooldown:
                self.breaker_short_circuited += 1
                return False
            self._breaker_state = "half-open"
        return True

    def _storage_failure(self) -> None:
        """Count a storage error and advance the breaker state machine."""
        self.storage_errors += 1
        self._breaker_failures += 1
        if self._breaker_state == "half-open" or (
            self._breaker_state == "closed"
            and self._breaker_failures >= self.breaker_threshold
        ):
            self._breaker_state = "open"
            self._breaker_opened_at = self._clock()
            self.breaker_opened += 1

    def _storage_ok(self) -> None:
        """A sqlite operation succeeded: close the breaker, reset the streak."""
        if self._breaker_failures or self._breaker_state != "closed":
            self._breaker_failures = 0
            self._breaker_state = "closed"

    def _check_fault(self, op: str, detail: str = "") -> None:
        """Raise an injected ``sqlite3.OperationalError`` when the armed
        fault plan fires ``store.<op>`` (delay-mode rules sleep inside
        ``fire``, modeling a slow disk).  Called inside the operation's
        try block so injected faults flow through the exact degradation
        path a real sqlite error would."""
        if self._fault is not None and self._fault.fire(op, detail) is not None:
            raise sqlite3.OperationalError(f"injected store fault ({op})")

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection | None:
        if self._broken:
            return None
        if not self._breaker_allows():
            return None
        if os.getpid() != self._pid:
            # Forked child: the inherited connection (and thread-local slot)
            # must never be reused across the fork boundary.
            self._pid = os.getpid()
            self._local = threading.local()
        conn = getattr(self._local, "conn", None)
        if conn is None:
            try:
                conn = sqlite3.connect(self.path, timeout=10.0)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute("PRAGMA busy_timeout=10000")
            except sqlite3.Error:
                self._storage_failure()
                return None
            self._local.conn = conn
        return conn

    def _init_schema(self) -> None:
        for attempt in (0, 1):
            conn = self._connect()
            if conn is not None:
                try:
                    with conn:
                        conn.executescript(_SCHEMA)
                    return
                except sqlite3.Error:
                    self._storage_failure()
                    self._local = threading.local()
            if attempt == 0:
                # Whatever sits at the path is not a usable database (torn
                # write, foreign content).  Quarantine it and start fresh —
                # the store is a cache, losing it is safe.
                try:
                    os.replace(self.path, self.path + ".corrupt")
                except OSError:
                    break
        self._broken = True

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:
                pass
            self._local.conn = None

    # ------------------------------------------------------------------
    # SessionCache protocol: exact-fingerprint clause reuse
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> list[list[int]] | None:
        """Learnt clauses previously stored for this exact CNF, or ``None``.

        Rows failing their checksum (torn or tampered writes) are dropped
        from the result and deleted, so corruption can only ever cost cache
        coverage — callers still gate absorption on the fingerprint match.
        """
        conn = self._connect()
        if conn is None:
            self.misses += 1
            return None
        try:
            self._check_fault("read", fingerprint)
            rows = conn.execute(
                "SELECT clause, checksum FROM clauses WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchall()
        except sqlite3.Error:
            self._storage_failure()
            self.misses += 1
            return None
        self._storage_ok()
        if not rows:
            self.misses += 1
            return None
        clauses = []
        bad = []
        for text, checksum in rows:
            if checksum != _row_checksum(fingerprint, text):
                bad.append(text)
                continue
            try:
                clause = _canonical_clause(json.loads(text))
            except (ValueError, TypeError):
                bad.append(text)
                continue
            clauses.append(clause)
        try:
            with conn:
                if bad:
                    conn.executemany(
                        "DELETE FROM clauses WHERE fingerprint = ? AND clause = ?",
                        [(fingerprint, text) for text in bad],
                    )
                if clauses:
                    conn.execute(
                        "UPDATE clauses SET hits = hits + 1, last_used = ? "
                        "WHERE fingerprint = ?",
                        (time.time(), fingerprint),
                    )
        except sqlite3.Error:
            self._storage_failure()
        self.corrupt_dropped += len(bad)
        if not clauses:
            self.misses += 1
            return None
        self.hits += 1
        return clauses

    def store(self, fingerprint: str, learnt) -> None:
        """SessionCache-compatible write: LBD defaults to the clause length."""
        self.store_meta(fingerprint, [(clause, len(clause)) for clause in learnt])

    def store_meta(
        self,
        fingerprint: str,
        clauses,
        family: str = "",
        named=(),
    ) -> None:
        """Merge learnt clauses (with LBD) and optional family candidates.

        ``clauses`` is an iterable of ``(literal_list, lbd)``; ``named`` an
        iterable of ``(((name, value), ...), lbd)`` projections onto named
        literals, indexed under ``family`` for sibling transfer.  Upserts
        keep the best (lowest) LBD seen for a clause; the whole merge is one
        transaction, so concurrent writers interleave atomically.
        """
        conn = self._connect()
        if conn is None:
            return
        now = time.time()
        clause_rows = []
        for clause, lbd in clauses:
            try:
                literals = _canonical_clause(clause)
            except (ValueError, TypeError):
                continue
            text = json.dumps(literals, separators=(",", ":"))
            clause_rows.append(
                (fingerprint, text, _row_checksum(fingerprint, text), int(lbd), len(literals), now, now)
            )
        named_rows = []
        if family:
            for projection, lbd in named:
                pairs = sorted((str(name), bool(value)) for name, value in projection)
                text = json.dumps(pairs, separators=(",", ":"))
                named_rows.append(
                    (family, fingerprint, text, _row_checksum(family, fingerprint, text), int(lbd), now)
                )
        if not clause_rows and not named_rows:
            return
        try:
            self._check_fault("write", fingerprint)
            with conn:
                if clause_rows:
                    conn.executemany(
                        "INSERT INTO clauses (fingerprint, clause, checksum, lbd, size, created, last_used) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?) "
                        "ON CONFLICT (fingerprint, clause) DO UPDATE SET "
                        "lbd = MIN(lbd, excluded.lbd), last_used = excluded.last_used",
                        clause_rows,
                    )
                if named_rows:
                    conn.executemany(
                        "INSERT INTO named_clauses (family, fingerprint, clause, checksum, lbd, updated) "
                        "VALUES (?, ?, ?, ?, ?, ?) "
                        "ON CONFLICT (family, fingerprint, clause) DO UPDATE SET "
                        "lbd = MIN(lbd, excluded.lbd), updated = excluded.updated",
                        named_rows,
                    )
            self._storage_ok()
            self.stored += len(clause_rows)
            self._evict(conn)
        except sqlite3.Error:
            self._storage_failure()

    def _evict(self, conn: sqlite3.Connection) -> None:
        """Trim both clause tables to budget: worst LBD first, then oldest."""
        try:
            with conn:
                (count,) = conn.execute("SELECT COUNT(*) FROM clauses").fetchone()
                excess = count - self.max_clauses
                if excess > 0:
                    conn.execute(
                        "DELETE FROM clauses WHERE rowid IN ("
                        "SELECT rowid FROM clauses ORDER BY lbd DESC, last_used ASC, rowid ASC LIMIT ?)",
                        (excess,),
                    )
                    self.evictions += excess
                (count,) = conn.execute("SELECT COUNT(*) FROM named_clauses").fetchone()
                excess = count - self.max_named
                if excess > 0:
                    conn.execute(
                        "DELETE FROM named_clauses WHERE rowid IN ("
                        "SELECT rowid FROM named_clauses ORDER BY lbd DESC, updated ASC, rowid ASC LIMIT ?)",
                        (excess,),
                    )
                    self.evictions += excess
        except sqlite3.Error:
            self._storage_failure()

    # ------------------------------------------------------------------
    # Family-aware secondary index
    # ------------------------------------------------------------------
    def family_candidates(
        self, family: str, exclude_fingerprint: str = "", limit: int = 256
    ) -> list[list[tuple[str, bool]]]:
        """Named-literal clause candidates learnt by sibling fingerprints.

        Best (lowest-LBD) candidates first.  These are *hints*, not facts:
        the caller must re-prove each projection by entailment against its
        own encoding before attaching anything.
        """
        self.family_queries += 1
        conn = self._connect()
        if not family or conn is None:
            return []
        try:
            self._check_fault("read", f"family:{family}")
            rows = conn.execute(
                "SELECT DISTINCT clause FROM named_clauses "
                "WHERE family = ? AND fingerprint != ? ORDER BY lbd ASC, updated DESC LIMIT ?",
                (family, exclude_fingerprint, limit),
            ).fetchall()
        except sqlite3.Error:
            self._storage_failure()
            return []
        self._storage_ok()
        candidates = []
        for (text,) in rows:
            try:
                pairs = [(str(name), bool(value)) for name, value in json.loads(text)]
            except (ValueError, TypeError):
                self.corrupt_dropped += 1
                continue
            if pairs:
                candidates.append(pairs)
        self.family_served += len(candidates)
        return candidates

    # ------------------------------------------------------------------
    # Checkpoints (resumable distance walks)
    # ------------------------------------------------------------------
    def checkpoint_save(self, key: str, payload: dict) -> None:
        """Atomically upsert a checkpoint blob; the checksum makes torn or
        tampered payloads detectable on load (same discipline as the
        temp-file + ``os.replace`` JSON caches)."""
        conn = self._connect()
        if conn is None:
            return
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            self._check_fault("write", key)
            with conn:
                conn.execute(
                    "INSERT INTO checkpoints (key, payload, checksum, updated) VALUES (?, ?, ?, ?) "
                    "ON CONFLICT (key) DO UPDATE SET payload = excluded.payload, "
                    "checksum = excluded.checksum, updated = excluded.updated",
                    (key, text, _row_checksum(key, text), time.time()),
                )
            self._storage_ok()
            self.checkpoints_saved += 1
        except sqlite3.Error:
            self._storage_failure()

    def checkpoint_load(self, key: str) -> dict | None:
        conn = self._connect()
        if conn is None:
            self.checkpoint_misses += 1
            return None
        try:
            self._check_fault("read", key)
            row = conn.execute(
                "SELECT payload, checksum FROM checkpoints WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            self._storage_failure()
            self.checkpoint_misses += 1
            return None
        self._storage_ok()
        if row is None:
            self.checkpoint_misses += 1
            return None
        text, checksum = row
        payload = None
        if checksum == _row_checksum(key, text):
            try:
                payload = json.loads(text)
            except ValueError:
                payload = None
        if not isinstance(payload, dict):
            self.corrupt_dropped += 1
            self.checkpoint_misses += 1
            self.checkpoint_delete(key)
            return None
        self.checkpoint_hits += 1
        return payload

    def checkpoint_delete(self, key: str) -> None:
        conn = self._connect()
        if conn is None:
            return
        try:
            with conn:
                conn.execute("DELETE FROM checkpoints WHERE key = ?", (key,))
        except sqlite3.Error:
            self._storage_failure()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clause_count(self) -> int:
        conn = self._connect()
        if conn is None:
            return 0
        try:
            (count,) = conn.execute("SELECT COUNT(*) FROM clauses").fetchone()
            return int(count)
        except sqlite3.Error:
            self._storage_failure()
            return 0

    def stats(self) -> dict:
        """Per-instance counters (process-local, not database-wide totals)."""
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "evictions": self.evictions,
        }
        for key in (
            "corrupt_dropped",
            "storage_errors",
            "family_queries",
            "family_served",
            "checkpoint_hits",
            "checkpoint_misses",
            "checkpoints_saved",
            "breaker_opened",
            "breaker_short_circuited",
        ):
            value = getattr(self, key)
            if value:
                stats[key] = value
        if self.breaker_opened:
            # Once the breaker has ever tripped, keep reporting its live
            # state so an operator (or the chaos test) can watch it re-close.
            stats["breaker_state"] = self._breaker_state
        return stats


# ----------------------------------------------------------------------
# Worker-side helpers: the process-pool init payload carries only the cache
# *directory* (a string), so workers probe for the sqlite store by filename
# and fall back to the JSON layout when it is absent.
# ----------------------------------------------------------------------
_WORKER_STORES: dict[tuple[int, str], ClauseStore] = {}


def has_store(directory: str) -> bool:
    """Whether ``directory`` holds a sqlite clause store (vs JSON warm files)."""
    return os.path.isfile(os.path.join(directory, STORE_FILENAME))


def _worker_store(directory: str) -> ClauseStore:
    key = (os.getpid(), os.path.realpath(directory))
    store = _WORKER_STORES.get(key)
    if store is None:
        store = ClauseStore(directory)
        _WORKER_STORES[key] = store
    return store


def load_clauses(directory: str, fingerprint: str) -> list[list[int]] | None:
    """Exact-fingerprint load for pool workers (no api-layer imports)."""
    return _worker_store(directory).load(fingerprint)


def merge_clauses(directory: str, fingerprint: str, clauses) -> None:
    """Merge a worker's learnt clauses back into the shared store."""
    _worker_store(directory).store(fingerprint, clauses)
