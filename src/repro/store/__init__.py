"""Durable, shared verification state: the persistent clause store.

``repro.store`` turns the per-run JSON warm cache of the task API into
long-lived infrastructure: a concurrency-safe sqlite database of learnt
clauses keyed by CNF fingerprint, with LBD/age/hit metadata, size-bounded
eviction, a family-aware secondary index for cross-code transfer, and
checkpoint blobs that make distance walks resumable after a kill.

The package is deliberately stdlib-only and imports nothing from the api
layer, so process-pool workers (:mod:`repro.smt.parallel`) can use it from
their init payloads without dragging the engine into every worker.
"""

from repro.store.clause_store import (
    STORE_FILENAME,
    ClauseStore,
    has_store,
    load_clauses,
    merge_clauses,
)

__all__ = [
    "STORE_FILENAME",
    "ClauseStore",
    "has_store",
    "load_clauses",
    "merge_clauses",
]
