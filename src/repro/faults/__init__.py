"""Deterministic fault injection: failure as a first-class, testable input.

``REPRO_FAULT_PLAN`` (inline JSON, or a path to a JSON file) arms a seeded
:class:`FaultPlan` of scoped injection points; :class:`~repro.api.engine.Engine`
accepts the same spec through ``fault_plan=``.  Each *fault point* names a
place in the stack where the plan can deterministically misbehave:

==================  ========================================================
``store.read``      a clause-store read raises ``sqlite3.OperationalError``
``store.write``     a clause-store write raises ``sqlite3.OperationalError``
``lane.crash``      a dispatcher lane thread dies mid-job (BaseException
                    that escapes the per-job guard, exercising the lane
                    supervisor)
``pool.kill``       every worker of a live split-session pool is SIGKILLed
                    (exercising the pool rebuild-and-retry path)
``socket.reset``    the server aborts a chunked NDJSON stream mid-flight
``socket.truncate`` the server closes a chunked stream without the final
                    ``0\\r\\n\\r\\n`` chunk
``loop.stall``      the server's event loop blocks for ``delay`` seconds
                    (the bug class the sanitize watchdog counts)
==================  ========================================================

The plan spec is ``{"seed": int?, "log": path?, "faults": [rule, ...]}``
where each rule is::

    {"point": "store.write",   # which fault point
     "times": 3,               # fire on this many matching hits (default 1)
     "after": 0,               # skip this many matching hits first
     "delay": 0.0,             # seconds to sleep when firing
     "mode": "error",          # "error" (default) or "delay" (sleep only;
                               # inferred when only "delay" is given)
     "match": "",              # substring the hit detail must contain
     "probability": 1.0}       # per-hit firing odds, decided by the seeded
                               # RNG (deterministic for a fixed seed + hit
                               # sequence)

Zero cost when disarmed, mirroring :mod:`repro.sanitize`: every call site
holds ``self._fault = faults.hook("<scope>")`` which is ``None`` without an
armed plan targeting that scope, so the production hot path pays one
attribute load and a ``None`` check.  Firing decisions are counter-based
(``after``/``times`` over the per-rule hit sequence), so a fixed plan against
a deterministic workload injects the same faults at the same places on every
run — the property the chaos tests and the CI ``chaos-smoke`` job rely on.

Every firing is recorded on :attr:`FaultPlan.fired` and appended (one JSON
object per line) to the plan's ``log`` file when configured, so a chaos run
leaves an auditable trail of exactly which faults struck where.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

__all__ = [
    "ENV_PLAN",
    "FaultHook",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedLaneCrash",
    "active",
    "disarm",
    "enabled",
    "hook",
    "install",
]

ENV_PLAN = "REPRO_FAULT_PLAN"


class InjectedFault(Exception):
    """A failure injected by the armed :class:`FaultPlan`."""


class InjectedLaneCrash(BaseException):
    """An injected lane-thread death.

    Deliberately a ``BaseException``: it must escape the dispatcher's
    per-job ``except Exception`` guard (which maps execution errors to
    ``JobFailed`` and keeps the lane alive) so the *lane supervisor* path —
    crashed thread, stranded heap — is what gets exercised.
    """


class FaultRule:
    """One injection rule: a fault point plus its firing schedule."""

    __slots__ = (
        "point", "times", "after", "delay", "mode", "match", "probability",
        "hits", "fired",
    )

    def __init__(
        self,
        point: str,
        *,
        times: int = 1,
        after: int = 0,
        delay: float = 0.0,
        mode: str | None = None,
        match: str = "",
        probability: float = 1.0,
    ):
        if not point or "." not in point:
            raise ValueError(f"fault point must look like 'scope.op', got {point!r}")
        if mode is None:
            mode = "delay" if delay else "error"
        if mode not in ("error", "delay"):
            raise ValueError(f"fault mode must be 'error' or 'delay', got {mode!r}")
        self.point = point
        self.times = int(times)
        self.after = int(after)
        self.delay = float(delay)
        self.mode = mode
        self.match = str(match)
        self.probability = float(probability)
        self.hits = 0
        self.fired = 0

    def to_dict(self) -> dict:
        return {
            "point": self.point, "times": self.times, "after": self.after,
            "delay": self.delay, "mode": self.mode, "match": self.match,
            "probability": self.probability, "hits": self.hits,
            "fired": self.fired,
        }


class FaultPlan:
    """A seeded, counter-scheduled set of :class:`FaultRule` injections.

    Thread-safe: hit counters and the firing log are guarded by one lock
    (rules fire from lane threads, the event loop and client threads alike);
    the optional ``delay`` sleep happens outside it.
    """

    def __init__(
        self,
        faults,
        *,
        seed: int = 0,
        log_path: str | None = None,
    ):
        self.rules: list[FaultRule] = []
        for rule in faults:
            self.rules.append(rule if isinstance(rule, FaultRule) else FaultRule(
                rule["point"],
                times=rule.get("times", 1),
                after=rule.get("after", 0),
                delay=rule.get("delay", 0.0),
                mode=rule.get("mode"),
                match=rule.get("match", ""),
                probability=rule.get("probability", 1.0),
            ))
        self.seed = int(seed)
        self.log_path = log_path
        #: every firing, in order: {"seq", "point", "detail", "hit", "mode"}
        self.fired: list[dict] = []
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec) -> "FaultPlan":
        """Build a plan from a dict, inline JSON text, or a JSON file path."""
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, str):
            text = spec.strip()
            if not text.startswith("{"):
                with open(text, "r", encoding="utf-8") as handle:
                    text = handle.read()
            spec = json.loads(text)
        if not isinstance(spec, dict):
            raise ValueError("a fault plan spec must be a JSON object")
        return cls(
            spec.get("faults", ()),
            seed=spec.get("seed", 0),
            log_path=spec.get("log"),
        )

    # ------------------------------------------------------------------
    def targets(self, scope: str) -> bool:
        """Whether any rule targets a point under ``scope`` (e.g. "store")."""
        prefix = scope + "."
        return any(rule.point.startswith(prefix) for rule in self.rules)

    def fire(self, point: str, detail: str = "") -> FaultRule | None:
        """Count a hit on ``point``; return the rule to enact, if one fires.

        Delay-mode rules sleep here and keep evaluating (latency composes
        with errors); the first error-mode rule that fires is returned for
        the call site to enact.  ``None`` means proceed normally.
        """
        error_rule: FaultRule | None = None
        sleep_for = 0.0
        with self._lock:
            for rule in self.rules:
                if rule.point != point:
                    continue
                if rule.match and rule.match not in detail:
                    continue
                hit = rule.hits
                rule.hits += 1
                if hit < rule.after or rule.fired >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                self._record(rule, detail, hit)
                sleep_for += rule.delay
                if rule.mode == "error" and error_rule is None:
                    error_rule = rule
        if sleep_for > 0.0:
            time.sleep(sleep_for)
        return error_rule

    def _record(self, rule: FaultRule, detail: str, hit: int) -> None:
        record = {
            "seq": len(self.fired), "point": rule.point, "detail": detail,
            "hit": hit, "mode": rule.mode, "delay": rule.delay,
        }
        self.fired.append(record)
        if self.log_path:
            try:
                with open(self.log_path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            except OSError:
                # The log is an audit trail, not a dependency: a chaos run on
                # a read-only filesystem still injects, it just logs less.
                self.log_path = None

    def stats(self) -> dict:
        """Plan counters: per-rule hit/fired totals plus the firing count."""
        with self._lock:
            return {
                "seed": self.seed,
                "fired": len(self.fired),
                "rules": [rule.to_dict() for rule in self.rules],
            }


class FaultHook:
    """A call site's handle on the armed plan, scoped to one point prefix."""

    __slots__ = ("scope", "plan")

    def __init__(self, scope: str, plan: FaultPlan):
        self.scope = scope
        self.plan = plan

    def fire(self, op: str, detail: str = "") -> FaultRule | None:
        return self.plan.fire(f"{self.scope}.{op}", detail)


def _plan_from_env() -> FaultPlan | None:
    spec = os.environ.get(ENV_PLAN, "").strip()
    if not spec:
        return None
    return FaultPlan.parse(spec)


_PLAN: FaultPlan | None = _plan_from_env()


def enabled() -> bool:
    """Whether a fault plan is armed (module function, monkeypatchable)."""
    return _PLAN is not None


def active() -> FaultPlan | None:
    """The armed plan, or None."""
    return _PLAN


def install(plan) -> FaultPlan:
    """Arm ``plan`` (a :class:`FaultPlan`, dict spec, JSON text or path)
    process-wide; returns the installed plan.  Objects built *after* the
    install pick up their hooks; existing objects keep their (None) hooks —
    the same construct-after-arming discipline as ``repro.sanitize``."""
    global _PLAN
    _PLAN = FaultPlan.parse(plan)
    return _PLAN


def disarm() -> None:
    """Disarm fault injection (hooks created afterwards are None again)."""
    global _PLAN
    _PLAN = None


def hook(scope: str) -> FaultHook | None:
    """A :class:`FaultHook` when an armed plan targets ``scope``, else None.

    The None case is the entire disarmed cost: call sites keep the result
    on an attribute and guard with ``if self._fault is not None``.
    """
    plan = _PLAN
    if plan is None or not plan.targets(scope):
        return None
    return FaultHook(scope, plan)
