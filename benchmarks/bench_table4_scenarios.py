"""Table 4 / Fig. 8: fault-tolerant scenarios and functionality matrix.

The scenarios of the paper's comparison are exercised through the
program-logic route (Sections 4-5): error-free logical operation, logical-free
error correction (E M C), one full cycle with propagation (E L-bar E M C), and
the bug-reporting functionality (a counterexample for an over-claimed bound).
Each scenario becomes a ``ProgramTask`` decided by the engine; the printed
matrix mirrors Table 4's rows for Veri-QEC.
"""

import pytest

from repro.api import FixedErrorTask, ProgramTask
from repro.codes import steane_code
from repro.verifier.programs import (
    correction_triple,
    ghz_preparation,
    logical_cnot_with_propagation,
)


def scenario_error_free():
    return ghz_preparation(steane_code(), blocks=2), None


def scenario_logical_free():
    scenario = correction_triple(steane_code(), error="Y", max_errors=1)
    return scenario, scenario.decoder_condition


def scenario_one_cycle():
    scenario = correction_triple(
        steane_code(), error="Y", logical_gate="H", propagation=True, max_errors=1
    )
    return scenario, scenario.decoder_condition


def scenario_propagated_cnot():
    scenario = logical_cnot_with_propagation(steane_code(), error="X", max_errors=1)
    return scenario, scenario.decoder_condition


SCENARIOS = {
    "error-free (L)": scenario_error_free,
    "logical-free (EMC)": scenario_logical_free,
    "one cycle (E L E M C)": scenario_one_cycle,
    "propagated CNOT (Fig. 10)": scenario_propagated_cnot,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_table4_general_verification(benchmark, engine, name):
    scenario, decoder_condition = SCENARIOS[name]()
    task = ProgramTask(triple=scenario.triple, decoder_condition=decoder_condition)
    result = benchmark.pedantic(lambda: engine.run(task), rounds=1, iterations=1)
    assert result.verified
    print(f"\n[table4] {name:28s} C=verified in {result.elapsed_seconds:.3f}s")


def test_table4_bug_reporting(benchmark, engine):
    """The R column: a violated specification produces a counterexample."""
    scenario = correction_triple(steane_code(), error="Y", max_errors=2)
    task = ProgramTask(triple=scenario.triple, decoder_condition=scenario.decoder_condition)
    result = benchmark.pedantic(lambda: engine.run(task), rounds=1, iterations=1)
    assert not result.verified and result.counterexample is not None
    print("\n[table4] bug reporting: counterexample with errors on qubits "
          f"{result.counterexample_qubits()}")


def test_table4_fixed_errors(benchmark, engine):
    """The F column: checking one fixed error pattern (what Stim covers)."""
    task = FixedErrorTask(code="steane", error_qubits=((2, "Y"),))
    result = benchmark.pedantic(lambda: engine.run(task), rounds=1, iterations=1)
    assert result.verified
