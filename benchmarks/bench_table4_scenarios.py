"""Table 4 / Fig. 8: fault-tolerant scenarios and functionality matrix.

The scenarios of the paper's comparison are exercised through the
program-logic route (Sections 4-5): error-free logical operation, logical-free
error correction (E M C), one full cycle with propagation (E L-bar E M C), and
the bug-reporting functionality (a counterexample for an over-claimed bound).
The printed matrix mirrors Table 4's rows for Veri-QEC.
"""

import pytest

from repro.codes import steane_code
from repro.vc.pipeline import verify_triple
from repro.verifier import VeriQEC
from repro.verifier.programs import (
    correction_triple,
    ghz_preparation,
    logical_cnot_with_propagation,
)


def scenario_error_free():
    return ghz_preparation(steane_code(), blocks=2), None


def scenario_logical_free():
    scenario = correction_triple(steane_code(), error="Y", max_errors=1)
    return scenario, scenario.decoder_condition


def scenario_one_cycle():
    scenario = correction_triple(
        steane_code(), error="Y", logical_gate="H", propagation=True, max_errors=1
    )
    return scenario, scenario.decoder_condition


def scenario_propagated_cnot():
    scenario = logical_cnot_with_propagation(steane_code(), error="X", max_errors=1)
    return scenario, scenario.decoder_condition


SCENARIOS = {
    "error-free (L)": scenario_error_free,
    "logical-free (EMC)": scenario_logical_free,
    "one cycle (E L E M C)": scenario_one_cycle,
    "propagated CNOT (Fig. 10)": scenario_propagated_cnot,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_table4_general_verification(benchmark, name):
    scenario, decoder_condition = SCENARIOS[name]()
    report = benchmark.pedantic(
        lambda: verify_triple(scenario.triple, decoder_condition=decoder_condition),
        rounds=1,
        iterations=1,
    )
    assert report.verified
    print(f"\n[table4] {name:28s} C=verified in {report.elapsed_seconds:.3f}s")


def test_table4_bug_reporting(benchmark):
    """The R column: a violated specification produces a counterexample."""
    scenario = correction_triple(steane_code(), error="Y", max_errors=2)
    report = benchmark.pedantic(
        lambda: verify_triple(scenario.triple, decoder_condition=scenario.decoder_condition),
        rounds=1,
        iterations=1,
    )
    assert not report.verified and report.counterexample is not None
    print("\n[table4] bug reporting: counterexample with errors on qubits "
          f"{report.counterexample_qubits()}")


def test_table4_fixed_errors(benchmark):
    """The F column: checking one fixed error pattern (what Stim covers)."""
    verifier = VeriQEC()
    report = benchmark.pedantic(
        lambda: verifier.verify_fixed_error(steane_code(), {2: "Y"}), rounds=1, iterations=1
    )
    assert report.verified
