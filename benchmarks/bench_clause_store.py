"""Clause-store benchmark: cold-vs-warm registry sweeps and kill-resume
distance walks — the permanent perf trajectory for the durable store.

Two workloads through the public :class:`repro.api.Engine`:

* **Registry sweep, cold vs warm.**  The full registry target sweep runs
  twice over one fresh store directory: the cold pass populates the sqlite
  clause store, the warm pass (a brand-new engine, as a restarted process
  would be) replays it.  The gate demands the warm sweep be >=
  ``--min-speedup`` (default 1.3x) faster with a byte-identical verdict
  map — the store buys speed and only speed.

* **Kill-resume distance walk.**  A surface-5 distance job is cancelled
  mid-walk; a fresh engine over the same store resumes it from the
  persisted checkpoint.  The gate demands the resumed walk finish in
  strictly fewer solver probes than a cold walk, at the identical
  distance.

A committed full run is the baseline (``--check-baseline
benchmarks/baselines/store.json``): CI replays the quick workload and
fails on a calibration-normalized wall-clock regression or on any gate
violation.  Shared CI runners are noisy, so the quick gate is typically
invoked with a relaxed ``--min-speedup``; the committed full run
documents the real margin.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

QUICK_CODES = ("steane", "five-qubit", "surface-3", "repetition-5", "shor")
RESUME_CODE = "surface-5"

#: Result fields whose values depend on wall-clock measurement or runtime
#: statistics.  The warm pass legitimately differs there (fewer conflicts,
#: store counters); everything left — verdicts, counterexamples, distances —
#: must be byte-identical between the cold and warm sweeps.  Per-trial solver
#: counters ("trials") and aggregate conflict counts are run-dependent too:
#: a warm walk probes fewer bounds by design.
TIMING_KEYS = frozenset({
    "elapsed_seconds", "compile_seconds", "session", "resources",
    "trials", "conflicts", "decisions", "propagations", "restarts",
    "family_absorbed", "store_absorbed", "resumed_from",
})


def calibrate() -> float:
    """Seconds for a fixed pure-python workload; the machine-speed yardstick."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        total = 0
        for i in range(1_500_000):
            total += i * i
        best = min(best, time.perf_counter() - start)
    return best


def _strip_timing(value):
    if isinstance(value, dict):
        return {
            key: _strip_timing(item)
            for key, item in value.items()
            if key not in TIMING_KEYS
        }
    if isinstance(value, list):
        return [_strip_timing(item) for item in value]
    return value


def _sweep_keys(quick: bool):
    from repro.codes.registry import CODE_REGISTRY

    if not quick:
        return None  # the whole registry
    return [key for key in QUICK_CODES if key in CODE_REGISTRY] or None


def _store_engine(directory: str):
    from repro.api import Engine

    engine = Engine()
    engine.resources.enable_clause_store(directory)
    return engine


def _run_sweep(directory: str, keys) -> dict:
    from repro.api.engine import registry_sweep_tasks

    engine = _store_engine(directory)
    tasks = registry_sweep_tasks(keys)
    start = time.perf_counter()
    results = engine.run_many(tasks)
    wall = time.perf_counter() - start
    engine.resources.save_warm()
    engine.close()
    return {
        "wall_seconds": wall,
        "num_tasks": len(results),
        "num_verified": sum(result.verified for result in results),
        "conflicts": sum(result.conflicts for result in results),
        "verdicts": {
            result.subject: _strip_timing(result.to_dict()) for result in results
        },
    }


def run_sweep_workload(keys, repeats: int) -> dict:
    """Cold-populate then warm-replay the sweep; best-of-N on both sides."""
    colds, warms = [], []
    verdicts_equal = True
    for _ in range(max(1, repeats)):
        directory = tempfile.mkdtemp(prefix="bench-clause-store-")
        try:
            cold = _run_sweep(directory, keys)
            warm = _run_sweep(directory, keys)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        verdicts_equal = verdicts_equal and cold["verdicts"] == warm["verdicts"]
        colds.append(cold)
        warms.append(warm)
    best_cold = min(colds, key=lambda row: row["wall_seconds"])
    best_warm = min(warms, key=lambda row: row["wall_seconds"])
    report = {
        "num_tasks": best_cold["num_tasks"],
        "num_verified": best_cold["num_verified"],
        "cold_wall_seconds": best_cold["wall_seconds"],
        "warm_wall_seconds": best_warm["wall_seconds"],
        "cold_conflicts": best_cold["conflicts"],
        "warm_conflicts": best_warm["conflicts"],
        "warm_speedup": (
            best_cold["wall_seconds"] / best_warm["wall_seconds"]
            if best_warm["wall_seconds"] > 0
            else 0.0
        ),
        "verdicts_identical": verdicts_equal,
    }
    return report


def run_resume_workload(attempts: int = 5) -> dict:
    """Kill a surface-5 distance walk mid-flight, resume it, count probes."""
    from repro.api import DistanceTask, Engine
    from repro.api.events import DistanceProbe

    task = DistanceTask(code=RESUME_CODE)
    cold_engine = Engine()
    start = time.perf_counter()
    cold = cold_engine.run(task)
    cold_wall = time.perf_counter() - start
    cold_engine.close()
    cold_probes = len(cold.details["trials"])

    report = {
        "code": RESUME_CODE,
        "cold_probes": cold_probes,
        "cold_wall_seconds": cold_wall,
        "distance": cold.details["distance"],
    }
    # The cancel races the walk; retry with an earlier cut if the walk
    # finishes before the cancellation lands.
    for attempt in range(attempts):
        cancel_after = max(1, 2 - attempt)
        directory = tempfile.mkdtemp(prefix="bench-clause-store-resume-")
        try:
            engine = _store_engine(directory)
            job = engine.submit(task)
            seen = 0
            for event in job.events():
                if isinstance(event, DistanceProbe):
                    seen += 1
                    if seen == cancel_after:
                        job.cancel()
            engine.close()
            if seen >= cold_probes:
                continue  # finished anyway; try cancelling earlier

            resumed_engine = _store_engine(directory)
            start = time.perf_counter()
            resumed = resumed_engine.run(task)
            resumed_wall = time.perf_counter() - start
            resumed_engine.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        report.update({
            "killed_after_probes": seen,
            "resumed_probes": len(resumed.details["trials"]),
            "resumed_wall_seconds": resumed_wall,
            "resumed_distance": resumed.details["distance"],
            "resumed_from": resumed.details.get("resumed_from"),
            "probes_saved": cold_probes - len(resumed.details["trials"]),
            "attempts": attempt + 1,
        })
        return report
    report["error"] = "walk finished before any cancel landed"
    return report


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    """Calibration-normalized wall-clock gate against a committed baseline."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    problems: list[str] = []
    base_sweep = baseline.get("sweep")
    here_sweep = report.get("sweep")
    if not base_sweep or not here_sweep:
        return [f"baseline {baseline_path} or this run lacks a sweep section"]
    for side in ("cold", "warm"):
        base_norm = base_sweep[f"{side}_wall_seconds"] / baseline["calibration_seconds"]
        here_norm = here_sweep[f"{side}_wall_seconds"] / report["calibration_seconds"]
        # The committed baseline is a full-registry run; a quick run covers
        # fewer tasks, so normalize per task before comparing.
        base_norm /= max(1, base_sweep["num_tasks"])
        here_norm /= max(1, here_sweep["num_tasks"])
        if here_norm > base_norm * tolerance:
            problems.append(
                f"{side} sweep normalized wall-clock regression: "
                f"{here_norm:.4f} > {base_norm:.4f} * {tolerance} "
                f"(baseline {baseline_path})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep (5 codes) instead of the registry")
    parser.add_argument("--output", default="BENCH_store.json",
                        help="where to write the JSON report")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail on wall-clock regression vs this baseline")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed normalized wall-clock ratio vs baseline")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="required warm-over-cold sweep speedup")
    parser.add_argument("--repeats", type=int, default=3,
                        help="sweep repeats; each side keeps its fastest run")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and write the report without gating")
    args = parser.parse_args(argv)

    keys = _sweep_keys(args.quick)
    report: dict = {
        "schema": 1,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_seconds": calibrate(),
    }

    print(f"== registry sweep cold vs warm ({'quick' if args.quick else 'full'}) ==",
          flush=True)
    sweep = run_sweep_workload(keys, args.repeats)
    report["sweep"] = sweep
    print(
        f"  {sweep['num_tasks']} tasks: cold {sweep['cold_wall_seconds']:.3f}s"
        f" ({sweep['cold_conflicts']} conflicts) -> warm"
        f" {sweep['warm_wall_seconds']:.3f}s ({sweep['warm_conflicts']} conflicts),"
        f" {sweep['warm_speedup']:.2f}x, verdicts identical:"
        f" {sweep['verdicts_identical']}"
    )

    print("== kill-resume distance walk ==", flush=True)
    resume = run_resume_workload()
    report["resume"] = resume
    if "error" not in resume:
        print(
            f"  {resume['code']}: cold {resume['cold_probes']} probes"
            f" -> killed after {resume['killed_after_probes']},"
            f" resumed in {resume['resumed_probes']} probes"
            f" (saved {resume['probes_saved']}),"
            f" distance {resume['resumed_distance']}"
        )

    problems: list[str] = []
    if not args.no_assert:
        if not sweep["verdicts_identical"]:
            problems.append("warm sweep verdicts differ from the cold sweep")
        if sweep["warm_speedup"] < args.min_speedup:
            problems.append(
                f"warm sweep speedup {sweep['warm_speedup']:.2f}x < "
                f"required {args.min_speedup}x"
            )
        if "error" in resume:
            problems.append(resume["error"])
        else:
            if resume["resumed_probes"] >= resume["cold_probes"]:
                problems.append(
                    f"resumed walk used {resume['resumed_probes']} probes, "
                    f"not fewer than the cold walk's {resume['cold_probes']}"
                )
            if resume["resumed_distance"] != resume["distance"]:
                problems.append(
                    f"resumed distance {resume['resumed_distance']} != "
                    f"cold distance {resume['distance']}"
                )
            if not resume.get("resumed_from"):
                problems.append("resumed walk did not report resumed_from")
    if args.check_baseline:
        if os.path.exists(args.check_baseline):
            problems.extend(check_baseline(report, args.check_baseline, args.tolerance))
        else:
            # A requested-but-missing baseline must fail loudly: a silent
            # skip would leave the CI regression gate green while checking
            # nothing.
            problems.append(f"baseline file not found: {args.check_baseline}")

    report["passed"] = not problems
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
