"""Fig. 7: verification with user-provided error constraints.

The paper compares plain verification against verification under the
locality constraint, the discreteness constraint, and both combined (which is
what pushes the reachable code size to d = 19 / 361 qubits).  The same four
configurations are timed here on d = 3 and d = 5 surface codes.
"""

import pytest

from repro.codes import rotated_surface_code
from repro.verifier import VeriQEC

CONFIGURATIONS = {
    "none": {},
    "locality": {"locality": True},
    "discreteness": {"discreteness": True},
    "both": {"locality": True, "discreteness": True},
}


@pytest.mark.parametrize("distance", [3, 5])
@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
def test_fig7_constrained_verification(benchmark, distance, config):
    code = rotated_surface_code(distance)
    verifier = VeriQEC()
    options = CONFIGURATIONS[config]

    def task():
        if options:
            return verifier.verify_with_constraints(
                code, error_model="Y", seed=2026, **options
            )
        return verifier.verify_correction(code, error_model="Y")

    report = benchmark(task)
    assert report.verified
    print(
        f"\n[fig7] d={distance} constraints={config}: {report.elapsed_seconds:.3f}s "
        f"(vars={report.num_variables})"
    )
