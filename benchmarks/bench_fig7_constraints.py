"""Fig. 7: verification with user-provided error constraints.

The paper compares plain verification against verification under the
locality constraint, the discreteness constraint, and both combined (which is
what pushes the reachable code size to d = 19 / 361 qubits).  The same four
configurations are expressed as tasks and timed here on d = 3 and d = 5
surface codes.
"""

import pytest

from repro.api import ConstrainedTask, CorrectionTask, Engine
from repro.codes import rotated_surface_code

CONFIGURATIONS = {
    "none": {},
    "locality": {"locality": True},
    "discreteness": {"discreteness": True},
    "both": {"locality": True, "discreteness": True},
}


@pytest.mark.parametrize("distance", [3, 5])
@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
def test_fig7_constrained_verification(benchmark, distance, config):
    code = rotated_surface_code(distance)
    options = CONFIGURATIONS[config]
    if options:
        task = ConstrainedTask(code=code, error_model="Y", seed=2026, **options)
    else:
        task = CorrectionTask(code=code, error_model="Y")

    result = benchmark(lambda: Engine().run(task))
    assert result.verified
    print(
        f"\n[fig7] d={distance} constraints={config}: {result.elapsed_seconds:.3f}s "
        f"(vars={result.num_variables})"
    )
