"""Section 7.2: comparison against stabilizer-simulator sampling (the Stim substitute).

Sampling covers one error configuration per shot, so covering all weight-<=t
configurations of an n-qubit code requires a number of samples that explodes
combinatorially; complete verification covers them all in one query.  The
benchmark times (a) one full sampled error-correction cycle on the tableau
simulator and (b) the complete verification, and prints the coverage ratio.
"""

import math
import random

from repro.api import CorrectionTask, Engine
from repro.codes import steane_code
from repro.decoders import LookupDecoder
from repro.pauli.tableau import StabilizerTableau


def run_sampled_cycle(code, decoder, rng):
    tableau = StabilizerTableau(code.num_qubits, seed=rng.randint(0, 2**31))
    for generator in code.stabilizers:
        tableau.measure_pauli(generator, forced_outcome=0)
    tableau.measure_pauli(code.logical_zs[0], forced_outcome=0)
    qubit = rng.randrange(code.num_qubits)
    pauli = rng.choice("XYZ")
    tableau.apply_error(qubit, pauli)
    syndrome = tuple(tableau.measure_pauli(g) for g in code.stabilizers)
    correction = decoder.decode(syndrome)
    tableau.apply_pauli(correction)
    return tableau.is_stabilized_by(code.logical_zs[0])


def test_sampling_one_cycle(benchmark):
    code = steane_code()
    decoder = LookupDecoder(code)
    rng = random.Random(0)
    assert benchmark(lambda: run_sampled_cycle(code, decoder, rng))


def test_complete_verification(benchmark):
    code = steane_code()
    result = benchmark(lambda: Engine().run(CorrectionTask(code="steane")))
    assert result.verified
    configurations = 3 * code.num_qubits + 1
    print(
        f"\n[stim-comparison] one verification query covers all {configurations} "
        "weight-<=1 error configurations; sampling covers one per shot "
        f"(needs >= {configurations} shots even with perfect coverage, and "
        f"~{math.comb(code.num_qubits, 1) * 3}x more for confidence)"
    )
