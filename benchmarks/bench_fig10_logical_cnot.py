"""Fig. 10: logical CNOT with errors propagated from the previous cycle."""

import pytest

from repro.api import Engine, ProgramTask
from repro.codes import steane_code
from repro.verifier.programs import logical_cnot_with_propagation


@pytest.mark.parametrize("error", ["X", "Z"])
def test_fig10_logical_cnot_with_propagation(benchmark, error):
    scenario = logical_cnot_with_propagation(steane_code(), error=error, max_errors=1)
    task = ProgramTask(triple=scenario.triple, decoder_condition=scenario.decoder_condition)
    result = benchmark(lambda: Engine().run(task))
    assert result.verified
    print(
        f"\n[fig10] propagated {error} errors through a transversal CNOT (14 qubits): "
        f"{result.elapsed_seconds:.3f}s"
    )
