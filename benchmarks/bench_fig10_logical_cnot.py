"""Fig. 10: logical CNOT with errors propagated from the previous cycle."""

import pytest

from repro.codes import steane_code
from repro.vc.pipeline import verify_triple
from repro.verifier.programs import logical_cnot_with_propagation


@pytest.mark.parametrize("error", ["X", "Z"])
def test_fig10_logical_cnot_with_propagation(benchmark, error):
    scenario = logical_cnot_with_propagation(steane_code(), error=error, max_errors=1)
    report = benchmark(
        lambda: verify_triple(scenario.triple, decoder_condition=scenario.decoder_condition)
    )
    assert report.verified
    print(
        f"\n[fig10] propagated {error} errors through a transversal CNOT (14 qubits): "
        f"{report.elapsed_seconds:.3f}s"
    )
