"""Incremental distance discovery vs the fresh-solver-per-trial baseline.

Distance discovery solves one detection query per weight bound; the queries
differ only in that bound.  The legacy strategy re-encoded the full
detection formula and constructed a new solver for every trial; the engine
now encodes the trial-independent base once and binary-searches the weight
bounds on one incremental session, activating per-probe bounds through
selector literals (see ``bench_binary_search_distance.py`` for the
search-policy comparison).  This benchmark runs both on the Steane and d=5
rotated surface code and asserts the incremental walk discovers the same
distance with fewer total conflicts and lower wall-clock time (the
acceptance criterion of the session-layer rework).

Conflict counts are deterministic (the solver has no randomized state), so
they are compared exactly; wall-clock is compared on a best-of-N basis to
damp scheduler noise.
"""

import os
import time

import pytest

from repro.api import DistanceTask, Engine
from repro.codes.registry import build_code
from repro.smt.interface import check_formula
from repro.verifier.encodings import ErrorModel, precise_detection_formula

# Both strategies start cold on every repeat (a fresh Engine per run, so no
# compile/session cache crosses repeats); best-of-N damps scheduler noise on
# shared CI runners while conflict counts stay exactly deterministic.
REPEATS = 5


def fresh_per_trial_walk(code, max_trial):
    """The legacy strategy: re-encode and re-solve from scratch per trial."""
    conflicts = 0
    distance = max_trial
    for trial in range(2, max_trial + 1):
        check = check_formula(precise_detection_formula(code, trial, ErrorModel("any")))
        conflicts += check.conflicts
        if check.is_sat:
            distance = trial - 1
            break
    return distance, conflicts


def best_of(repeats, run):
    best = None
    payload = None
    for _ in range(repeats):
        start = time.perf_counter()
        payload = run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, payload


@pytest.mark.parametrize(
    "key,max_trial",
    [("steane", 5), ("surface-5", 6)],
)
def test_incremental_distance_beats_fresh_per_trial(key, max_trial):
    code = build_code(key)

    fresh_seconds, (fresh_distance, fresh_conflicts) = best_of(
        REPEATS, lambda: fresh_per_trial_walk(code, max_trial)
    )
    incremental_seconds, result = best_of(
        REPEATS, lambda: Engine().run(DistanceTask(code=key, max_trial=max_trial))
    )

    print(
        f"\n[incremental-distance] {key}: distance={result.details['distance']} "
        f"fresh={fresh_seconds:.3f}s/{fresh_conflicts} conflicts "
        f"incremental={incremental_seconds:.3f}s/{result.conflicts} conflicts "
        f"({result.details['session']['checks']} checks on 1 encoding)"
    )

    assert result.details["distance"] == fresh_distance
    assert result.details["base_encodings"] == 1
    assert result.conflicts < fresh_conflicts
    # On shared CI runners a scheduling burst can distort a sub-100ms
    # measurement, so the strict wall-clock comparison is local-only; CI
    # still fails on a gross (>1.5x) slowdown.
    slack = 1.5 if os.environ.get("CI") else 1.0
    assert incremental_seconds < fresh_seconds * slack
