"""Fig. 9: fault-tolerant logical GHZ state preparation (Section 7.3)."""

import pytest

from repro.api import Engine, ProgramTask
from repro.codes import steane_code
from repro.verifier.programs import ghz_preparation


@pytest.mark.parametrize("blocks", [2, 3])
def test_fig9_ghz_preparation(benchmark, blocks):
    scenario = ghz_preparation(steane_code(), blocks=blocks)
    task = ProgramTask(triple=scenario.triple)
    result = benchmark(lambda: Engine().run(task))
    assert result.verified
    print(
        f"\n[fig9] GHZ over {blocks} Steane blocks ({7 * blocks} qubits): "
        f"{result.elapsed_seconds:.3f}s, {result.details['num_atoms']} atoms"
    )
