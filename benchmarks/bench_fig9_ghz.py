"""Fig. 9: fault-tolerant logical GHZ state preparation (Section 7.3)."""

import pytest

from repro.codes import steane_code
from repro.vc.pipeline import verify_triple
from repro.verifier.programs import ghz_preparation


@pytest.mark.parametrize("blocks", [2, 3])
def test_fig9_ghz_preparation(benchmark, blocks):
    scenario = ghz_preparation(steane_code(), blocks=blocks)
    report = benchmark(lambda: verify_triple(scenario.triple))
    assert report.verified
    print(
        f"\n[fig9] GHZ over {blocks} Steane blocks ({7 * blocks} qubits): "
        f"{report.elapsed_seconds:.3f}s, {report.details['num_atoms']} atoms"
    )
