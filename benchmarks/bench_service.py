"""Service load benchmark: latency and throughput over real sockets.

Starts one :class:`repro.service.VerificationService` on an ephemeral port
(in-process, background event loop) and drives it with ``--clients`` (default
8) concurrent :class:`~repro.service.client.ServiceClient` threads, each
submitting ``--jobs-per-client`` jobs from a fixed mixed workload (correction
and detection on small registry codes) and streaming every job's NDJSON
events to its terminal line.  The report (``BENCH_service.json``) carries:

* **job latency** p50/p99 — POST issued → terminal event read off the wire
  (queueing + execution + streaming, the number a caller experiences);
* **submit latency** p50/p99 — the POST round-trip alone (HTTP + admission
  overhead, independent of solver time);
* **jobs/sec** — completed jobs over the busy window;
* stream validation — every line of every stream is held to the
  ``schema_version 1.0`` contract (the run *fails* on a violation);
* admission counters (the workload sizes its token buckets so 429s mean the
  harness is misconfigured — also a failure).

``--mixed-registry`` switches to the dispatcher sweep (``BENCH_dispatch.json``):
one task per registry code, run twice on identical single-client traffic —
once against the serial baseline (1 lane, family warm start off, the
historical two-connection submit-then-stream client) and once against the
sharded dispatcher (``--lanes`` worker lanes, family warm start, keep-alive
submit-and-stream).  The run *fails* unless the verdict maps are identical,
the sharded/serial jobs-per-second ratio clears ``--min-speedup`` (default
1.5x), and the surface family reports nonzero absorbed clauses; its
baseline gate is ``--check-baseline benchmarks/baselines/dispatch.json``.

Regression gate (``--check-baseline benchmarks/baselines/service.json``):
compares calibration-normalized job-latency p50 and jobs/sec against the
committed baseline and fails on a > ``--tolerance`` (default 1.5x —
latency percentiles over a few dozen jobs are noisy even normalized, and
the gate is for catching step-change regressions, not jitter) regression,
same normalization scheme as ``bench_solver_hotpath.py``.  CI runs
``--quick``; the full run produces the committed ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import threading
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

WORKLOAD = (
    {"kind": "correction", "code": "steane"},
    {"kind": "detection", "code": "steane", "trial_distance": 3},
    {"kind": "correction", "code": "five-qubit"},
    {"kind": "detection", "code": "five-qubit", "trial_distance": 3},
)
LANES = ("interactive", "normal", "batch")

#: the ``--mixed-registry`` sweep: one task per registry code family/key, so
#: every job routes to a shard determined by its code and the surface family
#: exercises the cross-code warm start (surface-3 runs before surface-5).
MIXED_REGISTRY = (
    {"kind": "correction", "code": "steane"},
    {"kind": "correction", "code": "five-qubit"},
    {"kind": "correction", "code": "six-qubit"},
    {"kind": "correction", "code": "surface-3"},
    {"kind": "correction", "code": "surface-5", "max_errors": 1},
    {"kind": "detection", "code": "color-832"},
    {"kind": "correction", "code": "gottesman-8"},
    {"kind": "detection", "code": "iceberg-6"},
)


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def calibrate() -> float:
    """Seconds for a fixed pure-python workload; the machine-speed yardstick."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        total = 0
        for i in range(1_500_000):
            total += i * i
        best = min(best, time.perf_counter() - start)
    return best


class ServiceUnderTest:
    """The service on an ephemeral port, its loop on a daemon thread."""

    def __init__(self, **engine_kwargs):
        from repro.service import AdmissionController, VerificationService

        # Benchmark posture: admission generous enough that the measured
        # numbers are the engine's and the wire's, not the rate limiter's.
        self.service = VerificationService(
            port=0,
            admission=AdmissionController(
                max_pending=4096, max_inflight_per_key=1024, rate=1e6, burst=1e6
            ),
            drain_grace=30.0,
            **engine_kwargs,
        )
        self._ready = threading.Event()
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        import asyncio

        async def main():
            await self.service.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.service.serve_forever(install_signal_handlers=False)

        asyncio.run(main())

    def __enter__(self) -> "ServiceUnderTest":
        self._thread.start()
        if not self._ready.wait(15):
            raise RuntimeError("service failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(120)

    @property
    def port(self) -> int:
        return self.service.port


#: The ``--faults armed`` plan: one rule per injection point, each parked
#: behind an unreachable ``after`` threshold — every hook is live (the plan
#: lookup and hit accounting run on each call) but nothing ever fires.
IDLE_FAULT_PLAN = {
    "faults": [
        {"point": point, "after": 10**9}
        for point in (
            "store.read",
            "store.write",
            "lane.crash",
            "socket.reset",
            "loop.stall",
        )
    ]
}


def run_load(clients: int, jobs_per_client: int, fault_plan=None) -> dict:
    """One full load run; returns the measured section of the report."""
    from repro.api.events import validate_stream
    from repro.service.client import ServiceClient, ServiceError

    job_latencies: list[float] = []
    submit_latencies: list[float] = []
    all_lines: list[str] = []
    rejections = 0
    errors: list[str] = []
    lock = threading.Lock()

    with ServiceUnderTest(fault_plan=fault_plan) as under_test:
        port = under_test.port

        def client_thread(index: int) -> None:
            nonlocal rejections
            client = ServiceClient("127.0.0.1", port, api_key=f"bench-{index}")
            for jobnum in range(jobs_per_client):
                task = WORKLOAD[(index + jobnum) % len(WORKLOAD)]
                lane = LANES[(index + jobnum) % len(LANES)]
                begin = time.perf_counter()
                try:
                    descriptor = client.submit(task, lane=lane)
                    submitted = time.perf_counter()
                    lines = list(client.events(descriptor["id"], raw=True))
                    done = time.perf_counter()
                except ServiceError as error:
                    with lock:
                        if error.status == 429:
                            rejections += 1
                        errors.append(f"client {index} job {jobnum}: {error}")
                    continue
                with lock:
                    submit_latencies.append(submitted - begin)
                    job_latencies.append(done - begin)
                    all_lines.extend(lines)

        threads = [
            threading.Thread(target=client_thread, args=(index,))
            for index in range(clients)
        ]
        busy_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        busy = time.perf_counter() - busy_start
        stats = ServiceClient("127.0.0.1", port).stats()

    num_events, counts, stream_errors = validate_stream(all_lines)
    expected = clients * jobs_per_client
    completed = len(job_latencies)
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "jobs_expected": expected,
        "jobs_completed": completed,
        "busy_seconds": busy,
        "jobs_per_second": completed / busy if busy > 0 else 0.0,
        "job_latency_p50": _percentile(job_latencies, 0.50),
        "job_latency_p99": _percentile(job_latencies, 0.99),
        "submit_latency_p50": _percentile(submit_latencies, 0.50),
        "submit_latency_p99": _percentile(submit_latencies, 0.99),
        "events_streamed": num_events,
        "event_counts": counts,
        "stream_errors": stream_errors,
        "rejected_429": rejections,
        "client_errors": errors,
        "admission": stats["admission"],
        "engine": stats["engine"],
    }


def _spec_key(spec: dict) -> str:
    return json.dumps(spec, sort_keys=True)


def _run_mixed_pass(client, specs, stream: bool, latencies=None) -> dict:
    """One pass over ``specs`` on one client; returns {spec_key: verified}."""
    verdicts: dict[str, bool] = {}
    for spec in specs:
        begin = time.perf_counter()
        if stream:
            _, events = client.submit_stream(spec)
            final = list(events)[-1]
        else:
            descriptor = client.submit(spec)
            final = list(client.events(descriptor["id"]))[-1]
        if latencies is not None:
            latencies.append(time.perf_counter() - begin)
        verdicts[_spec_key(spec)] = final.get("verified")
    return verdicts


def _mixed_side(
    *, lanes: int, family_warm_start: bool, stream: bool,
    per_spec: int, warmup_passes: int,
) -> dict:
    """One side of the mixed-registry comparison: serve, warm, measure."""
    from repro.service.client import ServiceClient

    with ServiceUnderTest(
        lanes=lanes, family_warm_start=family_warm_start
    ) as under_test:
        client = ServiceClient(
            "127.0.0.1", under_test.port, api_key="mixed", keep_alive=stream
        )
        # Warmup amortizes compilation and (on the sharded side) performs the
        # family warm start, so the timed window measures dispatch + solving.
        verdicts: dict[str, bool] = {}
        for _ in range(warmup_passes):
            verdicts = _run_mixed_pass(client, MIXED_REGISTRY, stream)
        latencies: list[float] = []
        busy_start = time.perf_counter()
        for _ in range(per_spec):
            passed = _run_mixed_pass(client, MIXED_REGISTRY, stream, latencies)
            if passed != verdicts:
                raise RuntimeError(f"verdicts changed mid-run: {passed}")
        busy = time.perf_counter() - busy_start
        client.close()
        stats = ServiceClient("127.0.0.1", under_test.port).stats()

    completed = per_spec * len(MIXED_REGISTRY)
    return {
        "lanes": lanes,
        "family_warm_start": family_warm_start,
        "keep_alive_stream": stream,
        "passes": per_spec,
        "jobs_completed": completed,
        "busy_seconds": busy,
        "jobs_per_second": completed / busy if busy > 0 else 0.0,
        "job_latency_p50": _percentile(latencies, 0.50),
        "job_latency_p99": _percentile(latencies, 0.99),
        "verdicts": verdicts,
        "family_absorbed": stats["resources"].get("family_absorbed", 0),
        "lane_table": stats["resources"].get("lanes", []),
    }


def run_mixed_registry(per_spec: int, lanes: int) -> dict:
    """The sharded dispatcher vs the serial baseline on identical traffic.

    Serial side: 1 lane, family warm start off, the historical two-connection
    submit-then-stream client — the pre-dispatcher execution model.  Sharded
    side: ``lanes`` worker lanes, family warm start on, submit-and-stream on
    one keep-alive connection.  Both sides run the same single-client job
    sequence, so the speedup is per-job cost, not client parallelism.
    """
    serial = _mixed_side(
        lanes=1, family_warm_start=False, stream=False,
        per_spec=per_spec, warmup_passes=2,
    )
    sharded = _mixed_side(
        lanes=lanes, family_warm_start=True, stream=True,
        per_spec=per_spec, warmup_passes=2,
    )
    speedup = (
        sharded["jobs_per_second"] / serial["jobs_per_second"]
        if serial["jobs_per_second"] > 0
        else 0.0
    )
    return {
        "workload": list(MIXED_REGISTRY),
        "serial": serial,
        "sharded": sharded,
        "verdicts_match": serial["verdicts"] == sharded["verdicts"],
        "speedup": speedup,
    }


def check_dispatch_baseline(
    report: dict, baseline_path: str, tolerance: float
) -> list[str]:
    """Mixed-registry gate: sharded throughput (calibration-normalized) and
    the serial-vs-sharded speedup ratio must not regress past tolerance."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    problems: list[str] = []
    base, here = baseline["mixed_registry"], report["mixed_registry"]
    base_jps = (
        base["sharded"]["jobs_per_second"] * baseline["calibration_seconds"]
    )
    here_jps = here["sharded"]["jobs_per_second"] * report["calibration_seconds"]
    if here_jps * tolerance < base_jps:
        problems.append(
            f"normalized sharded jobs/sec regression: {here_jps:.2f} * "
            f"{tolerance} < {base_jps:.2f} (baseline {baseline_path})"
        )
    if here["speedup"] * tolerance < base["speedup"]:
        problems.append(
            f"dispatch speedup regression: {here['speedup']:.2f} * {tolerance}"
            f" < baseline {base['speedup']:.2f} ({baseline_path})"
        )
    return problems


def fault_hook_column(report: dict, args) -> dict:
    """The ``--faults`` column: what do the injection hooks cost when idle?

    The default run above already measured the shipped configuration —
    hooks present but disarmed (every ``fire()`` site is a ``None`` check).
    Its overhead is reported against the committed pre-hook baseline,
    calibration-normalized.  ``--faults armed`` additionally re-runs the
    load under a live plan whose rules are parked behind an unreachable
    ``after`` threshold, pricing the hook accounting itself.
    """
    from repro import faults

    column: dict = {"mode": args.faults, "disarmed": {
        "jobs_per_second": report["load"]["jobs_per_second"],
        "job_latency_p50": report["load"]["job_latency_p50"],
    }}
    if args.faults == "armed":
        try:
            armed = run_load(
                report["load"]["clients"],
                report["load"]["jobs_per_client"],
                fault_plan=IDLE_FAULT_PLAN,
            )
        finally:
            faults.disarm()
        column["armed_idle"] = {
            "jobs_per_second": armed["jobs_per_second"],
            "job_latency_p50": armed["job_latency_p50"],
            "armed_overhead_percent": 100.0
            * (1.0 - armed["jobs_per_second"] / report["load"]["jobs_per_second"])
            if report["load"]["jobs_per_second"] > 0
            else 0.0,
        }
    baseline_path = args.check_baseline or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "baselines", "service.json"
    )
    if os.path.exists(baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        # Normalized so a slower/faster machine cancels out: jobs/sec scales
        # inversely with machine slowness, so multiply by calibration time.
        base_jps = (
            baseline["load"]["jobs_per_second"] * baseline["calibration_seconds"]
        )
        here_jps = (
            report["load"]["jobs_per_second"] * report["calibration_seconds"]
        )
        column["baseline"] = {
            "path": baseline_path,
            "normalized_jobs_per_second": base_jps,
            "disarmed_normalized_jobs_per_second": here_jps,
            "disarmed_overhead_percent": 100.0 * (1.0 - here_jps / base_jps)
            if base_jps > 0
            else 0.0,
        }
    return column


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    """Calibration-normalized latency/throughput gate vs a committed run."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    problems: list[str] = []
    base, here = baseline["load"], report["load"]
    # Latencies scale with machine slowness, throughput inversely.
    base_p50 = base["job_latency_p50"] / baseline["calibration_seconds"]
    here_p50 = here["job_latency_p50"] / report["calibration_seconds"]
    if here_p50 > base_p50 * tolerance:
        problems.append(
            f"normalized job-latency p50 regression: {here_p50:.2f} > "
            f"{base_p50:.2f} * {tolerance} (baseline {baseline_path})"
        )
    base_jps = base["jobs_per_second"] * baseline["calibration_seconds"]
    here_jps = here["jobs_per_second"] * report["calibration_seconds"]
    if here_jps * tolerance < base_jps:
        problems.append(
            f"normalized jobs/sec regression: {here_jps:.2f} * {tolerance} < "
            f"{base_jps:.2f} (baseline {baseline_path})"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--jobs-per-client", type=int, default=6,
                        help="jobs each client submits (default 6)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: 8 clients x 4 jobs "
                             "(mixed-registry: 12 passes)")
    parser.add_argument("--mixed-registry", action="store_true",
                        help="run the sharded-dispatcher vs serial-baseline "
                             "sweep over one task per registry code instead "
                             "of the concurrent load test")
    parser.add_argument("--lanes", type=int, default=4,
                        help="dispatcher lanes for the sharded side of "
                             "--mixed-registry (default 4)")
    parser.add_argument("--per-spec", type=int, default=40,
                        help="timed passes over the mixed-registry workload "
                             "(default 40)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required sharded/serial jobs-per-second ratio "
                             "in --mixed-registry (default 1.5)")
    parser.add_argument("--faults", choices=["off", "armed"], default=None,
                        help="add the fault-hook overhead column: 'off' "
                             "measures the shipped disarmed-hook path and "
                             "reports its normalized jobs/sec overhead vs "
                             "the committed baseline; 'armed' additionally "
                             "serves under a live plan whose rules never "
                             "fire (hook accounting, no injections)")
    parser.add_argument("--output", default="BENCH_service.json",
                        help="where to write the JSON report")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail on latency/throughput regression vs this baseline")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed normalized ratio vs baseline")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and write the report without gating")
    args = parser.parse_args(argv)

    if args.mixed_registry:
        return main_mixed_registry(args)

    clients = args.clients
    jobs_per_client = 4 if args.quick else args.jobs_per_client

    report = {
        "schema": 1,
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_seconds": calibrate(),
        "load": run_load(clients, jobs_per_client),
    }
    load = report["load"]
    if args.faults is not None:
        report["fault_hooks"] = fault_hook_column(report, args)
    print(
        f"{load['jobs_completed']}/{load['jobs_expected']} jobs in "
        f"{load['busy_seconds']:.2f}s  "
        f"{load['jobs_per_second']:.1f} jobs/s  "
        f"latency p50 {1e3 * load['job_latency_p50']:.1f}ms "
        f"p99 {1e3 * load['job_latency_p99']:.1f}ms  "
        f"submit p50 {1e3 * load['submit_latency_p50']:.2f}ms  "
        f"{load['events_streamed']} events, "
        f"{len(load['stream_errors'])} stream errors, "
        f"{load['rejected_429']} rejections"
    )
    if args.faults is not None:
        hooks = report["fault_hooks"]
        if "baseline" in hooks:
            print(
                f"fault hooks (disarmed) overhead vs baseline: "
                f"{hooks['baseline']['disarmed_overhead_percent']:+.1f}% jobs/s"
            )
        if "armed_idle" in hooks:
            print(
                f"fault hooks (armed, idle plan): "
                f"{hooks['armed_idle']['jobs_per_second']:.1f} jobs/s "
                f"({hooks['armed_idle']['armed_overhead_percent']:+.1f}%)"
            )

    problems: list[str] = []
    if load["stream_errors"]:
        problems.append(f"stream validation failed: {load['stream_errors'][:3]}")
    if load["client_errors"]:
        problems.append(f"client errors: {load['client_errors'][:3]}")
    if load["jobs_completed"] != load["jobs_expected"]:
        problems.append(
            f"only {load['jobs_completed']}/{load['jobs_expected']} jobs completed"
        )
    if args.check_baseline:
        if not os.path.exists(args.check_baseline):
            problems.append(f"missing baseline file: {args.check_baseline}")
        else:
            problems.extend(
                check_baseline(report, args.check_baseline, args.tolerance)
            )

    report["problems"] = problems
    report["passed"] = not problems
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    if problems and not args.no_assert:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    return 0


def main_mixed_registry(args) -> int:
    per_spec = 12 if args.quick else args.per_spec
    report = {
        "schema": 1,
        "mode": "mixed-registry",
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_seconds": calibrate(),
        "mixed_registry": run_mixed_registry(per_spec, args.lanes),
    }
    mixed = report["mixed_registry"]
    serial, sharded = mixed["serial"], mixed["sharded"]
    print(
        f"serial   (1 lane, no warm start, 2-conn): "
        f"{serial['jobs_per_second']:.1f} jobs/s  "
        f"p50 {1e3 * serial['job_latency_p50']:.2f}ms"
    )
    print(
        f"sharded  ({sharded['lanes']} lanes, warm start, keep-alive): "
        f"{sharded['jobs_per_second']:.1f} jobs/s  "
        f"p50 {1e3 * sharded['job_latency_p50']:.2f}ms  "
        f"absorbed {sharded['family_absorbed']} clauses"
    )
    print(
        f"speedup {mixed['speedup']:.2f}x  "
        f"verdicts {'match' if mixed['verdicts_match'] else 'DIVERGE'}"
    )

    problems: list[str] = []
    if not mixed["verdicts_match"]:
        problems.append(
            f"sharded verdicts diverge from serial: "
            f"serial={serial['verdicts']} sharded={sharded['verdicts']}"
        )
    if mixed["speedup"] < args.min_speedup:
        problems.append(
            f"speedup {mixed['speedup']:.2f}x below required "
            f"{args.min_speedup}x"
        )
    if sharded["family_absorbed"] <= 0:
        problems.append("family warm start absorbed no clauses")
    if args.check_baseline:
        if not os.path.exists(args.check_baseline):
            problems.append(f"missing baseline file: {args.check_baseline}")
        else:
            problems.extend(
                check_dispatch_baseline(report, args.check_baseline, args.tolerance)
            )

    report["problems"] = problems
    report["passed"] = not problems
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    if problems and not args.no_assert:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
