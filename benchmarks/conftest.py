"""Benchmark configuration: in-tree imports plus shared fixtures and helpers.

Every benchmark prints the rows/series of the table or figure it reproduces
(paper scale is noted in EXPERIMENTS.md; the distances here are scaled down
to laptop size, preserving the shape of the results).
"""

import pathlib
import sys

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture(scope="session")
def engine():
    from repro.api import Engine

    return Engine()


@pytest.fixture(scope="session")
def verifier():
    from repro.verifier import VeriQEC

    return VeriQEC()
