"""Ablation: program-logic route vs. direct code-level encoding.

The paper's contribution is the program-logic route (wp + VC reduction); a
natural baseline is encoding the code-level correctness condition directly
(Section 7's general verification).  Both decide the same property of the
Steane code; this benchmark compares their cost.
"""

from repro.codes import steane_code
from repro.vc.pipeline import verify_triple
from repro.verifier import VeriQEC
from repro.verifier.programs import correction_triple


def test_direct_code_level_encoding(benchmark):
    verifier = VeriQEC()
    report = benchmark(lambda: verifier.verify_correction(steane_code(), error_model="Y"))
    assert report.verified
    print(f"\n[ablation-vc] direct encoding: {report.num_variables} vars, "
          f"{report.elapsed_seconds:.3f}s")


def test_program_logic_route(benchmark):
    scenario = correction_triple(steane_code(), error="Y", max_errors=1)

    def task():
        return verify_triple(scenario.triple, decoder_condition=scenario.decoder_condition)

    report = benchmark(task)
    assert report.verified
    print(f"\n[ablation-vc] program-logic route: {report.num_variables} vars, "
          f"{report.elapsed_seconds:.3f}s")
