"""Ablation: program-logic route vs. direct code-level encoding.

The paper's contribution is the program-logic route (wp + VC reduction); a
natural baseline is encoding the code-level correctness condition directly
(Section 7's general verification).  Both decide the same property of the
Steane code; this benchmark compares their cost through the same engine.
"""

from repro.api import CorrectionTask, Engine, ProgramTask
from repro.codes import steane_code
from repro.verifier.programs import correction_triple


def test_direct_code_level_encoding(benchmark):
    task = CorrectionTask(code="steane", error_model="Y")
    result = benchmark(lambda: Engine().run(task))
    assert result.verified
    print(f"\n[ablation-vc] direct encoding: {result.num_variables} vars, "
          f"{result.elapsed_seconds:.3f}s")


def test_program_logic_route(benchmark):
    scenario = correction_triple(steane_code(), error="Y", max_errors=1)
    task = ProgramTask(triple=scenario.triple, decoder_condition=scenario.decoder_condition)

    result = benchmark(lambda: Engine().run(task))
    assert result.verified
    print(f"\n[ablation-vc] program-logic route: {result.num_variables} vars, "
          f"{result.elapsed_seconds:.3f}s")
