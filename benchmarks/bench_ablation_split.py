"""Ablation: the task-splitting heuristic E_T = 2d*N(ones) + N(bits).

DESIGN.md calls out the enumeration heuristic of Appendix D.4 as a design
choice; this ablation compares the heuristic threshold used by the tool
against no splitting and against a much finer splitting, on a d = 3 surface
code correction query.
"""

import pytest

from repro.classical.expr import BoolVar
from repro.codes import rotated_surface_code
from repro.smt.parallel import ParallelChecker
from repro.verifier.encodings import ErrorModel, accurate_correction_formula

CONFIGS = {
    "no-splitting": dict(split=False, threshold=None),
    "paper-heuristic": dict(split=True, threshold=9),
    "fine-splitting": dict(split=True, threshold=14),
}


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_ablation_split_heuristic(benchmark, config):
    code = rotated_surface_code(3)
    formula = accurate_correction_formula(code, error_model=ErrorModel("Y"))
    options = CONFIGS[config]

    def task():
        checker = ParallelChecker(
            formula,
            split_variables=[f"e_{q}" for q in range(code.num_qubits)] if options["split"] else [],
            heuristic_weight=2 * 3,
            threshold=options["threshold"],
            num_workers=1,
        )
        return checker.run()

    result = benchmark(task)
    assert result.is_unsat
    print(
        f"\n[ablation-split] {config}: {result.metadata.get('num_subtasks', 1)} subtasks, "
        f"{result.elapsed_seconds:.3f}s"
    )
