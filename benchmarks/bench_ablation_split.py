"""Ablation: the task-splitting heuristic E_T = 2d*N(ones) + N(bits).

DESIGN.md calls out the enumeration heuristic of Appendix D.4 as a design
choice; this ablation compares the heuristic threshold used by the tool
against no splitting and against a much finer splitting, on a d = 3 surface
code correction query.  The configurations are expressed as backends over
the same compiled task: the serial backend (no splitting) and parallel
backends with overridden thresholds.
"""

import pytest

from repro.api import CorrectionTask, Engine, ParallelBackend, SerialBackend

CONFIGS = {
    "no-splitting": SerialBackend(),
    "paper-heuristic": ParallelBackend(num_workers=1, threshold=9),
    "fine-splitting": ParallelBackend(num_workers=1, threshold=14),
}


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_ablation_split_heuristic(benchmark, config):
    task = CorrectionTask(code="surface-3", error_model="Y")

    result = benchmark(lambda: Engine(backend=CONFIGS[config]).run(task))
    assert result.verified
    print(
        f"\n[ablation-split] {config}: {result.details.get('num_subtasks', 1)} subtasks, "
        f"{result.elapsed_seconds:.3f}s"
    )
