"""Table 3: the benchmark of verified stabilizer codes.

Every registered code is verified against its target property — accurate
correction for the odd-distance codes, precise detection for the distance-2
codes and the large CSS constructions — and the per-code verification time is
printed in the same layout as Table 3.
"""

import pytest

from repro.codes import CODE_REGISTRY, build_code
from repro.verifier import VeriQEC


@pytest.mark.parametrize("key", sorted(CODE_REGISTRY))
def test_table3_row(benchmark, key):
    entry = CODE_REGISTRY[key]
    code = build_code(key)
    verifier = VeriQEC()

    def task():
        if entry.target == "correction":
            return verifier.verify_correction(code)
        trial = code.distance if code.distance and code.distance >= 2 else 2
        return verifier.verify_detection(code, trial_distance=trial)

    report = benchmark.pedantic(task, rounds=1, iterations=1)
    assert report.verified
    n, k, d = code.parameters
    print(
        f"\n[table3] {entry.paper_name:45s} [[{n},{k},{d}]] target={entry.target:10s} "
        f"verify time {report.elapsed_seconds:.3f}s"
    )
