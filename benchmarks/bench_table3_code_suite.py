"""Table 3: the benchmark of verified stabilizer codes.

Every registered code is verified against its target property — accurate
correction for the odd-distance codes, precise detection for the distance-2
codes and the large CSS constructions — through the task API's registry
sweep, and the per-code verification time is printed in the same layout as
Table 3.  A final batch run times the whole sweep through
``Engine.run_many``.
"""

import pytest

from repro.api import Engine, registry_sweep_tasks
from repro.codes import CODE_REGISTRY, build_code

SWEEP_TASKS = {task.code: task for task in registry_sweep_tasks()}


@pytest.mark.parametrize("key", sorted(CODE_REGISTRY))
def test_table3_row(benchmark, engine, key):
    entry = CODE_REGISTRY[key]
    code = build_code(key)
    task = SWEEP_TASKS[key]

    result = benchmark.pedantic(lambda: engine.run(task), rounds=1, iterations=1)
    assert result.verified
    n, k, d = code.parameters
    print(
        f"\n[table3] {entry.paper_name:45s} [[{n},{k},{d}]] target={entry.target:10s} "
        f"verify time {result.elapsed_seconds:.3f}s"
    )


def test_table3_batch_sweep(benchmark):
    """The whole registry as one batch through the engine's process pool."""
    engine = Engine()
    results = benchmark.pedantic(
        lambda: engine.run_many(registry_sweep_tasks(), processes=2), rounds=1, iterations=1
    )
    assert all(result.verified for result in results)
    total = sum(result.elapsed_seconds for result in results)
    print(f"\n[table3] batch sweep: {len(results)} codes, sum of task times {total:.3f}s")
