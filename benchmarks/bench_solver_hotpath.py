"""Solver hot-path benchmark: the permanent perf trajectory for the SAT core.

Runs a fixed registry workload — accurate correction, precise detection and
binary-search distance discovery on steane / surface-3 / surface-5, serial
and pooled — through the public :class:`repro.api.Engine`, and writes a
``BENCH_solver.json`` report with wall-clock, conflict / decision /
propagation counts, decisions-per-second and per-solve decision-cost
percentiles.  Future PRs append to this trajectory instead of inventing a
new harness.

Two uses:

* **Policy comparison** (``--policies heap,linear``): runs the workload once
  per decision policy (``REPRO_DECISION_POLICY`` is exported before each run
  so pool workers inherit it), asserts the heap policy wins on
  decisions-per-second (>= ``--min-speedup``, default 2.0, on the largest
  distance workload) and on total wall-clock, and asserts the
  timing-stripped answers are identical across policies.
* **Regression gate** (``--check-baseline benchmarks/baselines/solver.json``):
  compares this run's calibration-normalized wall-clock against a committed
  baseline and fails on a > ``--tolerance`` (default 1.2x) regression.
  Normalizing by a fixed pure-python calibration loop makes the committed
  numbers portable across machine speeds.

CI runs ``--quick`` (steane + surface-3, no surface-5) to stay small; the
full run is what produces the committed ``BENCH_solver.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

# The harness churns through many short-lived worker pools; create them from
# a clean forkserver so a fork can never inherit the harness's own helper
# threads mid-operation (see repro.smt.parallel._pool_context).
os.environ.setdefault("REPRO_MP_CONTEXT", "forkserver")

QUICK_CODES = ("steane", "surface-3")
FULL_CODES = ("steane", "surface-3", "surface-5")

#: Fields of a Result dict whose values depend on wall-clock measurement,
#: plus the runtime-statistics sections ("session" / "resources") whose keys
#: legitimately differ across decision policies (e.g. heap_discards only
#: exists under the heap policy).  Stripped before cross-policy answer
#: comparison (mirrors repro.api.events.TIMING_FIELDS for event streams);
#: everything left — verdicts, counterexamples, distances, per-trial
#: conflict/decision counts — must be byte-identical across policies.
TIMING_KEYS = frozenset({"elapsed_seconds", "compile_seconds", "session", "resources"})


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def calibrate() -> float:
    """Seconds for a fixed pure-python workload; the machine-speed yardstick."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        total = 0
        for i in range(1_500_000):
            total += i * i
        best = min(best, time.perf_counter() - start)
    return best


def _strip_timing(value):
    if isinstance(value, dict):
        return {
            key: _strip_timing(item)
            for key, item in value.items()
            if key not in TIMING_KEYS
        }
    if isinstance(value, list):
        return [_strip_timing(item) for item in value]
    return value


def build_workloads(codes: tuple[str, ...], pooled: bool) -> list[dict]:
    """The fixed workload registry: (name, task, backend) descriptors."""
    from repro.api import CorrectionTask, DetectionTask, DistanceTask

    workloads: list[dict] = []
    for code in codes:
        workloads.append({
            "name": f"correction:{code}",
            "task": CorrectionTask(code=code),
            "backend": None,
        })
        workloads.append({
            "name": f"detection:{code}",
            "task": DetectionTask(code=code, trial_distance=3),
            "backend": None,
        })
        workloads.append({
            "name": f"distance:{code}",
            "task": DistanceTask(code=code),
            "backend": None,
        })
    if pooled:
        # One pooled distance walk exercises the persistent worker pools
        # (per-worker live sessions, guard broadcast) under the new watcher
        # and heap structures.
        code = codes[-1]
        workloads.append({
            "name": f"distance-pooled:{code}",
            "task": DistanceTask(code=code),
            "backend": "pooled",
        })
    return workloads


def _decision_samples(result) -> list[tuple[float, int]]:
    """(solve_seconds, decisions) pairs for every solver call in a result.

    Distance walks report per-probe timings; one-shot tasks report their
    solve time net of compilation, so decisions-per-second measures the
    solver, not the encoder.
    """
    trials = result.details.get("trials")
    if trials:
        return [
            (trial.get("elapsed_seconds", 0.0), trial.get("decisions", 0))
            for trial in trials
        ]
    solve = max(result.elapsed_seconds - result.compile_seconds, 0.0)
    return [(solve, result.decisions)]


def run_policy(policy: str, codes: tuple[str, ...], pooled: bool) -> dict:
    """Run the full workload once under one decision policy."""
    if policy == "seed":
        os.environ.pop("REPRO_DECISION_POLICY", None)
    else:
        os.environ["REPRO_DECISION_POLICY"] = policy
    from repro.api import Engine, ParallelBackend

    engine = Engine()
    workloads = build_workloads(codes, pooled)
    report: dict = {"workloads": {}, "answers": {}}
    decision_us: list[float] = []
    total_wall = 0.0
    total_solve = 0.0
    total_decisions = 0
    try:
        for spec in workloads:
            backend = ParallelBackend(num_workers=2) if spec["backend"] else None
            start = time.perf_counter()
            result = engine.run(spec["task"], backend=backend)
            wall = time.perf_counter() - start
            samples = _decision_samples(result)
            solve_seconds = sum(elapsed for elapsed, _ in samples)
            per_call_us = [
                 1e6 * elapsed / decisions
                 for elapsed, decisions in samples
                 if decisions > 0
            ]
            decision_us.extend(per_call_us)
            total_wall += wall
            total_solve += solve_seconds
            total_decisions += result.decisions
            report["workloads"][spec["name"]] = {
                "wall_seconds": wall,
                "solve_seconds": solve_seconds,
                "conflicts": result.conflicts,
                "decisions": result.decisions,
                "propagations": result.propagations,
                "decisions_per_second": (
                    result.decisions / solve_seconds if solve_seconds > 0 else 0.0
                ),
                "decision_us_p50": _percentile(per_call_us, 0.50),
                "decision_us_p90": _percentile(per_call_us, 0.90),
                "pooled": bool(spec["backend"]),
                "decision_us_samples": per_call_us,
            }
            report["answers"][spec["name"]] = _strip_timing(result.to_dict())
    finally:
        engine.close()
        os.environ.pop("REPRO_DECISION_POLICY", None)
    report["total_wall_seconds"] = total_wall
    report["total_solve_seconds"] = total_solve
    report["total_decisions"] = total_decisions
    report["decisions_per_second"] = (
        total_decisions / total_solve if total_solve > 0 else 0.0
    )
    report["decision_us_p50"] = _percentile(decision_us, 0.50)
    report["decision_us_p90"] = _percentile(decision_us, 0.90)
    report["decision_us_p99"] = _percentile(decision_us, 0.99)
    return report


def merge_repeats(repeats: list[dict]) -> dict:
    """Best-of-N merge: per workload, keep the repeat with the least solve
    time (the standard noise-robust estimator for a deterministic workload);
    totals and percentiles are recomputed over the kept rows.  Answers come
    from the first repeat."""
    merged: dict = {"workloads": {}, "answers": repeats[0]["answers"]}
    decision_us: list[float] = []
    total_wall = total_solve = 0.0
    total_decisions = 0
    for name in repeats[0]["workloads"]:
        best = min(
            (repeat["workloads"][name] for repeat in repeats),
            key=lambda row: row["solve_seconds"],
        )
        merged["workloads"][name] = best
        decision_us.extend(best["decision_us_samples"])
        total_wall += best["wall_seconds"]
        total_solve += best["solve_seconds"]
        total_decisions += best["decisions"]
    merged["total_wall_seconds"] = total_wall
    merged["total_solve_seconds"] = total_solve
    merged["total_decisions"] = total_decisions
    merged["decisions_per_second"] = (
        total_decisions / total_solve if total_solve > 0 else 0.0
    )
    merged["decision_us_p50"] = _percentile(decision_us, 0.50)
    merged["decision_us_p90"] = _percentile(decision_us, 0.90)
    merged["decision_us_p99"] = _percentile(decision_us, 0.99)
    return merged


def _serial_answers(report: dict) -> dict:
    """Answers of the serial workloads only: a pooled run's witness and
    stats legitimately depend on worker scheduling, so only the serial
    workloads are required to be byte-identical across decision policies."""
    return {
        name: answer
        for name, answer in report["answers"].items()
        if not report["workloads"][name]["pooled"]
    }


def compare_policies(reports: dict[str, dict], codes: tuple[str, ...]) -> dict:
    """Heap-vs-fallback ratios on the shared workload set."""
    if "heap" not in reports:
        return {}
    heap = reports["heap"]
    other_name = next((name for name in ("linear", "seed") if name in reports), None)
    if other_name is None:
        return {}
    other = reports[other_name]
    distance_key = f"distance:{codes[-1]}"
    comparison = {
        "baseline_policy": other_name,
        "distance_workload": distance_key,
        "distance_decisions_per_second_speedup": _ratio(
            heap["workloads"][distance_key]["decisions_per_second"],
            other["workloads"][distance_key]["decisions_per_second"],
        ),
        "total_wallclock_speedup": _ratio(
            other["total_wall_seconds"], heap["total_wall_seconds"]
        ),
        "decisions_per_second_speedup": _ratio(
            heap["decisions_per_second"], other["decisions_per_second"]
        ),
        "answers_identical": _serial_answers(heap) == _serial_answers(other),
    }
    return comparison


def compare_with_seed_capture(report: dict, seed_path: str, codes) -> dict:
    """Decisions-per-second speedup vs a committed pre-overhaul capture.

    The capture carries its own calibration time; normalizing by the
    calibration ratio makes the comparison meaningful when the capture was
    taken on a different machine (ratio 1 when same machine).
    """
    with open(seed_path, "r", encoding="utf-8") as handle:
        seed = json.load(handle)
    seed_policy = next(iter(seed.get("policies", {}).values()), None)
    here = report.get("policies", {}).get("heap")
    if not seed_policy or not here:
        return {}
    machine_ratio = seed["calibration_seconds"] / report["calibration_seconds"]
    rows = {}
    for name, row in here["workloads"].items():
        seed_row = seed_policy["workloads"].get(name)
        if seed_row is None or row["pooled"]:
            continue
        rows[name] = _ratio(
            row["decisions_per_second"],
            seed_row["decisions_per_second"] * machine_ratio,
        )
    distance_key = f"distance:{codes[-1]}"
    return {
        "seed_capture": seed_path,
        "machine_speed_ratio": machine_ratio,
        "distance_workload": distance_key,
        "distance_decisions_per_second_speedup": rows.get(distance_key, 0.0),
        "decisions_per_second_speedup_by_workload": rows,
    }


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator > 0 else 0.0


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    """Calibration-normalized wall-clock gate against a committed baseline."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    problems: list[str] = []
    base_policy = baseline.get("policies", {}).get("heap")
    here_policy = report.get("policies", {}).get("heap")
    if not base_policy or not here_policy:
        return [f"baseline {baseline_path} or this run lacks a heap policy section"]
    base_norm = base_policy["total_wall_seconds"] / baseline["calibration_seconds"]
    here_norm = here_policy["total_wall_seconds"] / report["calibration_seconds"]
    if here_norm > base_norm * tolerance:
        problems.append(
            f"normalized wall-clock regression: {here_norm:.2f} > "
            f"{base_norm:.2f} * {tolerance} (baseline {baseline_path})"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload (steane + surface-3, no pooled run)")
    parser.add_argument("--policies", default="heap,linear",
                        help="comma list of decision policies to run "
                             "(heap, linear, seed)")
    parser.add_argument("--output", default="BENCH_solver.json",
                        help="where to write the JSON report")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail on wall-clock regression vs this baseline")
    parser.add_argument("--tolerance", type=float, default=1.2,
                        help="allowed normalized wall-clock ratio vs baseline")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required decisions/s speedup vs the committed "
                             "pre-overhaul capture on the largest distance "
                             "workload")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved repeats per policy; each workload "
                             "keeps its fastest repeat (noise robustness)")
    parser.add_argument("--seed-baseline", default=None, metavar="PATH",
                        help="pre-overhaul capture to compute the speedup "
                             "against (default: benchmarks/baselines/"
                             "solver_seed.json when present)")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and write the report without gating")
    args = parser.parse_args(argv)

    codes = QUICK_CODES if args.quick else FULL_CODES
    pooled = not args.quick
    policies = [policy.strip() for policy in args.policies.split(",") if policy.strip()]
    seed_baseline = args.seed_baseline
    if seed_baseline is None:
        default_seed = pathlib.Path(__file__).parent / "baselines" / "solver_seed.json"
        if default_seed.exists():
            # Keep the recorded path portable: the report is committed.
            seed_baseline = os.path.relpath(default_seed)

    report: dict = {
        "schema": 1,
        "quick": args.quick,
        "codes": list(codes),
        "repeats": args.repeats,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_seconds": calibrate(),
        "policies": {},
    }
    # Interleave the repeats across policies so slow drift (thermal /
    # frequency scaling / co-tenancy) hits every policy equally instead of
    # biasing whichever ran last.
    runs: dict[str, list[dict]] = {policy: [] for policy in policies}
    for repeat in range(max(1, args.repeats)):
        for policy in policies:
            print(
                f"== policy {policy} repeat {repeat + 1}/{max(1, args.repeats)}"
                f" ({', '.join(codes)}) ==",
                flush=True,
            )
            runs[policy].append(run_policy(policy, codes, pooled))
    for policy in policies:
        policy_report = merge_repeats(runs[policy])
        report["policies"][policy] = policy_report
        for name, row in policy_report["workloads"].items():
            print(
                f"  {name:28s} {row['wall_seconds']:8.3f}s"
                f" {row['decisions']:8d} dec"
                f" {row['decisions_per_second']:10.0f} dec/s"
                f" p50 {row['decision_us_p50']:7.1f}us"
            )
        print(
            f"  [{policy}] {'TOTAL':24s} {policy_report['total_wall_seconds']:8.3f}s"
            f" {policy_report['total_decisions']:8d} dec"
            f" {policy_report['decisions_per_second']:10.0f} dec/s"
        )

    comparison = compare_policies(report["policies"], codes)
    if comparison:
        report["comparison"] = comparison
        print(
            f"speedup vs {comparison['baseline_policy']}: "
            f"{comparison['distance_decisions_per_second_speedup']:.2f}x dec/s on "
            f"{comparison['distance_workload']}, "
            f"{comparison['total_wallclock_speedup']:.2f}x total wall-clock, "
            f"answers identical: {comparison['answers_identical']}"
        )

    seed_comparison = {}
    if seed_baseline and os.path.exists(seed_baseline) and "heap" in report["policies"]:
        seed_comparison = compare_with_seed_capture(report, seed_baseline, codes)
        if seed_comparison:
            report["seed_comparison"] = seed_comparison
            print(
                f"speedup vs pre-overhaul capture: "
                f"{seed_comparison['distance_decisions_per_second_speedup']:.2f}x "
                f"dec/s on {seed_comparison['distance_workload']}"
            )

    # The answers section is large and fully determined by the workload; the
    # committed report keeps only the cross-policy verdict.  The raw
    # decision-cost samples collapse to their percentiles.
    for policy_report in report["policies"].values():
        policy_report.pop("answers", None)
        for row in policy_report["workloads"].values():
            row.pop("decision_us_samples", None)

    problems: list[str] = []
    if comparison and not args.no_assert:
        if not comparison["answers_identical"]:
            problems.append("serial answers differ across decision policies")
        # On the laptop-scale quick workload the policies are within noise
        # of each other, so only a clear overall slowdown fails.
        wallclock_floor = 1.0 if not args.quick else 0.9
        if comparison["total_wallclock_speedup"] <= wallclock_floor:
            problems.append(
                f"heap policy is not faster overall "
                f"({comparison['total_wallclock_speedup']:.2f}x)"
            )
    if seed_comparison and not args.no_assert and not args.quick:
        # The speedup gate is only meaningful on the full workload: the
        # quick set has no surface-5 and its distance walks finish in
        # milliseconds, where the measurement is all noise.
        speedup = seed_comparison["distance_decisions_per_second_speedup"]
        if speedup < args.min_speedup:
            problems.append(
                f"distance decisions/s speedup vs pre-overhaul capture "
                f"{speedup:.2f}x < required {args.min_speedup}x"
            )
    if args.check_baseline:
        if os.path.exists(args.check_baseline):
            problems.extend(check_baseline(report, args.check_baseline, args.tolerance))
        else:
            # A requested-but-missing baseline must fail loudly: a silent
            # skip would leave the CI regression gate green while checking
            # nothing.
            problems.append(f"baseline file not found: {args.check_baseline}")

    report["passed"] = not problems
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
