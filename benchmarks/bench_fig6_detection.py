"""Fig. 6: verifying the precise-detection property of rotated surface codes.

For the true distance the query is unsatisfiable (all sub-distance errors are
detected); for trial distance d+1 the solver returns a minimum-weight
undetectable error, exactly as described in Section 7.1.
"""

import pytest

from repro.codes import rotated_surface_code
from repro.verifier import VeriQEC


@pytest.mark.parametrize("distance", [3, 5])
def test_fig6_detection_at_true_distance(benchmark, distance):
    code = rotated_surface_code(distance)
    verifier = VeriQEC()
    report = benchmark(lambda: verifier.verify_detection(code, trial_distance=distance))
    assert report.verified
    print(f"\n[fig6] d={distance}: d_t={distance} -> unsat in {report.elapsed_seconds:.3f}s")


@pytest.mark.parametrize("distance", [3, 5])
def test_fig6_minimum_weight_logical_error(benchmark, distance):
    code = rotated_surface_code(distance)
    verifier = VeriQEC()
    report = benchmark(lambda: verifier.verify_detection(code, trial_distance=distance + 1))
    assert not report.verified
    assert len(report.counterexample_qubits()) == distance
    print(
        f"\n[fig6] d={distance}: d_t={distance + 1} -> sat, minimum-weight undetectable error on "
        f"qubits {report.counterexample_qubits()}"
    )
