"""Fig. 6: verifying the precise-detection property of rotated surface codes.

For the true distance the query is unsatisfiable (all sub-distance errors are
detected); for trial distance d+1 the solver returns a minimum-weight
undetectable error, exactly as described in Section 7.1.
"""

import pytest

from repro.api import DetectionTask, Engine
from repro.codes import rotated_surface_code


@pytest.mark.parametrize("distance", [3, 5])
def test_fig6_detection_at_true_distance(benchmark, distance):
    code = rotated_surface_code(distance)
    task = DetectionTask(code=code, trial_distance=distance)
    result = benchmark(lambda: Engine().run(task))
    assert result.verified
    print(f"\n[fig6] d={distance}: d_t={distance} -> unsat in {result.elapsed_seconds:.3f}s")


@pytest.mark.parametrize("distance", [3, 5])
def test_fig6_minimum_weight_logical_error(benchmark, distance):
    code = rotated_surface_code(distance)
    task = DetectionTask(code=code, trial_distance=distance + 1)
    result = benchmark(lambda: Engine().run(task))
    assert not result.verified
    assert len(result.counterexample_qubits()) == distance
    print(
        f"\n[fig6] d={distance}: d_t={distance + 1} -> sat, minimum-weight undetectable error on "
        f"qubits {result.counterexample_qubits()}"
    )
