"""Binary-search distance discovery vs the linear trial-distance walk.

Both strategies run on ONE incremental session over the trial-independent
detection base (the PR-2 machinery); the only difference is the search
policy.  The linear walk activates ``weight <= t - 1`` for t = 2, 3, ...
until the first satisfiable probe, so it issues ``d`` solver calls for a
distance-``d`` code — and every one of the UNSAT calls below the distance is
expensive.  The binary search brackets the minimum undetectable-error weight
with guarded ``lo <= weight <= mid`` windows, clamping the upper end to the
witness's actual weight on SAT, so it issues O(log d) calls.

This benchmark asserts, on a distance >= 5 code (the d=5 rotated surface
code), that the binary search issues STRICTLY FEWER solver calls and takes
less wall-clock than the linear walk — the acceptance criterion of the
resource-layer rework.  Solver-call counts are deterministic, so they are
compared exactly; wall-clock is compared best-of-N with slack on CI runners.
"""

import os
import time

import pytest

from repro.api import DistanceTask, Engine
from repro.codes.registry import build_code
from repro.smt.interface import SolveSession
from repro.verifier.encodings import ErrorModel, precise_detection_base

REPEATS = 5


def linear_session_walk(code, max_trial):
    """The PR-2 strategy: one incremental session, trial distances walked
    linearly through selector-guarded upper weight bounds."""
    base, weight = precise_detection_base(code, ErrorModel("any"))
    session = SolveSession(base)
    distance = max_trial
    calls = 0
    conflicts = 0
    for trial in range(2, max_trial + 1):
        selector = session.add_weight_guard(f"trial_{trial}", weight, trial - 1)
        check = session.check(select=(selector,))
        calls += 1
        conflicts += check.conflicts
        if check.is_sat:
            distance = trial - 1
            break
    return distance, calls, conflicts


def best_of(repeats, run):
    best = None
    payload = None
    for _ in range(repeats):
        start = time.perf_counter()
        payload = run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, payload


@pytest.mark.parametrize("key,max_trial,expected_distance", [("surface-5", 6, 5)])
def test_binary_search_beats_linear_walk(key, max_trial, expected_distance):
    code = build_code(key)
    assert (code.distance or 0) >= 5, "the acceptance criterion wants a d>=5 code"

    linear_seconds, (linear_distance, linear_calls, linear_conflicts) = best_of(
        REPEATS, lambda: linear_session_walk(code, max_trial)
    )
    binary_seconds, result = best_of(
        REPEATS, lambda: Engine().run(DistanceTask(code=key, max_trial=max_trial))
    )
    binary_calls = len(result.details["trials"])

    print(
        f"\n[binary-search-distance] {key}: distance={result.details['distance']} "
        f"linear={linear_seconds:.3f}s/{linear_calls} calls/{linear_conflicts} conflicts "
        f"binary={binary_seconds:.3f}s/{binary_calls} calls/{result.conflicts} conflicts"
    )

    assert result.details["distance"] == linear_distance == expected_distance
    assert result.details["strategy"] == "binary-search"
    # Strictly fewer solver calls — the point of the binary search.
    assert binary_calls < linear_calls
    # On shared CI runners a scheduling burst can distort a sub-100ms
    # measurement, so the strict wall-clock comparison is local-only; CI
    # still fails on a gross (>1.5x) slowdown.
    slack = 1.5 if os.environ.get("CI") else 1.0
    assert binary_seconds < linear_seconds * slack


@pytest.mark.parametrize("key,max_trial,expected_distance", [("steane", 16, 3)])
def test_galloping_beats_bisection_on_wide_spans(key, max_trial, expected_distance):
    """The adaptive search policy: when the span is much wider than the
    distance, the galloping start (1, 2, 4, ...) reaches the answer through
    exponentially spaced CHEAP probes, while plain bisection opens with the
    most expensive query of the walk (the mid-span window).  Probe cost is
    proxied by the activated upper bound (the live width of the unary weight
    counter), which is deterministic; wall-clock is compared with CI slack.
    """
    gallop_seconds, gallop = best_of(
        REPEATS,
        lambda: Engine().run(
            DistanceTask(code=key, max_trial=max_trial, strategy="galloping")
        ),
    )
    bisect_seconds, bisect = best_of(
        REPEATS,
        lambda: Engine().run(
            DistanceTask(code=key, max_trial=max_trial, strategy="binary")
        ),
    )
    auto = Engine().run(DistanceTask(code=key, max_trial=max_trial))

    gallop_bounds = [trial["bound"] for trial in gallop.details["trials"]]
    bisect_bounds = [trial["bound"] for trial in bisect.details["trials"]]
    print(
        f"\n[galloping-distance] {key}: distance={gallop.details['distance']} "
        f"gallop={gallop_seconds:.3f}s/bounds={gallop_bounds} "
        f"bisect={bisect_seconds:.3f}s/bounds={bisect_bounds} "
        f"auto-strategy={auto.details['strategy']}"
    )

    assert gallop.details["distance"] == bisect.details["distance"] == expected_distance
    assert gallop.details["strategy"] == "galloping"
    # The probe-cost heuristic selects galloping on its own for this span.
    assert auto.details["strategy"] == "galloping"
    assert auto.details["distance"] == expected_distance
    # No more solver calls, strictly cheaper probes (smaller activated
    # bounds), and no gross wall-clock regression.
    assert len(gallop_bounds) <= len(bisect_bounds)
    assert sum(gallop_bounds) < sum(bisect_bounds)
    slack = 1.5 if os.environ.get("CI") else 1.2
    assert gallop_seconds < bisect_seconds * slack
