"""Fig. 4: verifying accurate decoding and correction for rotated surface codes.

The paper reports total runtime against the code distance for the sequential
and parallel strategies (up to d = 11 on 250 cores).  Here the same
verification runs at laptop scale (d = 3 and d = 5, single-qubit Pauli error
model) as one ``CorrectionTask`` decided by the serial and the task-splitting
backends, and the series of runtimes is printed so the scaling shape can be
compared.
"""

import pytest

from repro.api import CorrectionTask, Engine, ParallelBackend
from repro.codes import rotated_surface_code


@pytest.mark.parametrize("distance", [3, 5])
def test_fig4_sequential(benchmark, distance):
    code = rotated_surface_code(distance)
    task = CorrectionTask(code=code, error_model="Y")
    # A fresh engine per iteration keeps compile cost in the timing, matching
    # the legacy per-call encoding the paper's runtime figures include.
    result = benchmark(lambda: Engine().run(task))
    assert result.verified
    print(
        f"\n[fig4] d={distance} n={code.num_qubits} sequential: "
        f"{result.elapsed_seconds:.3f}s vars={result.num_variables} conflicts={result.conflicts}"
    )


@pytest.mark.parametrize("distance", [3, 5])
def test_fig4_with_task_splitting(benchmark, distance):
    code = rotated_surface_code(distance)
    task = CorrectionTask(code=code, error_model="Y")
    result = benchmark(lambda: Engine(backend=ParallelBackend(num_workers=2)).run(task))
    assert result.verified
    print(
        f"\n[fig4] d={distance} n={code.num_qubits} split ({result.details.get('num_subtasks', 1)} "
        f"subtasks): {result.elapsed_seconds:.3f}s"
    )


def test_fig4_general_error_model_d3(benchmark):
    """The unrestricted (arbitrary Pauli per qubit) model of the paper, d=3."""
    task = CorrectionTask(code="surface-3", error_model="any")
    result = benchmark(lambda: Engine().run(task))
    assert result.verified
