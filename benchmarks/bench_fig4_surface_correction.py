"""Fig. 4: verifying accurate decoding and correction for rotated surface codes.

The paper reports total runtime against the code distance for the sequential
and parallel strategies (up to d = 11 on 250 cores).  Here the same
verification runs at laptop scale (d = 3 and d = 5, single-qubit Pauli error
model), in both the single-query and the task-splitting modes, and the series
of runtimes is printed so the scaling shape can be compared.
"""

import pytest

from repro.codes import rotated_surface_code
from repro.verifier import VeriQEC


@pytest.mark.parametrize("distance", [3, 5])
def test_fig4_sequential(benchmark, distance):
    code = rotated_surface_code(distance)
    verifier = VeriQEC()
    report = benchmark(lambda: verifier.verify_correction(code, error_model="Y"))
    assert report.verified
    print(
        f"\n[fig4] d={distance} n={code.num_qubits} sequential: "
        f"{report.elapsed_seconds:.3f}s vars={report.num_variables} conflicts={report.conflicts}"
    )


@pytest.mark.parametrize("distance", [3, 5])
def test_fig4_with_task_splitting(benchmark, distance):
    code = rotated_surface_code(distance)
    verifier = VeriQEC(num_workers=2)
    report = benchmark(lambda: verifier.verify_correction(code, error_model="Y", parallel=True))
    assert report.verified
    print(
        f"\n[fig4] d={distance} n={code.num_qubits} split ({report.details.get('num_subtasks', 1)} "
        f"subtasks): {report.elapsed_seconds:.3f}s"
    )


def test_fig4_general_error_model_d3(benchmark):
    """The unrestricted (arbitrary Pauli per qubit) model of the paper, d=3."""
    code = rotated_surface_code(3)
    verifier = VeriQEC()
    report = benchmark(lambda: verifier.verify_correction(code, error_model="any"))
    assert report.verified
