"""Non-Pauli (T and H) errors on the Steane code (Section 5.2.2, Appendix C.2).

Non-Clifford errors take stabilizer generators to linear combinations of
Paulis, which is exactly the case the non-commuting heuristic of Section 5.1
handles: offending atoms are repaired by multiplying in derived generators
and the remaining measurement atoms are eliminated.  The script verifies a
single fixed T error and a single fixed H error injected after a transversal
logical H, for every qubit position, batching all positions through
``Engine.run_many``.
"""

from repro.api import Engine, ProgramTask
from repro.classical.parity import ParityExpr
from repro.codes import steane_code
from repro.hoare.triple import HoareTriple
from repro.lang.ast import Unitary, sequence
from repro.logic.assertion import conjunction, pauli_atom
from repro.verifier.programs import (
    decoder_call_and_correction,
    min_weight_decoder_condition,
    syndrome_measurement,
    transversal_gate,
)


def fixed_error_triple(code, error_gate: str, qubit: int) -> HoareTriple:
    phase = ParityExpr.of_variable("b")
    program = sequence(
        transversal_gate(code, "H"),
        Unitary(error_gate, (qubit,)),
        syndrome_measurement(code),
        decoder_call_and_correction(code),
    )
    precondition = conjunction(
        [pauli_atom(g) for g in code.stabilizers] + [pauli_atom(code.logical_xs[0], phase)]
    )
    postcondition = conjunction(
        [pauli_atom(g) for g in code.stabilizers] + [pauli_atom(code.logical_zs[0], phase)]
    )
    return HoareTriple(
        precondition, program, postcondition, name=f"steane-{error_gate}-q{qubit + 1}"
    )


def main() -> None:
    code = steane_code()
    engine = Engine()
    decoder_condition = min_weight_decoder_condition(code, max_corrections=1)

    for error_gate in ("T", "H"):
        print(f"== Single fixed {error_gate} error after the logical Hadamard ==")
        tasks = [
            ProgramTask(
                triple=fixed_error_triple(code, error_gate, qubit),
                decoder_condition=decoder_condition,
            )
            for qubit in range(code.num_qubits)
        ]
        for qubit, report in enumerate(engine.run_many(tasks)):
            status = "verified" if report.verified else "COUNTEREXAMPLE"
            print(f"   {error_gate} on qubit {qubit + 1}: {status} ({report.elapsed_seconds:.3f}s)")


if __name__ == "__main__":
    main()
