"""Rotated surface codes: general and user-constrained verification.

Scaled-down reproduction of the Section 7.1/7.2 experiments through the task
API: for distances 3 and 5 the script verifies accurate correction and
precise detection, then shows how the user-provided locality and
discreteness constraints shrink the verification problem (the paper's route
to 361-qubit codes).
"""

from repro.api import ConstrainedTask, CorrectionTask, DetectionTask, Engine
from repro.codes import rotated_surface_code, xzzx_surface_code


def main() -> None:
    engine = Engine()

    for distance in (3, 5):
        code = rotated_surface_code(distance)
        print(f"== Rotated surface code d={distance} ({code.num_qubits} qubits) ==")
        correction = engine.run(CorrectionTask(code=code, error_model="Y"))
        print("  ", correction.summary())
        detection = engine.run(DetectionTask(code=code, trial_distance=distance))
        print("  ", detection.summary())
        undetectable = engine.run(DetectionTask(code=code, trial_distance=distance + 1))
        print("  ", undetectable.summary())
        if not undetectable.verified:
            print(
                "   minimum-weight undetectable error found on qubits "
                f"{undetectable.counterexample_qubits()}"
            )

        constrained = engine.run(
            ConstrainedTask(
                code=code, locality=True, discreteness=True, error_model="Y", seed=1
            )
        )
        print("  ", constrained.summary(), f"constraints={constrained.details['constraints']}")

    print("== XZZX surface code d=3 ==")
    xzzx = xzzx_surface_code(3)
    print("  ", engine.run(CorrectionTask(code=xzzx)).summary())


if __name__ == "__main__":
    main()
