"""Quickstart: verify the Steane code with Veri-QEC.

Run with ``python examples/quickstart.py``.  The script exercises the three
basic verification tasks of the paper on the [[7,1,3]] Steane code:

1. accurate decoding and correction for every error configuration of weight
   at most one (general verification, Eqn. 14);
2. precise detection of errors below the code distance, and discovery of the
   distance itself by pushing the trial distance until a minimum-weight
   undetectable error appears (Eqn. 15);
3. bug hunting: over-claiming a correctable weight of two yields a concrete
   counterexample error pattern.
"""

from repro.codes import steane_code
from repro.verifier import VeriQEC


def main() -> None:
    code = steane_code()
    verifier = VeriQEC()
    print(f"Code under verification: {code.describe()}")

    report = verifier.verify_correction(code)
    print(report.summary())

    detection = verifier.verify_detection(code, trial_distance=3)
    print(detection.summary())

    distance = verifier.find_distance(code, max_trial=5)
    print(f"Discovered code distance: {distance}")

    overclaimed = verifier.verify_correction(code, max_errors=2)
    print(overclaimed.summary())
    if not overclaimed.verified:
        print(
            "  counterexample: errors on qubits "
            f"{overclaimed.counterexample_qubits()} defeat a minimum-weight decoder"
        )


if __name__ == "__main__":
    main()
