"""Quickstart: verify the Steane code through the task API.

Run with ``python examples/quickstart.py`` (or try the CLI:
``python -m repro verify --code steane``).  The script exercises the three
basic verification tasks of the paper on the [[7,1,3]] Steane code:

1. accurate decoding and correction for every error configuration of weight
   at most one (general verification, Eqn. 14);
2. precise detection of errors below the code distance, and discovery of the
   distance itself by pushing the trial distance until a minimum-weight
   undetectable error appears (Eqn. 15);
3. bug hunting: over-claiming a correctable weight of two yields a concrete
   counterexample error pattern.
"""

from repro.api import CorrectionTask, DetectionTask, DistanceTask, Engine
from repro.codes import steane_code


def main() -> None:
    code = steane_code()
    engine = Engine()
    print(f"Code under verification: {code.describe()}")

    report = engine.run(CorrectionTask(code="steane"))
    print(report.summary())

    detection = engine.run(DetectionTask(code="steane", trial_distance=3))
    print(detection.summary())

    distance = engine.run(DistanceTask(code="steane", max_trial=5))
    print(f"Discovered code distance: {distance.details['distance']}")

    overclaimed = engine.run(CorrectionTask(code="steane", max_errors=2))
    print(overclaimed.summary())
    if not overclaimed.verified:
        print(
            "  counterexample: errors on qubits "
            f"{overclaimed.counterexample_qubits()} defeat a minimum-weight decoder"
        )

    # The same requests round-trip as JSON, e.g. for a service API.
    print("As JSON:", engine.run(CorrectionTask(code="steane")).to_json())
    # `code` may also be an in-memory StabilizerCode rather than a registry key.
    print(engine.run(CorrectionTask(code=code)).summary())


if __name__ == "__main__":
    main()
