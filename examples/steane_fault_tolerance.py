"""Fault-tolerant scenarios on the Steane code via the program logic.

This example follows Sections 2, 5.2 and 7.3 of the paper: it builds the
error-correction *programs* of Table 1 (not just the code), derives their
weakest preconditions with the proof system of Fig. 3, reduces the resulting
verification conditions to classical formulas and discharges them through
the task API (``ProgramTask`` on an ``Engine``).

Scenarios covered:

* one cycle of error correction with single-qubit Y errors, a transversal
  logical H, and errors propagated from the previous cycle (Eqn. 2);
* fault-tolerant logical GHZ state preparation over three code blocks
  (Fig. 9);
* a transversal logical CNOT with propagated errors followed by error
  correction on both blocks (Fig. 10).
"""

from repro.api import Engine, ProgramTask
from repro.codes import steane_code
from repro.verifier.programs import (
    correction_triple,
    ghz_preparation,
    logical_cnot_with_propagation,
)


def main() -> None:
    code = steane_code()
    engine = Engine()

    print("== One cycle of error correction: Steane(Y, H) with propagated errors ==")
    scenario = correction_triple(
        code, error="Y", logical_gate="H", propagation=True, max_errors=1
    )
    print(f"   {scenario.description}")
    report = engine.run(
        ProgramTask(triple=scenario.triple, decoder_condition=scenario.decoder_condition)
    )
    print("  ", report.summary())

    print("== Bug hunting: claiming two correctable errors ==")
    broken = correction_triple(code, error="Y", max_errors=2)
    report = engine.run(
        ProgramTask(triple=broken.triple, decoder_condition=broken.decoder_condition)
    )
    print("  ", report.summary())

    print("== Fault-tolerant logical GHZ preparation over 3 blocks (21 qubits) ==")
    ghz = ghz_preparation(code, blocks=3)
    report = engine.run(ProgramTask(triple=ghz.triple))
    print("  ", report.summary())

    print("== Logical CNOT with propagated errors (Fig. 10) ==")
    cnot = logical_cnot_with_propagation(code, error="X", max_errors=1)
    report = engine.run(
        ProgramTask(triple=cnot.triple, decoder_condition=cnot.decoder_condition)
    )
    print("  ", report.summary())


if __name__ == "__main__":
    main()
