"""Assertion language semantics tests (Section 3)."""

import numpy as np
import pytest

from repro.classical.expr import BoolVar, IntConst, IntLe, sum_of
from repro.classical.parity import ParityExpr
from repro.logic.assertion import (
    AndAssertion,
    BoolAssertion,
    ImpliesAssertion,
    NotAssertion,
    OrAssertion,
    PauliAssertion,
    conjunction,
    disjunction,
    pauli_atom,
    stabilizer_assertion,
)
from repro.pauli.expr import PauliExpr
from repro.pauli.pauli import PauliOperator


def test_bool_assertion_is_full_or_null_space():
    assertion = BoolAssertion(IntLe(sum_of([BoolVar("e")]), IntConst(0)))
    assert np.allclose(assertion.to_projector({"e": False}, 1), np.eye(2))
    assert np.allclose(assertion.to_projector({"e": True}, 1), np.zeros((2, 2)))


def test_pauli_assertion_is_plus_one_eigenspace():
    assertion = pauli_atom(PauliOperator.from_label("Z"))
    projector = assertion.to_projector({}, 1)
    assert np.allclose(projector, np.diag([1, 0]))


def test_phase_flips_eigenspace():
    assertion = pauli_atom(PauliOperator.from_label("Z"), ParityExpr.of_variable("b"))
    assert np.allclose(assertion.to_projector({"b": 1}, 1), np.diag([0, 1]))


def test_negation_is_orthocomplement():
    atom = pauli_atom(PauliOperator.from_label("Z"))
    assert np.allclose(
        NotAssertion(atom).to_projector({}, 1), np.diag([0, 1])
    )
    assert np.allclose(atom.negated().to_projector({}, 1), np.diag([0, 1]))


def test_conjunction_of_stabilizers_is_codeword_projector():
    assertion = stabilizer_assertion(
        [PauliOperator.from_label("XX"), PauliOperator.from_label("ZZ")]
    )
    bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
    assert assertion.satisfied_by(bell, {}, 2)
    assert not assertion.satisfied_by(np.array([1, 0, 0, 0], dtype=complex), {}, 2)


def test_disjunction_follows_quantum_logic():
    # Example 3.3: X1 ∧ Z2 joined with X1 ∧ -Z2 equals X1.
    left = conjunction(
        [pauli_atom(PauliOperator.from_label("XI")), pauli_atom(PauliOperator.from_label("IZ"))]
    )
    right = conjunction(
        [
            pauli_atom(PauliOperator.from_label("XI")),
            PauliAssertion(-PauliExpr.from_label("IZ")),
        ]
    )
    join = OrAssertion((left, right))
    expected = pauli_atom(PauliOperator.from_label("XI")).to_projector({}, 2)
    assert np.allclose(join.to_projector({}, 2), expected)


def test_sasaki_implication_degenerates_classically():
    a = BoolAssertion(BoolVar("p"))
    b = BoolAssertion(BoolVar("q"))
    implication = ImpliesAssertion(a, b)
    assert np.allclose(implication.to_projector({"p": True, "q": False}, 1), np.zeros((2, 2)))
    assert np.allclose(implication.to_projector({"p": False, "q": False}, 1), np.eye(2))


def test_structural_operations_propagate():
    atom = pauli_atom(PauliOperator.from_label("ZZ"), ParityExpr.of_variable("x"))
    assertion = AndAssertion((atom, BoolAssertion(BoolVar("x"))))
    substituted = assertion.substitute_classical({"x": BoolVar("y")})
    gate_applied = substituted.apply_gate("CNOT", (0, 1))
    flipped = gate_applied.apply_conditional_pauli(0, "X", ParityExpr.of_variable("e"))
    assert isinstance(flipped, AndAssertion)
    assert "y" in repr(flipped)


def test_constructors_reject_empty():
    with pytest.raises(ValueError):
        conjunction([])
    with pytest.raises(ValueError):
        disjunction([])
    single = pauli_atom(PauliOperator.from_label("X"))
    assert conjunction([single]) is single
