"""Quantum-logic subspace operation tests (Appendix A.3)."""

import numpy as np

from repro.logic.subspace import (
    complement_projector,
    join_projectors,
    meet_projectors,
    projector_from_stabilizers,
    sasaki_implies,
    sasaki_projection,
    state_satisfies,
    subspace_contains,
)
from repro.pauli.pauli import PauliOperator


def eigenprojector(label):
    op = PauliOperator.from_label(label).to_matrix()
    return (np.eye(op.shape[0]) + op) / 2


def test_projector_from_stabilizers_bell_state():
    projector = projector_from_stabilizers(
        [PauliOperator.from_label("XX"), PauliOperator.from_label("ZZ")], 2
    )
    bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
    assert np.allclose(projector, np.outer(bell, bell))


def test_meet_and_join_are_projectors():
    p = eigenprojector("XI")
    q = eigenprojector("ZI")
    meet = meet_projectors([p, q])
    join = join_projectors([p, q])
    assert np.allclose(meet @ meet, meet)
    assert np.allclose(join @ join, join)
    # X and Z on the same qubit intersect trivially and span everything.
    assert np.allclose(meet, 0)
    assert np.allclose(join, np.eye(4))


def test_join_is_span_not_union():
    # Example 3.3: the join of |+0> and |+1> is the full |+> x C^2 subspace.
    p0 = projector_from_stabilizers(
        [PauliOperator.from_label("XI"), PauliOperator.from_label("IZ")], 2
    )
    p1 = projector_from_stabilizers(
        [PauliOperator.from_label("XI"), -PauliOperator.from_label("IZ")], 2
    )
    join = join_projectors([p0, p1])
    expected = eigenprojector("XI")
    assert np.allclose(join, expected)


def test_complement():
    p = eigenprojector("Z")
    assert np.allclose(complement_projector(p), eigenprojector("-Z") if False else np.eye(2) - p)


def test_sasaki_implication_birkhoff_condition():
    p = eigenprojector("ZI")
    q = meet_projectors([eigenprojector("ZI"), eigenprojector("IZ")])
    # q <= p so p ~> q restricted ... and q ~> p must be the whole space.
    assert np.allclose(sasaki_implies(q, p), np.eye(4))


def test_sasaki_projection_within_first_argument():
    p = eigenprojector("ZI")
    q = eigenprojector("XI")
    projection = sasaki_projection(p, q)
    assert subspace_contains(p, projection)


def test_subspace_contains_and_state_satisfies():
    p = eigenprojector("Z")
    zero = np.array([1, 0], dtype=complex)
    plus = np.array([1, 1], dtype=complex) / np.sqrt(2)
    assert state_satisfies(zero, p)
    assert not state_satisfies(plus, p)
    assert subspace_contains(np.eye(2), p)
    assert not subspace_contains(p, np.eye(2))
