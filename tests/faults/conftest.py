"""Fault-injection tests arm process-global plans; always disarm after."""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    faults.disarm()
