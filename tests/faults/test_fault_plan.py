"""Unit tests for the fault plan itself: parsing, scheduling, determinism."""

import json
import time

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule


class TestParsing:
    def test_parse_dict_inline_json_and_file(self, tmp_path):
        spec = {"seed": 3, "faults": [{"point": "store.write", "times": 2}]}
        for variant in (
            spec,
            json.dumps(spec),
            self._spec_file(tmp_path, spec),
        ):
            plan = FaultPlan.parse(variant)
            assert plan.seed == 3
            assert [r.point for r in plan.rules] == ["store.write"]
            assert plan.rules[0].times == 2

    @staticmethod
    def _spec_file(tmp_path, spec):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_parse_passes_existing_plan_through(self):
        plan = FaultPlan([{"point": "lane.crash"}])
        assert FaultPlan.parse(plan) is plan

    def test_parse_rejects_non_object(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            FaultPlan.parse(str(path))

    def test_rule_requires_scoped_point(self):
        with pytest.raises(ValueError):
            FaultRule("store")

    def test_rule_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            FaultRule("store.read", mode="explode")

    def test_mode_inferred_from_delay(self):
        assert FaultRule("loop.stall", delay=0.5).mode == "delay"
        assert FaultRule("store.read").mode == "error"


class TestScheduling:
    def test_after_and_times_window_the_firings(self):
        plan = FaultPlan([{"point": "store.write", "after": 2, "times": 2}])
        outcomes = [plan.fire("store.write") is not None for _ in range(6)]
        assert outcomes == [False, False, True, True, False, False]

    def test_match_filters_and_does_not_consume_hits(self):
        plan = FaultPlan([{"point": "store.read", "match": "steane"}])
        assert plan.fire("store.read", "surface-5") is None
        assert plan.rules[0].hits == 0  # non-matching hits are not counted
        assert plan.fire("store.read", "fp:steane:1") is not None

    def test_unrelated_points_never_fire(self):
        plan = FaultPlan([{"point": "store.write"}])
        assert plan.fire("store.read") is None
        assert plan.fire("lane.crash") is None

    def test_probability_is_deterministic_for_a_seed(self):
        def pattern(seed):
            plan = FaultPlan(
                [{"point": "pool.kill", "times": 100, "probability": 0.5}],
                seed=seed,
            )
            return [plan.fire("pool.kill") is not None for _ in range(20)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # different seed, different schedule

    def test_delay_mode_sleeps_without_erroring(self):
        plan = FaultPlan([{"point": "loop.stall", "delay": 0.02}])
        start = time.monotonic()
        assert plan.fire("loop.stall") is None
        assert time.monotonic() - start >= 0.02

    def test_firings_are_recorded_and_logged(self, tmp_path):
        log = tmp_path / "faults.ndjson"
        plan = FaultPlan(
            [{"point": "socket.reset", "times": 2}], log_path=str(log)
        )
        plan.fire("socket.reset", "stream-1")
        plan.fire("socket.reset", "stream-2")
        plan.fire("socket.reset", "stream-3")  # exhausted, not recorded
        assert [f["detail"] for f in plan.fired] == ["stream-1", "stream-2"]
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["point"] == "socket.reset" for r in records)

    def test_stats_reports_per_rule_counters(self):
        plan = FaultPlan([{"point": "store.write", "times": 1}], seed=5)
        plan.fire("store.write")
        plan.fire("store.write")
        stats = plan.stats()
        assert stats["seed"] == 5
        assert stats["fired"] == 1
        assert stats["rules"][0]["hits"] == 2
        assert stats["rules"][0]["fired"] == 1


class TestArming:
    def test_hook_is_none_when_disarmed(self):
        faults.disarm()
        assert not faults.enabled()
        assert faults.hook("store") is None

    def test_hook_is_scoped_to_targeted_prefixes(self):
        faults.install({"faults": [{"point": "store.write"}]})
        assert faults.enabled()
        assert faults.hook("store") is not None
        assert faults.hook("lane") is None  # plan does not target lanes

    def test_hook_fire_prefixes_the_scope(self):
        plan = faults.install({"faults": [{"point": "socket.reset"}]})
        hook = faults.hook("socket")
        assert hook.fire("truncate") is None
        assert hook.fire("reset") is not None
        assert plan.fired[0]["point"] == "socket.reset"

    def test_install_accepts_plan_objects_idempotently(self):
        plan = FaultPlan([{"point": "lane.crash"}])
        assert faults.install(plan) is plan
        assert faults.active() is plan

    def test_env_spec_arms_a_plan(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_PLAN, json.dumps({"faults": [{"point": "loop.stall"}]})
        )
        plan = faults._plan_from_env()
        assert plan is not None
        assert plan.rules[0].point == "loop.stall"
        monkeypatch.setenv(faults.ENV_PLAN, "")
        assert faults._plan_from_env() is None
