"""The acceptance chaos test: a faulted sweep equals a fault-free sweep.

One seeded plan kills a lane mid-job, injects three store write failures
and resets one event-stream socket.  A retrying :class:`ServiceClient`
must still complete the full mixed-registry sweep with a verdict map
byte-identical to a clean run's, without double-running any job
(idempotency keys), and the store's circuit breaker must be observed to
open and re-close through ``GET /stats``.
"""

import json
import threading
import time

import pytest

from repro import faults
from repro.service import VerificationService
from repro.store import ClauseStore

#: A mixed-registry sweep: three code families, three task kinds.
SWEEP = [
    {"kind": "correction", "code": "steane"},
    {"kind": "correction", "code": "five-qubit"},
    {"kind": "correction", "code": "six-qubit"},
    {"kind": "detection", "code": "steane", "trial_distance": 3},
    {"kind": "distance", "code": "five-qubit"},
    {"kind": "correction", "code": "xzzx-3"},
]

#: Codes untouched by the sweep — fodder for fresh store reads while the
#: test waits for the breaker's recovery probe to close it again.
SPARE_CODES = ["shor", "surface-3", "repetition-5", "gottesman-8"]


class Harness:
    """A live service on an ephemeral port (same shape as the service tests)."""

    def __init__(self, **service_kwargs):
        service_kwargs.setdefault("drain_grace", 5.0)
        self.service = VerificationService(port=0, **service_kwargs)
        self._ready = threading.Event()
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        import asyncio

        async def main():
            await self.service.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.service.serve_forever(install_signal_handlers=False)

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "service failed to start"
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(60)
        assert not self._thread.is_alive(), "service failed to drain"

    def client(self, **kwargs):
        from repro.service import ServiceClient

        return ServiceClient("127.0.0.1", self.service.port, **kwargs)


def _verdict(result: dict) -> dict:
    view = {key: result.get(key) for key in ("task", "subject", "verified")}
    view["counterexample"] = result.get("counterexample")
    details = result.get("details") or {}
    if "distance" in details:
        view["distance"] = details["distance"]
    return view


def _run_sweep(client) -> dict:
    """Submit the sweep serially; resubmit (fresh job) on lane crashes."""
    verdicts = {}
    for spec in SWEEP:
        key = json.dumps(spec, sort_keys=True)
        for _attempt in range(3):
            job = client.submit(dict(spec))
            terminal = list(client.events(job["id"]))[-1]
            if (
                terminal["event"] == "JobFailed"
                and terminal.get("reason") == "lane_crash"
            ):
                continue  # infrastructure died under the job: run it again
            assert terminal["event"] == "JobCompleted", terminal
            break
        else:
            pytest.fail(f"{key} failed on every attempt")
        verdicts[key] = _verdict(client.job(job["id"])["result"])
    return verdicts


def test_faulted_sweep_is_byte_identical_to_clean_run(tmp_path):
    with Harness() as clean:
        clean_verdicts = _run_sweep(
            clean.client(api_key="clean", retries=3, backoff=0.01, backoff_cap=0.05)
        )

    log_path = tmp_path / "faults.ndjson"
    plan = faults.install(
        {
            "seed": 7,
            "log": str(log_path),
            "faults": [
                {"point": "lane.crash", "times": 1},
                {"point": "store.write", "times": 3},
                {"point": "socket.reset", "times": 1},
            ],
        }
    )
    # Constructed after arming, so the store's hook is live; threshold 1 +
    # a short cooldown makes the open → half-open → closed walk observable
    # within the test's budget.
    store = ClauseStore(
        str(tmp_path / "store"), breaker_threshold=1, breaker_cooldown=0.05
    )
    try:
        with Harness(clause_store=store, fault_plan=plan) as chaotic:
            client = chaotic.client(
                api_key="chaos", retries=3, backoff=0.01, backoff_cap=0.05
            )
            fault_verdicts = _run_sweep(client)

            # The whole plan struck: the lane died, writes failed, one
            # stream was reset — and the sweep still finished.
            fired = {rule.point: rule.fired for rule in plan.rules}
            assert fired["lane.crash"] == 1
            assert fired["socket.reset"] == 1
            assert fired["store.write"] >= 1
            assert chaotic.service.engine._executor.lane_crashes == 1

            # Verdict maps are byte-identical despite the chaos.
            assert json.dumps(fault_verdicts, sort_keys=True) == json.dumps(
                clean_verdicts, sort_keys=True
            )

            # Idempotent resubmission: the same key returns the same job,
            # and the registry gains exactly one job for the two POSTs.
            before = sum(client.stats()["jobs"].values())
            first = client.submit(
                {"kind": "correction", "code": "steane"},
                idempotency_key="chaos-dup",
            )
            second = client.submit(
                {"kind": "correction", "code": "steane"},
                idempotency_key="chaos-dup",
            )
            assert second["id"] == first["id"]
            assert second["deduplicated"] is True
            list(client.events(first["id"]))
            assert sum(client.stats()["jobs"].values()) == before + 1

            # The breaker opened on the injected write failures and, once
            # they were exhausted, a successful recovery probe re-closed it
            # — both observed through GET /stats.
            spare = list(SPARE_CODES)
            deadline = time.monotonic() + 30
            while True:
                stats = client.stats()["resources"].get("store", {})
                if (
                    stats.get("breaker_opened", 0) >= 1
                    and stats.get("breaker_state") == "closed"
                ):
                    break
                if time.monotonic() > deadline:
                    pytest.fail(f"breaker never re-closed: {stats}")
                if spare:
                    # A fresh code forces a store read (its context's warm
                    # load) — a recovery probe for the half-open breaker.
                    job = client.submit({"kind": "correction", "code": spare.pop(0)})
                    list(client.events(job["id"]))
                time.sleep(0.05)

            # The audit trail recorded every firing.
            records = [
                json.loads(line) for line in log_path.read_text().splitlines()
            ]
            assert len(records) == len(plan.fired)
            assert {r["point"] for r in records} >= {"lane.crash", "socket.reset"}
    finally:
        faults.disarm()
