"""Injection sites and the resilience machinery they exercise.

Each test arms a targeted plan and checks the *recovery* path, not just
the failure: the store's circuit breaker opens and re-closes, a crashed
lane is supervised back to life with its in-flight job failed loudly, and
an interrupted sweep resumes from its manifest instead of re-running.
"""

import pytest

from repro import faults
from repro.api import CorrectionTask, Engine
from repro.api.engine import _sweep_manifest_key, _sweep_manifest_payload
from repro.api.result import Result
from repro.store import ClauseStore


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestStoreBreaker:
    def _store(self, tmp_path, clock, threshold=2):
        return ClauseStore(
            str(tmp_path),
            breaker_threshold=threshold,
            breaker_cooldown=10.0,
            clock=clock,
        )

    def test_injected_read_degrades_like_a_miss(self, tmp_path):
        faults.install({"faults": [{"point": "store.read", "times": 1}]})
        store = self._store(tmp_path, FakeClock())
        assert store.load("fp") is None
        assert store.storage_errors == 1
        assert store.misses == 1
        assert store.load("fp") is None  # fault exhausted: a normal miss
        assert store.storage_errors == 1

    def test_breaker_opens_short_circuits_and_recloses(self, tmp_path):
        faults.install({"faults": [{"point": "store.write", "times": 3}]})
        clock = FakeClock()
        store = self._store(tmp_path, clock, threshold=2)

        store.checkpoint_save("walk", {"probe": 1})  # injected failure 1
        assert store._breaker_state == "closed"
        store.checkpoint_save("walk", {"probe": 2})  # failure 2 → opens
        assert store._breaker_state == "open"
        assert store.breaker_opened == 1

        # Open + cooldown running: sqlite is not even attempted, the op
        # degrades like a broken store (and the fault is not consumed).
        store.checkpoint_save("walk", {"probe": 3})
        assert store.breaker_short_circuited == 1
        assert store.storage_errors == 2

        # Cooldown elapsed: the next op is a half-open probe; it hits the
        # third injected fault and re-opens immediately.
        clock.advance(11.0)
        store.checkpoint_save("walk", {"probe": 4})
        assert store._breaker_state == "open"
        assert store.breaker_opened == 2

        # Faults exhausted: the next probe succeeds and closes the breaker.
        clock.advance(11.0)
        store.checkpoint_save("walk", {"probe": 5})
        assert store._breaker_state == "closed"
        assert store.checkpoint_load("walk") == {"probe": 5}
        assert store.checkpoints_saved == 1

        stats = store.stats()
        assert stats["breaker_opened"] == 2
        assert stats["breaker_short_circuited"] == 1
        assert stats["breaker_state"] == "closed"

    def test_success_resets_the_consecutive_failure_streak(self, tmp_path):
        # Failures interleaved with successes never reach the threshold.
        faults.install(
            {"faults": [{"point": "store.write", "times": 2, "after": 0}]}
        )
        clock = FakeClock()
        store = self._store(tmp_path, clock, threshold=2)
        store.checkpoint_save("a", {"n": 1})  # injected failure (streak 1)
        store.checkpoint_load("a")  # successful read resets the streak
        store.checkpoint_save("a", {"n": 2})  # injected failure (streak 1)
        assert store._breaker_state == "closed"
        assert store.breaker_opened == 0
        assert store.storage_errors == 2

    def test_disarmed_store_has_no_hook(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        assert store._fault is None


class TestLaneSupervisor:
    def test_crashed_lane_fails_job_restarts_and_quarantines(self):
        # ``after: 1`` lets the first job build the shared context, so the
        # crash on the second job has live solver state to quarantine.
        faults.install({"faults": [{"point": "lane.crash", "times": 1, "after": 1}]})
        engine = Engine(lanes=1)
        warm = engine.submit(CorrectionTask(code="steane"))
        assert warm.result(timeout=60).verified is True
        job = engine.submit(CorrectionTask(code="steane"))
        with pytest.raises(RuntimeError, match="crashed mid-job"):
            job.result(timeout=60)

        terminal = list(job.events())[-1]
        assert type(terminal).__name__ == "JobFailed"
        assert terminal.reason == "lane_crash"
        assert engine._executor.lane_crashes == 1
        assert engine.resources.quarantined == 1

        # The supervisor restarted the lane thread: the same code verifies
        # cleanly on the next submission (in a fresh, quarantine-safe
        # context).
        retry = engine.submit(CorrectionTask(code="steane"))
        assert retry.result(timeout=60).verified is True
        engine.close()

    def test_failed_reason_is_absent_for_ordinary_errors(self):
        engine = Engine(lanes=1)
        job = engine.submit(CorrectionTask(code="no-such-code"))
        with pytest.raises(Exception):
            job.result(timeout=60)
        terminal = list(job.events())[-1]
        assert type(terminal).__name__ == "JobFailed"
        assert terminal.reason == ""
        assert "reason" not in terminal.to_dict()  # wire format unchanged
        engine.close()


class TestSweepResume:
    def _seeded(self):
        return Result(
            task="correction",
            subject="steane",
            verified=True,
            details={"seeded": True},
        )

    def test_sweep_resumes_from_manifest(self, tmp_path):
        engine = Engine(clause_store=str(tmp_path))
        batch = [CorrectionTask(code="steane"), CorrectionTask(code="five-qubit")]
        key = _sweep_manifest_key(batch, [0, 1])
        store = engine.resources.clause_store
        store.checkpoint_save(key, _sweep_manifest_payload(2, {0: self._seeded()}))

        results = engine.run_many(batch, schedule="fifo")
        assert results[0].details.get("seeded") is True  # not re-run
        assert results[0].details.get("sweep_resumed") is True
        assert results[1].verified is True
        assert "sweep_resumed" not in results[1].details
        # The manifest is consumed: the sweep is complete, nothing resumes.
        assert store.checkpoint_load(key) is None
        engine.close()

    def test_mismatched_manifest_is_discarded(self, tmp_path):
        engine = Engine(clause_store=str(tmp_path))
        batch = [CorrectionTask(code="steane"), CorrectionTask(code="five-qubit")]
        key = _sweep_manifest_key(batch, [0, 1])
        store = engine.resources.clause_store
        # A manifest for a different sweep shape must not leak results in.
        store.checkpoint_save(key, _sweep_manifest_payload(3, {0: self._seeded()}))

        results = engine.run_many(batch, schedule="fifo")
        assert all(result.verified for result in results)
        assert all("sweep_resumed" not in result.details for result in results)
        engine.close()

    def test_single_task_runs_are_not_checkpointed(self, tmp_path):
        engine = Engine(clause_store=str(tmp_path))
        results = engine.run_many([CorrectionTask(code="steane")])
        assert results[0].verified is True
        assert engine.resources.clause_store.checkpoints_saved == 0
        engine.close()
