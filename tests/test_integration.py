"""End-to-end integration tests: the two verification routes agree.

The direct code-level encoding (Section 7's general verification) and the
program-logic route (wp + VC reduction) must give the same verdicts; and both
must agree with brute-force simulation of small codes using the lookup
decoder on the stabilizer tableau.
"""

from itertools import combinations

import pytest

from repro.codes import build_code, steane_code
from repro.decoders import LookupDecoder
from repro.pauli.pauli import PauliOperator
from repro.vc.pipeline import verify_triple
from repro.verifier import VeriQEC
from repro.verifier.programs import correction_triple


@pytest.mark.parametrize("key", ["steane", "five-qubit", "surface-3"])
def test_direct_verification_agrees_with_brute_force(key):
    code = build_code(key)
    verifier = VeriQEC()
    report = verifier.verify_correction(code)
    decoder = LookupDecoder(code)
    all_single_corrected = all(
        decoder.corrects(PauliOperator.from_sparse(code.num_qubits, {q: p}))
        for q in range(code.num_qubits)
        for p in "XYZ"
    )
    assert report.verified == all_single_corrected == True


def test_both_routes_agree_on_steane():
    code = steane_code()
    direct = VeriQEC().verify_correction(code, error_model="Y")
    scenario = correction_triple(code, error="Y", max_errors=1)
    logic_route = verify_triple(scenario.triple, scenario.decoder_condition)
    assert direct.verified == logic_route.verified == True

    direct_bad = VeriQEC().verify_correction(code, max_errors=2, error_model="Y")
    scenario_bad = correction_triple(code, error="Y", max_errors=2)
    logic_bad = verify_triple(scenario_bad.triple, scenario_bad.decoder_condition)
    assert direct_bad.verified == logic_bad.verified == False


def test_detection_counterexample_is_a_real_logical_error():
    code = build_code("surface-3")
    report = VeriQEC().verify_detection(code, trial_distance=4)
    assert not report.verified
    qubits = report.counterexample_qubits()
    assert len(qubits) == 3
    # Reconstruct the reported error and confirm it is an undetectable logical error.
    terms = {}
    for qubit in qubits:
        pauli = ""
        if report.counterexample.get(f"ex_{qubit}"):
            pauli += "X"
        if report.counterexample.get(f"ez_{qubit}"):
            pauli = "Y" if pauli else "Z"
        terms[qubit] = pauli
    error = PauliOperator.from_sparse(code.num_qubits, terms)
    assert not any(code.syndrome(error))
    assert code.is_logical_error(error)


def test_stim_style_sampling_cannot_exceed_verification():
    """Sampling covers single configurations; verification covers all of them.

    This mirrors the Stim comparison of Section 7.2: the verifier's verdict
    quantifies over every weight-<=1 error, which we confirm here by checking
    a handful of sampled configurations plus the exhaustive claim.
    """
    code = steane_code()
    decoder = LookupDecoder(code)
    verifier = VeriQEC()
    assert verifier.verify_correction(code).verified
    for first, second in combinations(range(7), 2):
        error = PauliOperator.from_sparse(7, {first: "X", second: "Z"})
        # Weight-2 errors are outside the verified envelope; some of them fail.
        if not decoder.corrects(error):
            break
    else:
        pytest.fail("expected at least one uncorrectable weight-2 error")
