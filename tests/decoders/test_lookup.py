"""Lookup decoder tests."""

import pytest

from repro.codes import five_qubit_code, steane_code
from repro.decoders import LookupDecoder
from repro.pauli.pauli import PauliOperator


@pytest.mark.parametrize("builder", [steane_code, five_qubit_code])
def test_corrects_every_single_qubit_error(builder):
    code = builder()
    decoder = LookupDecoder(code)
    for qubit in range(code.num_qubits):
        for pauli in "XYZ":
            error = PauliOperator.from_sparse(code.num_qubits, {qubit: pauli})
            assert decoder.corrects(error)


def test_zero_syndrome_maps_to_identity():
    decoder = LookupDecoder(steane_code())
    correction = decoder.decode((0,) * 6)
    assert correction is not None and correction.weight == 0


def test_unknown_syndrome_returns_none():
    decoder = LookupDecoder(steane_code(), max_weight=0)
    assert decoder.decode((1, 0, 0, 0, 0, 0)) is None


def test_table_is_minimum_weight():
    code = steane_code()
    decoder = LookupDecoder(code, max_weight=2)
    for qubit in range(7):
        error = PauliOperator.from_sparse(7, {qubit: "X"})
        stored = decoder.decode(code.syndrome(error))
        assert stored is not None and stored.weight <= 1


def test_table_size_grows_with_weight():
    code = steane_code()
    assert LookupDecoder(code, max_weight=1).table_size <= LookupDecoder(code, max_weight=2).table_size
