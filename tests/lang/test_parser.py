"""Parser tests for the textual QEC language."""

import pytest

from repro.classical.expr import BoolVar
from repro.codes import steane_code
from repro.lang.ast import (
    Assign,
    AssignDecoder,
    ConditionalGate,
    ConditionalPauli,
    If,
    InitQubit,
    Measure,
    Seq,
    Skip,
    Unitary,
    While,
)
from repro.lang.parser import ParseError, parse_program
from repro.pauli.pauli import PauliOperator


def statements(program):
    if isinstance(program, Seq):
        return list(program.statements)
    return [program]


class TestStatements:
    def test_skip(self):
        assert isinstance(parse_program("skip", 1), Skip)

    def test_unitary(self):
        program = parse_program("q[1] *= H", 2)
        assert program == Unitary("H", (0,))

    def test_two_qubit_unitary(self):
        assert parse_program("q[1], q[2] *= CNOT", 2) == Unitary("CNOT", (0, 1))

    def test_init(self):
        assert parse_program("q[2] := |0>", 3) == InitQubit(1)

    def test_conditional_pauli(self):
        program = parse_program("[e[3]] q[3] *= Y", 7)
        assert program == ConditionalPauli(BoolVar("e_3"), 2, "Y")

    def test_conditional_non_pauli(self):
        program = parse_program("[e[1]] q[1] *= T", 3)
        assert isinstance(program, ConditionalGate)

    def test_measurement_inline_observable(self):
        program = parse_program("s[1] := meas[X1 X3 X5 X7]", 7)
        assert program == Measure("s_1", PauliOperator.from_sparse(7, {0: "X", 2: "X", 4: "X", 6: "X"}))

    def test_measurement_named_observable(self):
        code = steane_code()
        observables = {f"g_{i + 1}": g for i, g in enumerate(code.stabilizers)}
        program = parse_program("for i in 1..6 do s[i] := meas[g[i]] end", 7, observables)
        parts = statements(program)
        assert len(parts) == 6
        assert parts[2].observable == code.stabilizers[2]

    def test_decoder_call(self):
        program = parse_program("z[1], z[2], z[3] := f_z(s[1], s[2])", 3)
        assert program == AssignDecoder(("z_1", "z_2", "z_3"), "f_z", ("s_1", "s_2"))

    def test_classical_assignment(self):
        program = parse_program("x := a ^ b", 1)
        assert isinstance(program, Assign)

    def test_if_else(self):
        program = parse_program("if b then q[1] *= X else skip end", 1)
        assert isinstance(program, If)
        assert program.then_branch == Unitary("X", (0,))

    def test_while(self):
        program = parse_program("while b do q[1] *= X end", 1)
        assert isinstance(program, While)

    def test_sequencing(self):
        program = parse_program("q[1] *= H; q[1], q[2] *= CNOT", 2)
        assert [type(s).__name__ for s in statements(program)] == ["Unitary", "Unitary"]


class TestForLoops:
    def test_loop_unrolling(self):
        program = parse_program("for i in 1..7 do q[i] *= H end", 7)
        parts = statements(program)
        assert len(parts) == 7
        assert parts[6] == Unitary("H", (6,))

    def test_loop_with_index_arithmetic(self):
        program = parse_program("for i in 1..7 do q[i], q[i+7] *= CNOT end", 14)
        parts = statements(program)
        assert parts[0] == Unitary("CNOT", (0, 7))
        assert parts[6] == Unitary("CNOT", (6, 13))

    def test_loop_body_with_conditional_errors(self):
        program = parse_program("for i in 1..3 do [e[i]] q[i] *= X end", 3)
        parts = statements(program)
        assert parts[1] == ConditionalPauli(BoolVar("e_2"), 1, "X")


class TestTable1Program:
    def test_full_steane_error_correction_round(self):
        code = steane_code()
        observables = {f"g_{i + 1}": g for i, g in enumerate(code.stabilizers)}
        source = """
        for i in 1..7 do [ep[i]] q[i] *= Y end;
        for i in 1..7 do q[i] *= H end;
        for i in 1..7 do [e[i]] q[i] *= Y end;
        for i in 1..6 do s[i] := meas[g[i]] end;
        z[1], z[2], z[3], z[4], z[5], z[6], z[7] := f_z(s[1], s[2], s[3]);
        x[1], x[2], x[3], x[4], x[5], x[6], x[7] := f_x(s[4], s[5], s[6]);
        for i in 1..7 do [x[i]] q[i] *= X end;
        for i in 1..7 do [z[i]] q[i] *= Z end
        """
        program = parse_program(source, 7, observables)
        parts = statements(program)
        # 7 + 7 + 7 + 6 + 2 + 7 + 7 basic commands.
        assert len(parts) == 43


class TestErrors:
    def test_out_of_range_qubit(self):
        with pytest.raises(ParseError):
            parse_program("q[9] *= H", 7)

    def test_unbound_loop_variable(self):
        with pytest.raises(ParseError):
            parse_program("q[i] *= H", 7)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_program("skip skip", 1)

    def test_unknown_named_observable(self):
        with pytest.raises(ParseError):
            parse_program("s[1] := meas[g[1]]", 7)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("q[1] *= H @", 1)
