"""Program AST tests."""

import pytest

from repro.classical.expr import BoolVar
from repro.lang.ast import (
    Assign,
    ConditionalPauli,
    If,
    InitQubit,
    Measure,
    Seq,
    Skip,
    Unitary,
    sequence,
)
from repro.pauli.pauli import PauliOperator


def test_unitary_validates_arity():
    with pytest.raises(ValueError):
        Unitary("H", (0, 1))
    with pytest.raises(ValueError):
        Unitary("CNOT", (0,))
    with pytest.raises(ValueError):
        Unitary("CNOT", (1, 1))
    with pytest.raises(ValueError):
        Unitary("TOFFOLI", (0,))


def test_unitary_uppercases_gate():
    assert Unitary("cnot", (0, 1)).gate == "CNOT"


def test_conditional_pauli_restricted_to_paulis():
    with pytest.raises(ValueError):
        ConditionalPauli(BoolVar("e"), 0, "H")
    assert ConditionalPauli(BoolVar("e"), 0, "x").pauli == "X"


def test_sequence_flattens_and_drops_skips():
    program = sequence(Skip(), Seq((Unitary("H", (0,)), Skip())), Unitary("X", (1,)))
    assert isinstance(program, Seq)
    assert [type(s).__name__ for s in program.statements] == ["Unitary", "Unitary"]


def test_sequence_of_nothing_is_skip():
    assert isinstance(sequence(Skip(), Skip()), Skip)


def test_sequence_single_statement_unwrapped():
    statement = InitQubit(2)
    assert sequence(statement) is statement


def test_measure_defaults_to_zero_phase():
    measure = Measure("s", PauliOperator.from_label("ZZ"))
    assert measure.phase.is_zero()


def test_statements_are_hashable_values():
    a = Assign("x", BoolVar("y"))
    b = Assign("x", BoolVar("y"))
    assert a == b and hash(a) == hash(b)
    assert If(BoolVar("b"), Skip(), Skip()) == If(BoolVar("b"), Skip(), Skip())
