"""GF(2) linear algebra tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitmatrix import (
    as_gf2,
    gf2_gaussian_elimination,
    gf2_matmul,
    gf2_nullspace,
    gf2_rank,
    gf2_row_reduce,
    gf2_solve,
    gf2_span_contains,
)


def random_matrix_strategy(max_rows=6, max_cols=6):
    return st.integers(1, max_rows).flatmap(
        lambda r: st.integers(1, max_cols).flatmap(
            lambda c: st.lists(
                st.lists(st.integers(0, 1), min_size=c, max_size=c),
                min_size=r,
                max_size=r,
            )
        )
    )


class TestBasics:
    def test_as_gf2_reduces_mod_two(self):
        assert as_gf2([[2, 3], [4, 5]]).tolist() == [[0, 1], [0, 1]]

    def test_as_gf2_promotes_vectors(self):
        assert as_gf2([1, 0, 1]).shape == (1, 3)

    def test_as_gf2_rejects_3d(self):
        with pytest.raises(ValueError):
            as_gf2(np.zeros((2, 2, 2)))

    def test_rank_identity(self):
        assert gf2_rank(np.eye(4)) == 4

    def test_rank_dependent_rows(self):
        assert gf2_rank([[1, 1, 0], [0, 1, 1], [1, 0, 1]]) == 2

    def test_row_reduce_pivots(self):
        rref, pivots = gf2_row_reduce([[1, 1, 0], [0, 1, 1]])
        assert pivots == [0, 1]
        assert rref.tolist() == [[1, 0, 1], [0, 1, 1]]

    def test_matmul(self):
        a = [[1, 1], [0, 1]]
        b = [[1, 0], [1, 1]]
        assert gf2_matmul(a, b).tolist() == [[0, 1], [1, 1]]


class TestSolve:
    def test_solve_consistent(self):
        matrix = [[1, 1, 0], [0, 1, 1]]
        rhs = [1, 0]
        solution = gf2_solve(matrix, rhs)
        assert solution is not None
        assert (gf2_matmul(matrix, solution.reshape(-1, 1)).reshape(-1) == np.array(rhs)).all()

    def test_solve_inconsistent(self):
        matrix = [[1, 1], [1, 1]]
        assert gf2_solve(matrix, [1, 0]) is None

    def test_solve_wrong_rhs_length(self):
        with pytest.raises(ValueError):
            gf2_solve([[1, 0]], [1, 0])


class TestNullspaceAndSpan:
    def test_nullspace_orthogonal(self):
        matrix = [[1, 1, 0, 0], [0, 0, 1, 1]]
        basis = gf2_nullspace(matrix)
        assert basis.shape[0] == 2
        assert not gf2_matmul(matrix, basis.T).any()

    def test_nullspace_full_rank(self):
        assert gf2_nullspace(np.eye(3)).shape[0] == 0

    def test_span_contains(self):
        matrix = [[1, 1, 0], [0, 1, 1]]
        assert gf2_span_contains(matrix, [1, 0, 1])
        assert not gf2_span_contains(matrix, [1, 0, 0])

    def test_span_contains_zero_vector(self):
        assert gf2_span_contains([[1, 0]], [0, 0])


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_matrix_strategy())
    def test_gaussian_elimination_transform(self, rows):
        matrix = as_gf2(rows)
        rref, transform, pivots = gf2_gaussian_elimination(matrix)
        assert (gf2_matmul(transform, matrix) == rref).all()
        assert len(pivots) == gf2_rank(matrix)

    @settings(max_examples=60, deadline=None)
    @given(random_matrix_strategy())
    def test_nullspace_dimension(self, rows):
        matrix = as_gf2(rows)
        basis = gf2_nullspace(matrix)
        assert basis.shape[0] == matrix.shape[1] - gf2_rank(matrix)
        if basis.shape[0]:
            assert not gf2_matmul(matrix, basis.T).any()

    @settings(max_examples=60, deadline=None)
    @given(random_matrix_strategy(), st.data())
    def test_solve_roundtrip(self, rows, data):
        matrix = as_gf2(rows)
        x = data.draw(
            st.lists(st.integers(0, 1), min_size=matrix.shape[1], max_size=matrix.shape[1])
        )
        rhs = gf2_matmul(matrix, np.array(x).reshape(-1, 1)).reshape(-1)
        solution = gf2_solve(matrix, rhs)
        assert solution is not None
        assert (gf2_matmul(matrix, solution.reshape(-1, 1)).reshape(-1) == rhs).all()
