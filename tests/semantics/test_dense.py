"""Dense operational semantics tests (Fig. 2)."""

import numpy as np
import pytest

from repro.classical.expr import BoolVar, IntConst, IntEq, sum_of
from repro.classical.memory import ClassicalMemory
from repro.lang.ast import (
    Assign,
    AssignDecoder,
    ConditionalPauli,
    If,
    InitQubit,
    Measure,
    Skip,
    Unitary,
    While,
    sequence,
)
from repro.pauli.pauli import PauliOperator
from repro.semantics.dense import DenseSimulator


def total_trace(state):
    return sum(np.trace(rho).real for _, rho in state)


def test_skip_preserves_state():
    sim = DenseSimulator(1)
    state = sim.initial_state()
    assert sim.run(Skip(), state) == state


def test_unitary_evolution():
    sim = DenseSimulator(1)
    state = sim.run(Unitary("H", (0,)), sim.initial_state())
    (_, rho), = state
    plus = np.array([1, 1]) / np.sqrt(2)
    assert np.allclose(rho, np.outer(plus, plus))


def test_cnot_entangles():
    sim = DenseSimulator(2)
    program = sequence(Unitary("H", (0,)), Unitary("CNOT", (0, 1)))
    (_, rho), = sim.run(program, sim.initial_state())
    bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
    assert np.allclose(rho, np.outer(bell, bell))


def test_measurement_splits_classical_state():
    sim = DenseSimulator(1)
    program = sequence(Unitary("H", (0,)), Measure("m", PauliOperator.from_label("Z")))
    state = sim.run(program, sim.initial_state())
    assert len(state) == 2
    assert abs(total_trace(state) - 1.0) < 1e-9
    outcomes = {memory["m"] for memory, _ in state}
    assert outcomes == {False, True}


def test_measurement_is_projective():
    sim = DenseSimulator(1)
    program = sequence(
        Measure("a", PauliOperator.from_label("Z")), Measure("b", PauliOperator.from_label("Z"))
    )
    state = sim.run(program, sim.initial_state())
    assert len(state) == 1
    memory, _ = state[0]
    assert memory["a"] is False and memory["b"] is False


def test_conditional_pauli_depends_on_memory():
    sim = DenseSimulator(1)
    program = ConditionalPauli(BoolVar("e"), 0, "X")
    flipped = sim.run(program, sim.initial_state({"e": True}))
    untouched = sim.run(program, sim.initial_state({"e": False}))
    assert np.allclose(flipped[0][1], np.diag([0, 1]))
    assert np.allclose(untouched[0][1], np.diag([1, 0]))


def test_classical_assignment_and_if():
    sim = DenseSimulator(1)
    program = sequence(
        Assign("x", BoolVar("e")),
        If(BoolVar("x"), Unitary("X", (0,)), Skip()),
    )
    state = sim.run(program, sim.initial_state({"e": True}))
    assert np.allclose(state[0][1], np.diag([0, 1]))


def test_init_resets_qubit():
    sim = DenseSimulator(1)
    program = sequence(Unitary("H", (0,)), InitQubit(0))
    (_, rho), = sim.run(program, sim.initial_state())
    assert np.allclose(rho, np.diag([1, 0]))


def test_decoder_call_uses_interpretation():
    sim = DenseSimulator(1)
    memory = ClassicalMemory({"s": True}, functions={"f": lambda s: (s,)})
    program = AssignDecoder(("c",), "f", ("s",))
    state = sim.run(program, [(memory, np.diag([1.0, 0.0]).astype(complex))])
    assert state[0][0]["c"] is True


def test_decoder_without_interpretation_raises():
    sim = DenseSimulator(1)
    program = AssignDecoder(("c",), "f", ("s",))
    with pytest.raises(KeyError):
        sim.run(program, sim.initial_state({"s": True}))


def test_while_loop_terminates_on_counter():
    sim = DenseSimulator(1)
    program = While(
        IntEq(sum_of([BoolVar("busy")]), IntConst(1)),
        Assign("busy", BoolVar("done")),
    )
    state = sim.run(program, sim.initial_state({"busy": True, "done": False}))
    assert state[0][0]["busy"] is False


def test_large_system_rejected():
    with pytest.raises(ValueError):
        DenseSimulator(20)
