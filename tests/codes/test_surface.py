"""Rotated surface code and XZZX variant tests."""

import pytest

from repro.codes.surface import rotated_surface_code, surface_code_plaquettes, xzzx_surface_code
from repro.decoders import LookupDecoder
from repro.pauli.pauli import PauliOperator


@pytest.mark.parametrize("distance", [2, 3, 5])
def test_parameters(distance):
    code = rotated_surface_code(distance)
    assert code.parameters == (distance * distance, 1, distance)
    assert code.num_stabilizers == distance * distance - 1


def test_plaquette_weights():
    x_plaquettes, z_plaquettes = surface_code_plaquettes(5, 5)
    for support in x_plaquettes + z_plaquettes:
        assert len(support) in (2, 4)
    assert len(x_plaquettes) + len(z_plaquettes) == 24


def test_d3_exact_distance():
    assert rotated_surface_code(3).exact_distance(3) == 3


def test_logical_operators_follow_paper_orientation():
    code = rotated_surface_code(3)
    # Logical X along the top row, logical Z along the left column (Fig. 5).
    assert code.logical_xs[0] == PauliOperator.from_sparse(9, {0: "X", 1: "X", 2: "X"})
    assert code.logical_zs[0] == PauliOperator.from_sparse(9, {0: "Z", 3: "Z", 6: "Z"})


def test_rectangular_lattice():
    code = rotated_surface_code(3, cols=5)
    assert code.parameters == (15, 1, 3)


def test_xzzx_is_not_css_but_equivalent_parameters():
    code = xzzx_surface_code(3)
    assert code.parameters == (9, 1, 3)
    assert not code.is_css()
    assert code.exact_distance(3) == 3


def test_small_grid_rejected():
    with pytest.raises(ValueError):
        rotated_surface_code(1)


def test_lookup_decoder_corrects_all_single_errors_d3():
    code = rotated_surface_code(3)
    decoder = LookupDecoder(code, max_weight=1)
    for qubit in range(9):
        for pauli in "XYZ":
            error = PauliOperator.from_sparse(9, {qubit: pauli})
            assert decoder.corrects(error), (qubit, pauli)


def test_lookup_decoder_weight_two_fails_somewhere_d3():
    code = rotated_surface_code(3)
    decoder = LookupDecoder(code, max_weight=2)
    failures = 0
    for first in range(9):
        for second in range(first + 1, 9):
            error = PauliOperator.from_sparse(9, {first: "X", second: "X"})
            if not decoder.corrects(error):
                failures += 1
    assert failures > 0
