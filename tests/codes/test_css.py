"""CSS construction and hypergraph product tests."""

import numpy as np
import pytest

from repro.codes.css import CSSCode, hamming_parity_check, hypergraph_product_code
from repro.utils.bitmatrix import gf2_matmul, gf2_rank


def test_css_condition_enforced():
    hx = [[1, 1, 0]]
    hz = [[1, 0, 1]]
    with pytest.raises(ValueError):
        CSSCode("bad", hx, hz)


def test_css_from_hamming_is_steane_like():
    h = hamming_parity_check(3)
    code = CSSCode("hamming-css", h, h)
    assert code.parameters[:2] == (7, 1)
    assert code.is_css()


def test_dependent_rows_are_dropped():
    hx = [[1, 1, 0, 0], [0, 0, 1, 1], [1, 1, 1, 1]]
    hz = np.zeros((0, 4), dtype=np.uint8)
    code = CSSCode("dependent", hx, hz)
    assert code.num_stabilizers == 2


def test_hamming_parity_check_shape_and_rank():
    h = hamming_parity_check(4)
    assert h.shape == (4, 15)
    assert gf2_rank(h) == 4


def test_hypergraph_product_of_hamming():
    h = hamming_parity_check(3)
    code = hypergraph_product_code(h, h)
    assert code.num_qubits == 49 + 9
    assert code.num_logical == 16
    assert code.is_css()


def test_hypergraph_product_of_repetition_is_small_surface():
    rep = [[1, 1, 0], [0, 1, 1]]
    code = hypergraph_product_code(rep, rep, name="toric-like")
    assert code.parameters[:2] == (13, 1)
    assert code.exact_distance(3) == 3


def test_hypergraph_product_css_orthogonality():
    h1 = [[1, 1, 0], [0, 1, 1]]
    h2 = hamming_parity_check(3)
    code = hypergraph_product_code(h1, h2)
    assert not gf2_matmul(code.x_checks(), code.z_checks().T).any()
