"""Structural tests for the code suite of Table 3."""

import pytest

from repro.codes import (
    CODE_REGISTRY,
    build_code,
    five_qubit_code,
    gottesman_eight_qubit_code,
    list_codes,
    quantum_reed_muller_code,
    repetition_code,
    shor_code,
    steane_code,
)
from repro.pauli.pauli import PauliOperator


@pytest.mark.parametrize("key", list_codes())
def test_registry_codes_are_well_formed(key):
    code = build_code(key)
    n, k, d = code.parameters
    assert code.num_stabilizers == n - k
    for i, gi in enumerate(code.stabilizers):
        for gj in code.stabilizers[i + 1:]:
            assert gi.commutes_with(gj)
    for lx, lz in zip(code.logical_xs, code.logical_zs):
        assert not lx.commutes_with(lz)
        assert code.group.commutes_with(lx) and code.group.commutes_with(lz)


@pytest.mark.parametrize(
    "key, expected",
    [
        ("steane", (7, 1, 3)),
        ("five-qubit", (5, 1, 3)),
        ("six-qubit", (6, 1, 3)),
        ("shor", (9, 1, 3)),
        ("surface-3", (9, 1, 3)),
        ("surface-5", (25, 1, 5)),
        ("xzzx-3", (9, 1, 3)),
        ("reed-muller-4", (15, 1, 3)),
        ("gottesman-8", (8, 3, 3)),
        ("color-832", (8, 3, 2)),
        ("detection-422", (4, 2, 2)),
        ("iceberg-6", (6, 4, 2)),
    ],
)
def test_registry_parameters(key, expected):
    assert build_code(key).parameters == expected


@pytest.mark.parametrize(
    "builder, distance",
    [
        (steane_code, 3),
        (five_qubit_code, 3),
        (shor_code, 3),
        (gottesman_eight_qubit_code, 3),
    ],
)
def test_exact_distance_matches_declared(builder, distance):
    code = builder()
    assert code.exact_distance(max_weight=distance) == distance


def test_steane_generators_match_paper():
    code = steane_code()
    labels = {gen.label() for gen in code.stabilizers}
    assert "XIXIXIX" in labels  # g1 = X1 X3 X5 X7
    assert "IIIZZZZ" in labels  # g6 = Z4 Z5 Z6 Z7
    assert code.logical_zs[0] == PauliOperator.from_label("ZZZZZZZ")
    assert code.is_css()


def test_steane_syndrome_distinguishes_single_errors():
    code = steane_code()
    syndromes = set()
    for qubit in range(7):
        for pauli in "XZ":
            error = PauliOperator.from_sparse(7, {qubit: pauli})
            syndromes.add(code.syndrome(error))
    assert len(syndromes) == 14


def test_reed_muller_r3_is_steane():
    rm = quantum_reed_muller_code(3)
    steane = steane_code()
    assert rm.parameters == (7, 1, 3)
    assert {g.label() for g in rm.stabilizers} == {g.label() for g in steane.stabilizers}


def test_reed_muller_r4_parameters():
    assert quantum_reed_muller_code(4).parameters == (15, 1, 3)


def test_repetition_code_detects_x_only():
    code = repetition_code(3)
    x_error = PauliOperator.from_sparse(3, {1: "X"})
    z_error = PauliOperator.from_sparse(3, {1: "Z"})
    assert any(code.syndrome(x_error))
    assert not any(code.syndrome(z_error))


def test_logical_state_stabilizers():
    code = steane_code()
    stabs = code.logical_state_stabilizers((1,))
    assert len(stabs) == 7
    assert stabs[-1] == -code.logical_zs[0]
    with pytest.raises(ValueError):
        code.logical_state_stabilizers((0, 1))


def test_is_logical_error():
    code = steane_code()
    assert code.is_logical_error(PauliOperator.from_label("XXXXXXX"))
    assert not code.is_logical_error(code.stabilizers[0])
    assert not code.is_logical_error(PauliOperator.from_sparse(7, {0: "X"}))


def test_unknown_registry_key():
    with pytest.raises(KeyError):
        build_code("does-not-exist")


def test_registry_has_fourteen_entries():
    assert len(CODE_REGISTRY) >= 14
