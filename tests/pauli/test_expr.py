"""Symbolic Pauli expression tests: closure under Clifford+T (Theorem 3.1)."""

import numpy as np
import pytest

from repro.classical.parity import ParityExpr
from repro.pauli.expr import PauliExpr, PauliTerm
from repro.pauli.pauli import PauliOperator
from repro.pauli.scalar import SqrtTwoRational
from repro.semantics.dense import GATE_MATRICES, DenseSimulator


def lifted(gate, qubits, num_qubits):
    return DenseSimulator(num_qubits)._lift(gate, qubits)


class TestConstruction:
    def test_atom_roundtrip(self):
        expr = PauliExpr.from_label("XZ")
        assert expr.is_single_pauli()
        assert expr.single_term().operator == PauliOperator.from_label("XZ")

    def test_zero_expression(self):
        assert len(PauliExpr.zero(2).terms) == 0

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            PauliExpr.from_label("X") + PauliExpr.from_label("XX")


class TestAlgebra:
    def test_cancellation(self):
        zy = PauliExpr.atom(PauliOperator.from_label("Z") * PauliOperator.from_label("Y"))
        yz = PauliExpr.atom(PauliOperator.from_label("Y") * PauliOperator.from_label("Z"))
        assert len((zy + yz).terms) == 0

    def test_negation_evaluates(self):
        expr = -PauliExpr.from_label("X")
        assert np.allclose(expr.evaluate_operator({}), -PauliOperator.from_label("X").to_matrix())

    def test_scaled(self):
        expr = PauliExpr.from_label("Z").scaled(SqrtTwoRational.inv_sqrt2())
        assert np.allclose(
            expr.evaluate_operator({}), PauliOperator.from_label("Z").to_matrix() / np.sqrt(2)
        )

    def test_multiplication_matches_matrices(self):
        a = PauliExpr.from_label("XY")
        b = PauliExpr.from_label("ZZ")
        assert np.allclose(
            (a * b).evaluate_operator({}), a.evaluate_operator({}) @ b.evaluate_operator({})
        )


class TestSymbolicPhases:
    def test_phase_evaluation(self):
        phase = ParityExpr.of_variable("b")
        expr = PauliExpr.atom(PauliOperator.from_label("Z"), phase)
        z = PauliOperator.from_label("Z").to_matrix()
        assert np.allclose(expr.evaluate_operator({"b": 0}), z)
        assert np.allclose(expr.evaluate_operator({"b": 1}), -z)

    def test_conditional_pauli_error(self):
        expr = PauliExpr.from_label("Z").apply_conditional_pauli(
            0, "X", ParityExpr.of_variable("e")
        )
        z = PauliOperator.from_label("Z").to_matrix()
        assert np.allclose(expr.evaluate_operator({"e": 0}), z)
        assert np.allclose(expr.evaluate_operator({"e": 1}), -z)

    def test_conditional_error_commuting_is_noop(self):
        expr = PauliExpr.from_label("X").apply_conditional_pauli(
            0, "X", ParityExpr.of_variable("e")
        )
        assert expr == PauliExpr.from_label("X")

    def test_classical_substitution(self):
        expr = PauliExpr.atom(PauliOperator.from_label("Z"), ParityExpr.of_variable("x"))
        substituted = expr.substitute_classical({"x": ParityExpr.of_variable("y")})
        assert substituted.free_variables() == frozenset({"y"})


class TestGateClosure:
    @pytest.mark.parametrize("gate", ["X", "Y", "Z", "H", "S", "T"])
    @pytest.mark.parametrize("label", ["X", "Y", "Z"])
    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_single_qubit_conjugation(self, gate, label, direction):
        expr = PauliExpr.from_label(label)
        unitary = GATE_MATRICES[gate]
        result = expr.apply_gate(gate, (0,), direction)
        if direction == "forward":
            expected = unitary @ expr.evaluate_operator({}) @ unitary.conj().T
        else:
            expected = unitary.conj().T @ expr.evaluate_operator({}) @ unitary
        assert np.allclose(result.evaluate_operator({}), expected)

    @pytest.mark.parametrize("gate", ["CNOT", "CZ", "ISWAP"])
    @pytest.mark.parametrize("label", ["XI", "IZ", "YX", "ZY"])
    def test_two_qubit_conjugation(self, gate, label):
        expr = PauliExpr.from_label(label)
        unitary = GATE_MATRICES[gate]
        result = expr.apply_gate(gate, (0, 1), "backward")
        expected = unitary.conj().T @ expr.evaluate_operator({}) @ unitary
        assert np.allclose(result.evaluate_operator({}), expected)

    def test_t_gate_produces_two_terms(self):
        result = PauliExpr.from_label("X").apply_gate("T", (0,), "backward")
        assert len(result.terms) == 2
        coefficients = {float(term.coefficient) for term in result.terms}
        assert all(abs(abs(c) - 1 / np.sqrt(2)) < 1e-12 for c in coefficients)

    def test_t_on_multiqubit_operator(self):
        expr = PauliExpr.from_label("XX")
        unitary = lifted("T", (1,), 2)
        result = expr.apply_gate("T", (1,), "forward")
        assert np.allclose(
            result.evaluate_operator({}),
            unitary @ expr.evaluate_operator({}) @ unitary.conj().T,
        )

    def test_symbolic_phase_preserved_through_gates(self):
        phase = ParityExpr.of_variable("b")
        expr = PauliExpr.atom(PauliOperator.from_label("ZZ"), phase).apply_gate(
            "CNOT", (0, 1), "backward"
        )
        unitary = GATE_MATRICES["CNOT"]
        for value in (0, 1):
            base = (-1) ** value * PauliOperator.from_label("ZZ").to_matrix()
            assert np.allclose(
                expr.evaluate_operator({"b": value}), unitary.conj().T @ base @ unitary
            )
