"""Stabilizer group structure tests."""

import pytest

from repro.codes import five_qubit_code, steane_code
from repro.pauli.group import StabilizerGroup, symplectic_product_matrix
from repro.pauli.pauli import PauliOperator

STEANE = [
    "XIXIXIX",
    "IXXIIXX",
    "IIIXXXX",
    "ZIZIZIZ",
    "IZZIIZZ",
    "IIIZZZZ",
]


def steane_group():
    return StabilizerGroup([PauliOperator.from_label(label) for label in STEANE])


class TestValidation:
    def test_rejects_anticommuting_generators(self):
        with pytest.raises(ValueError):
            StabilizerGroup([PauliOperator.from_label("X"), PauliOperator.from_label("Z")])

    def test_rejects_dependent_generators(self):
        with pytest.raises(ValueError):
            StabilizerGroup(
                [
                    PauliOperator.from_label("XX"),
                    PauliOperator.from_label("ZZ"),
                    PauliOperator.from_label("-YY"),
                ]
            )

    def test_rejects_non_hermitian(self):
        with pytest.raises(ValueError):
            StabilizerGroup([PauliOperator.from_label("iX")])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StabilizerGroup([])


class TestStructure:
    def test_counts(self):
        group = steane_group()
        assert group.num_qubits == 7
        assert group.num_generators == 6
        assert group.num_logical_qubits == 1

    def test_symplectic_product_matrix(self):
        lam = symplectic_product_matrix(2)
        assert lam.shape == (4, 4)
        assert lam[0, 2] == 1 and lam[2, 0] == 1 and lam[0, 0] == 0

    def test_syndrome_of_single_error(self):
        group = steane_group()
        error = PauliOperator.from_sparse(7, {2: "X"})
        syndrome = group.syndrome(error)
        # An X error triggers only Z-type generators.
        assert any(syndrome[3:]) and not any(syndrome[:3])

    def test_syndrome_vector_agrees(self):
        group = steane_group()
        error = PauliOperator.from_sparse(7, {4: "Y"})
        assert tuple(group.syndrome_of_vector(error.symplectic_vector())) == group.syndrome(error)


class TestMembership:
    def test_decompose_product_of_generators(self):
        group = steane_group()
        product = group.generators[0] * group.generators[3] * group.generators[5]
        coeffs, alpha = group.decompose(product)
        assert alpha == 0
        assert list(coeffs) == [1, 0, 0, 1, 0, 1]

    def test_decompose_negative_element(self):
        group = steane_group()
        coeffs, alpha = group.decompose(-group.generators[1])
        assert alpha == 1 and coeffs[1] == 1

    def test_decompose_non_member(self):
        group = steane_group()
        assert group.decompose(PauliOperator.from_sparse(7, {0: "X"})) is None

    def test_contains_respects_phase(self):
        group = steane_group()
        assert group.contains(group.generators[0])
        assert not group.contains(-group.generators[0])
        assert group.contains_up_to_phase(-group.generators[0])


class TestLogicals:
    def test_steane_logicals(self):
        group = steane_group()
        logical_x, logical_z = group.logical_operators()
        assert len(logical_x) == len(logical_z) == 1
        assert not logical_x[0].commutes_with(logical_z[0])
        assert group.commutes_with(logical_x[0])
        assert group.is_logical_operator(PauliOperator.from_label("ZZZZZZZ"))

    def test_five_qubit_logicals_from_code(self):
        code = five_qubit_code()
        assert code.group.is_logical_operator(code.logical_xs[0])

    def test_minimum_distance_steane(self):
        assert steane_group().minimum_distance(3) == 3

    def test_minimum_distance_none_below_bound(self):
        assert steane_group().minimum_distance(2) is None

    def test_centralizer_contains_logicals(self):
        code = steane_code()
        basis = code.group.centralizer_basis()
        assert len(basis) == 2 * 7 - 6
